// LRU cache of complete query answers. A hit must be indistinguishable
// from re-execution, so the key carries everything that determines the
// answer list: the *normalized* query text (Query::ToString of the
// parsed AST, so `cd[ title ]` and `cd[title]` share an entry), the
// strategy, the result bound n, and a fingerprint of the effective cost
// model (CRC-32C of its canonical config string — per-query cost files
// with different tables never alias). Only complete, non-truncated
// results may be inserted; partial (deadline-cut) answers are not
// cacheable.
//
// Thread-safe; one mutex around the list + map. Answer vectors are held
// behind shared_ptr<const ...>, so a hit hands back a reference with
// O(1) work under the lock (a splice plus a pointer copy — no answer
// copy), and the vector stays alive for the caller even if the entry is
// evicted or invalidated a moment later.
#ifndef APPROXQL_SERVICE_RESULT_CACHE_H_
#define APPROXQL_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::service {

struct CacheKey {
  std::string normalized_query;
  engine::Strategy strategy = engine::Strategy::kSchema;
  size_t n = 0;
  uint32_t cost_fingerprint = 0;
  /// Fingerprint of the executing backend and its shard layout
  /// (engine::Database vs. shard::ShardedDatabase at N shards —
  /// see ShardedDatabase::LayoutFingerprint). Answers are bit-identical
  /// across backends *by theorem, not by key*; keeping the layouts
  /// separate means a cache never papers over an equivalence bug and
  /// stays correct if a future backend relaxes the guarantee.
  uint32_t backend_fingerprint = 0;

  /// Flat encoding used as the map key (strategy|n|fp|backend|query).
  std::string Encode() const;
};

/// CRC-32C of the model's canonical config string; the cache-key
/// component that keeps per-query cost tables from aliasing.
uint32_t FingerprintCostModel(const cost::CostModel& model);

/// An immutable, shareable answer list; what Lookup returns and Insert
/// stores.
using CachedAnswers = std::shared_ptr<const std::vector<engine::QueryAnswer>>;

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  // entries dropped by Invalidate()
    size_t size = 0;
    size_t capacity = 0;
  };

  /// capacity = max entries; 0 disables the cache (Lookup always misses,
  /// Insert is a no-op — callers need no special case).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached answers and refreshes recency, or nullptr. The
  /// returned vector is immutable and remains valid after eviction or
  /// Invalidate.
  CachedAnswers Lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries beyond capacity.
  void Insert(const CacheKey& key, std::vector<engine::QueryAnswer> answers);

  /// Drops every entry (e.g. after swapping the underlying database).
  void Invalidate();

  Stats GetStats() const;

 private:
  struct Slot {
    std::string key;
    CachedAnswers answers;
  };

  const size_t capacity_;
  mutable util::Mutex mu_;
  // Front = most recently used. map values point into the list; list
  // iterators stay valid under splice, which is all Touch does.
  std::list<Slot> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Slot>::iterator> index_
      GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ GUARDED_BY(mu_) = 0;
};

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_RESULT_CACHE_H_
