// Metrics for the query service: named counters, gauges and latency
// histograms collected in a registry and dumped as a flat text snapshot
// (one `name value` line per metric, Prometheus-exposition flavored).
//
// Counters and gauges are lock-free atomics; histograms take a per-
// histogram mutex on Record (recording a latency is ~ns next to the
// query it measures). The registry owns every metric; handles returned
// by Register* stay valid for the registry's lifetime.
#ifndef APPROXQL_SERVICE_METRICS_H_
#define APPROXQL_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::service {

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that goes up and down (queue depth, in-flight requests).
class Gauge {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A mutex-guarded util::Histogram for concurrent recording.
class LatencyHistogram {
 public:
  void Record(uint64_t value) {
    util::MutexLock lock(&mu_);
    histogram_.Record(value);
  }
  /// A consistent copy for reading quantiles.
  util::Histogram Snapshot() const {
    util::MutexLock lock(&mu_);
    return histogram_;
  }

 private:
  mutable util::Mutex mu_;
  util::Histogram histogram_ GUARDED_BY(mu_);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Names should be snake_case with a unit suffix where applicable
  /// (e.g. "queries_completed", "exec_latency_us"). Registration is
  /// idempotent: re-registering a name of the same metric kind returns
  /// the existing handle — corpus generations that share a registry keep
  /// accumulating into the same metrics.
  Counter* RegisterCounter(std::string name);
  Gauge* RegisterGauge(std::string name);
  LatencyHistogram* RegisterHistogram(std::string name);

  /// Flat text snapshot, metrics in registration order:
  ///   queries_completed 1042
  ///   queue_depth 3
  ///   exec_latency_us count=1042 mean=81.2us p50=64us ...
  std::string DumpText() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable util::Mutex mu_;  // registration vs. dump
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_METRICS_H_
