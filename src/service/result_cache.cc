#include "service/result_cache.h"

#include "util/crc32.h"

namespace approxql::service {

std::string CacheKey::Encode() const {
  std::string out;
  out += std::to_string(static_cast<int>(strategy));
  out.push_back('|');
  out += std::to_string(n);
  out.push_back('|');
  out += std::to_string(cost_fingerprint);
  out.push_back('|');
  out += std::to_string(backend_fingerprint);
  out.push_back('|');
  out += normalized_query;
  return out;
}

uint32_t FingerprintCostModel(const cost::CostModel& model) {
  return util::Crc32c(model.ToConfigString());
}

CachedAnswers ResultCache::Lookup(const CacheKey& key) {
  if (capacity_ == 0) return nullptr;
  std::string encoded = key.Encode();
  util::MutexLock lock(&mu_);
  auto it = index_.find(encoded);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->answers;
}

void ResultCache::Insert(const CacheKey& key,
                         std::vector<engine::QueryAnswer> answers) {
  if (capacity_ == 0) return;
  std::string encoded = key.Encode();
  // Allocate outside the lock; readers holding the old pointer keep it
  // alive independently of the slot.
  auto shared = std::make_shared<const std::vector<engine::QueryAnswer>>(
      std::move(answers));
  util::MutexLock lock(&mu_);
  auto it = index_.find(encoded);
  if (it != index_.end()) {
    it->second->answers = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{encoded, std::move(shared)});
  index_.emplace(std::move(encoded), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::Invalidate() {
  util::MutexLock lock(&mu_);
  invalidations_ += lru_.size();
  index_.clear();
  lru_.clear();
}

ResultCache::Stats ResultCache::GetStats() const {
  util::MutexLock lock(&mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace approxql::service
