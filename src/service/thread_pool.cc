#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace approxql::service {

namespace {

/// Which pool (if any) the current thread is a worker of, and its index
/// there. Lets TrySubmit route a worker's nested submissions to the
/// worker's own deque instead of the global admission queue.
struct WorkerIdentity {
  const void* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(Options options)
    : queue_capacity_(options.queue_capacity) {
  size_t n = options.num_threads;
  if (n == 0) {
    n = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (tls_worker.pool == this) {
    // Worker-local path: subdivided work, admitted without a capacity
    // check. The shutdown probe shares the deque's critical section
    // with Shutdown's sweep, so a task is either swept or rejected —
    // never silently stranded.
    Deque& d = *deques_[tls_worker.index];
    {
      util::MutexLock lock(&d.mu);
      if (shutdown_.load()) return false;
      d.tasks.push_back(std::move(task));
      pending_.fetch_add(1);
    }
    // Dekker-style pairing with the park path: pending_ was raised
    // before this sleeper probe, and parking workers raise sleepers_
    // before re-checking pending_, so either we see the sleeper or the
    // sleeper sees our task (both seq_cst) — no lost wakeup, and the
    // common nobody-sleeping case skips the notify entirely.
    if (sleepers_.load() > 0) work_available_.NotifyOne();
    return true;
  }
  {
    util::MutexLock lock(&mu_);
    if (shutdown_.load() || global_.size() >= queue_capacity_) return false;
    global_.push_back(std::move(task));
    pending_.fetch_add(1);
  }
  if (sleepers_.load() > 0) work_available_.NotifyOne();
  return true;
}

size_t ThreadPool::QueueDepth() const { return pending_.load(); }

void ThreadPool::Shutdown(DrainMode mode) {
  std::vector<std::function<void()>> abandoned;
  {
    util::MutexLock lock(&mu_);
    shutdown_.store(true);  // before the sweeps; closes both admit paths
    if (mode == DrainMode::kAbandon) {
      abandoned.reserve(global_.size());
      for (auto& task : global_) abandoned.push_back(std::move(task));
      global_.clear();
    }
  }
  if (mode == DrainMode::kAbandon) {
    for (auto& d : deques_) {
      util::MutexLock lock(&d->mu);
      for (auto& task : d->tasks) abandoned.push_back(std::move(task));
      d->tasks.clear();
    }
    pending_.fetch_sub(abandoned.size());
  }
  // Destroy abandoned tasks outside the locks: their captures may run
  // arbitrary destructors (promise guards that notify waiters, etc.).
  abandoned.clear();
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

bool ThreadPool::TakeTask(size_t index, std::function<void()>* task) {
  {
    // Own deque, newest first: the task just pushed by a nested fork is
    // the one whose data is hot in this worker's cache.
    Deque& d = *deques_[index];
    util::MutexLock lock(&d.mu);
    if (!d.tasks.empty()) {
      *task = std::move(d.tasks.back());
      d.tasks.pop_back();
      pending_.fetch_sub(1);
      return true;
    }
  }
  {
    util::MutexLock lock(&mu_);
    if (!global_.empty()) {
      *task = std::move(global_.front());
      global_.pop_front();
      pending_.fetch_sub(1);
      return true;
    }
  }
  // Steal oldest-first from a rotating victim: the oldest task is the
  // root of the victim's deepest pending subdivision — the largest
  // chunk of work, and the one the owner will reach last.
  const size_t n = deques_.size();
  for (size_t offset = 1; offset < n; ++offset) {
    Deque& d = *deques_[(index + offset) % n];
    util::MutexLock lock(&d.mu);
    if (!d.tasks.empty()) {
      *task = std::move(d.tasks.front());
      d.tasks.pop_front();
      pending_.fetch_sub(1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = {this, index};
  for (;;) {
    std::function<void()> task;
    if (TakeTask(index, &task)) {
      task();
      task = nullptr;  // run destructors before the next take
      continue;
    }
    util::MutexLock lock(&mu_);
    if (pending_.load() != 0) {
      // A task was pushed (or is mid-push) since the scan came up
      // empty; rescan instead of parking. Terminates: pending_ only
      // rises through pushes we will find on the next scan.
      continue;
    }
    if (shutdown_.load()) return;
    sleepers_.fetch_add(1);
    while (!shutdown_.load() && pending_.load() == 0) {
      work_available_.Wait(&mu_);
    }
    sleepers_.fetch_sub(1);
  }
}

}  // namespace approxql::service
