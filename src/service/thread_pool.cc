#include "service/thread_pool.h"

#include <algorithm>

namespace approxql::service {

ThreadPool::ThreadPool(Options options)
    : queue_capacity_(options.queue_capacity) {
  size_t n = options.num_threads;
  if (n == 0) {
    n = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    util::MutexLock lock(&mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  util::MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::Shutdown(DrainMode mode) {
  std::deque<std::function<void()>> abandoned;
  {
    util::MutexLock lock(&mu_);
    shutdown_ = true;
    if (mode == DrainMode::kAbandon) abandoned.swap(queue_);
  }
  // Destroy abandoned tasks outside the lock: their captures may run
  // arbitrary destructors (promise guards that notify waiters, etc.).
  abandoned.clear();
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace approxql::service
