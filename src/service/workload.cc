#include "service/workload.h"

#include <fstream>
#include <sstream>

#include "query/ast.h"

namespace approxql::service {

std::string WorkloadError::ToString() const {
  return "line " + std::to_string(line) + ": `" + text +
         "`: " + status.ToString();
}

Workload ScanWorkload(std::string_view text) {
  Workload workload;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    // Trim whitespace; skip blanks and comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    auto parsed = query::Parse(line);
    if (!parsed.ok()) {
      workload.errors.push_back(
          {line_number, std::string(line), parsed.status()});
      continue;
    }
    workload.queries.emplace_back(line);
  }
  return workload;
}

util::Result<std::vector<std::string>> ParseWorkload(std::string_view text) {
  Workload workload = ScanWorkload(text);
  if (!workload.errors.empty()) {
    const WorkloadError& first = workload.errors.front();
    return util::Status(first.status.code(),
                        "workload " + first.ToString() +
                            (workload.errors.size() > 1
                                 ? " (+" +
                                       std::to_string(workload.errors.size() -
                                                      1) +
                                       " more bad lines)"
                                 : ""));
  }
  if (workload.queries.empty()) {
    return util::Status::InvalidArgument("workload contains no queries");
  }
  return std::move(workload.queries);
}

util::Result<std::vector<std::string>> LoadWorkloadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IoError("cannot read workload file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWorkload(buffer.str());
}

}  // namespace approxql::service
