// Fork-join primitives over the service ThreadPool: a CountDownLatch
// and a ParallelFor that fans loop iterations out to pool workers while
// the calling thread participates in the work.
//
// Deadlock freedom: ParallelFor never *requires* a pool worker. Helper
// tasks are submitted best-effort with TrySubmit; iterations are claimed
// from a shared atomic cursor, and the caller claims too, so a full
// queue (or a pool whose workers are all busy running ParallelFor
// callers themselves) degrades to the caller executing everything
// inline. This is what makes intra-query parallelism safe to run *on*
// the query service's own pool: a worker that forks sub-tasks into the
// pool it occupies can always finish alone.
#ifndef APPROXQL_SERVICE_PARALLEL_H_
#define APPROXQL_SERVICE_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "service/thread_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::service {

/// A one-shot barrier: Wait blocks until the count reaches zero.
class CountDownLatch {
 public:
  explicit CountDownLatch(size_t count) : remaining_(count) {}

  CountDownLatch(const CountDownLatch&) = delete;
  CountDownLatch& operator=(const CountDownLatch&) = delete;

  void CountDown(size_t n = 1);
  void Wait();

 private:
  util::Mutex mu_;
  util::CondVar zero_;
  size_t remaining_ GUARDED_BY(mu_);
};

struct ParallelForOptions {
  /// Maximum concurrent executors including the calling thread
  /// (helpers submitted to the pool = parallelism - 1). 0 = pool
  /// thread count + 1.
  size_t parallelism = 0;
  /// Cooperative cancellation, polled between iterations (never
  /// mid-iteration). Once it fires, unclaimed iterations are skipped.
  std::function<bool()> cancelled;
};

struct ParallelForResult {
  size_t executed = 0;  // iterations whose body ran to completion
  size_t skipped = 0;   // iterations skipped after cancellation fired
  bool cancelled = false;
};

/// Runs fn(0) .. fn(count - 1), distributed over `pool` workers plus the
/// calling thread; returns once every iteration has either run or been
/// skipped. The first exception thrown by `fn` is captured and rethrown
/// on the calling thread (remaining unclaimed iterations are skipped).
/// `pool` may be null (everything runs inline on the caller).
ParallelForResult ParallelFor(ThreadPool* pool, size_t count,
                              std::function<void(size_t)> fn,
                              const ParallelForOptions& options = {});

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_PARALLEL_H_
