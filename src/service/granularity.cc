#include "service/granularity.h"

namespace approxql::service {

namespace {
constexpr size_t kUnknown = index::PostingSource::kUnknownSize;
}  // namespace

size_t EstimateTotalWork(const std::vector<size_t>& estimates) {
  size_t total = 0;
  for (size_t e : estimates) {
    if (e == kUnknown || e > kUnknown - total) return kUnknown;
    total += e;
  }
  return total;
}

std::vector<size_t> PackBatches(const std::vector<size_t>& estimates,
                                size_t target) {
  std::vector<size_t> ends;
  const size_t n = estimates.size();
  if (n == 0) return ends;
  if (target == 0) {
    ends.reserve(n);
    for (size_t i = 1; i <= n; ++i) ends.push_back(i);
    return ends;
  }
  size_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t e = estimates[i];
    if (e == kUnknown) {
      const size_t open = ends.empty() ? 0 : ends.back();
      if (i > open) ends.push_back(i);
      ends.push_back(i + 1);
      acc = 0;
      continue;
    }
    acc = e > kUnknown - acc ? kUnknown : acc + e;
    if (acc >= target) {
      ends.push_back(i + 1);
      acc = 0;
    }
  }
  if (ends.empty() || ends.back() != n) ends.push_back(n);
  return ends;
}

}  // namespace approxql::service
