// Adaptive fan-out granularity: pure decision functions that turn
// per-slot posting-size estimates (engine::FetchPlan::EstimateEntries,
// backed by index::PostingSource::EstimateSize) into a task layout for
// ParallelFor. The scheduler's unit of admission is a task; a task per
// tiny posting makes queue traffic the dominant cost, so slots are
// greedily packed into batches of roughly `target` estimated entries
// and whole stages whose total work falls below a floor run inline.
//
// All functions are pure over plain vectors so they are unit-testable
// without an index or a pool. kUnknownSize estimates (a source that
// cannot say without doing the very fetch being scheduled) are treated
// as "large": they saturate totals and close their own batch.
#ifndef APPROXQL_SERVICE_GRANULARITY_H_
#define APPROXQL_SERVICE_GRANULARITY_H_

#include <cstddef>
#include <vector>

#include "index/label_index.h"

namespace approxql::service {

/// Saturating sum of per-slot estimates. Any kUnknownSize term (or an
/// overflowing sum) yields kUnknownSize, which compares >= every
/// threshold — unknown work is always worth fanning out.
size_t EstimateTotalWork(const std::vector<size_t>& estimates);

/// Packs consecutive slots into batches of at least `target` estimated
/// entries each (the final batch may be smaller). Returns exclusive
/// end offsets: batch b covers [ends[b-1], ends[b]) with ends[-1] = 0.
/// target == 0 means one slot per batch (the pre-adaptive layout, used
/// by tests that force maximal fan-out). A kUnknownSize slot always
/// closes the open batch and occupies a batch of its own.
std::vector<size_t> PackBatches(const std::vector<size_t>& estimates,
                                size_t target);

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_GRANULARITY_H_
