#include "service/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace approxql::service {

void CountDownLatch::CountDown(size_t n) {
  util::MutexLock lock(&mu_);
  remaining_ -= std::min(n, remaining_);
  if (remaining_ == 0) zero_.NotifyAll();
}

void CountDownLatch::Wait() {
  util::MutexLock lock(&mu_);
  while (remaining_ != 0) zero_.Wait(&mu_);
}

namespace {

/// Shared between the caller and the helper tasks. Helpers hold a
/// shared_ptr, so a helper that starts after the caller has already
/// returned (every iteration claimed by others) still finds live state.
struct ForkState {
  ForkState(size_t count, std::function<void(size_t)> fn,
            std::function<bool()> cancel)
      : count(count), body(std::move(fn)), cancel(std::move(cancel)),
        done(count) {}

  const size_t count;
  const std::function<void(size_t)> body;
  const std::function<bool()> cancel;
  std::atomic<size_t> next{0};
  std::atomic<size_t> executed{0};
  std::atomic<size_t> skipped{0};
  std::atomic<bool> stop{false};      // cancellation observed
  std::atomic<bool> failed{false};    // an iteration threw
  util::Mutex error_mu;
  std::exception_ptr error GUARDED_BY(error_mu);  // first exception
  CountDownLatch done;
};

/// The claim loop run by the caller and by every helper. Every claimed
/// iteration counts down exactly once, run or skipped, so `done` always
/// reaches zero.
void RunIterations(const std::shared_ptr<ForkState>& state) {
  for (;;) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->count) return;
    bool skip = state->stop.load(std::memory_order_relaxed) ||
                state->failed.load(std::memory_order_relaxed);
    if (!skip && state->cancel && state->cancel()) {
      state->stop.store(true, std::memory_order_relaxed);
      skip = true;
    }
    if (skip) {
      state->skipped.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        state->body(i);
        state->executed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          util::MutexLock lock(&state->error_mu);
          if (!state->error) state->error = std::current_exception();
        }
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    state->done.CountDown();
  }
}

}  // namespace

ParallelForResult ParallelFor(ThreadPool* pool, size_t count,
                              std::function<void(size_t)> fn,
                              const ParallelForOptions& options) {
  ParallelForResult result;
  if (count == 0) return result;
  auto state =
      std::make_shared<ForkState>(count, std::move(fn), options.cancelled);
  size_t parallelism = options.parallelism;
  if (parallelism == 0) {
    parallelism = (pool != nullptr ? pool->num_threads() : 0) + 1;
  }
  size_t helpers = std::min(parallelism - 1, count - 1);
  if (pool != nullptr) {
    for (size_t h = 0; h < helpers; ++h) {
      // Best effort: a rejected helper just means less parallelism.
      if (!pool->TrySubmit([state] { RunIterations(state); })) break;
    }
  }
  RunIterations(state);
  state->done.Wait();
  result.executed = state->executed.load(std::memory_order_relaxed);
  result.skipped = state->skipped.load(std::memory_order_relaxed);
  result.cancelled = state->stop.load(std::memory_order_relaxed);
  if (state->failed.load(std::memory_order_relaxed)) {
    util::MutexLock lock(&state->error_mu);
    if (state->error) std::rethrow_exception(state->error);
  }
  return result;
}

}  // namespace approxql::service
