// A fixed-size worker pool with work-stealing deques behind a bounded
// admission queue.
//
// Two kinds of submission:
//   - External threads go through the bounded global injection queue.
//     TrySubmit never blocks: it returns false when that queue is full
//     (or the pool is shutting down), which is what lets the query
//     service shed load with an explicit rejection instead of buffering
//     unbounded work — overload degrades to fast failures, not OOM.
//   - A pool worker that submits (nested ParallelFor fan-out: a task
//     subdividing already-admitted work) pushes onto its OWN deque
//     without an admission check. Owners pop their deque LIFO (newest
//     first, cache-warm); idle workers steal from the opposite end FIFO
//     (oldest first), so one worker's backlog is drained by whoever is
//     free — nested forks no longer serialize on a single pool mutex,
//     and a shard that finishes early steals the queued sub-tasks of a
//     skewed shard (see DESIGN.md §12).
//
// Scheduling order per worker: own deque (LIFO) -> global queue (FIFO)
// -> steal (FIFO, rotating victim) -> park. External work is therefore
// still started roughly in admission order; only subdivided work is
// out of order, which fork-join joins make invisible.
#ifndef APPROXQL_SERVICE_THREAD_POOL_H_
#define APPROXQL_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::service {

/// What happens to tasks still queued when Shutdown is called.
enum class DrainMode {
  kDrain,    // run everything already admitted, then stop
  kAbandon,  // destroy queued tasks without running them
};

class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 = hardware_concurrency (min 1).
    size_t num_threads = 0;
    /// Max tasks waiting in the global injection queue (excluding the
    /// ones running and worker-local subdivided work). TrySubmit from a
    /// non-worker thread fails beyond this.
    size_t queue_capacity = 256;
  };

  explicit ThreadPool(Options options);
  /// Finishes queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` unless admission is closed. From a non-worker
  /// thread: bounded by queue_capacity (false when full or Shutdown
  /// began). From one of this pool's own workers: pushed onto the
  /// worker's deque, no capacity check (it subdivides work that was
  /// already admitted; rejecting it would only force the fork-join
  /// caller to run it inline anyway).
  bool TrySubmit(std::function<void()> task);

  /// Tasks currently waiting anywhere (global queue + worker deques,
  /// excluding the ones running).
  size_t QueueDepth() const;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks executed by a worker that took them from another worker's
  /// deque (observability; see thread_pool_steals in DumpMetrics).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Stops admission, then either drains or abandons all queues (global
  /// and worker deques), and joins workers. Idempotent (later calls
  /// find empty queues); the destructor calls Shutdown(kDrain).
  /// Abandoned tasks are destroyed without running — callers whose
  /// tasks carry completion obligations (promises) must discharge them
  /// from the task's destructor.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

 private:
  /// One worker's deque. Each has its own mutex, so pushes and steals
  /// on different workers never contend; the global mutex is only
  /// touched for injection, parking and wakeup.
  struct Deque {
    util::Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t index);
  /// Takes one task: own deque back (LIFO), else global front (FIFO),
  /// else steal from another worker's front (FIFO). False if nothing
  /// was found anywhere.
  bool TakeTask(size_t index, std::function<void()>* task);

  mutable util::Mutex mu_;
  util::CondVar work_available_;
  std::deque<std::function<void()>> global_ GUARDED_BY(mu_);
  /// Workers parked in work_available_; lets pushers skip the notify
  /// lock when nobody is sleeping. Mirrors a count maintained under mu_.
  std::atomic<size_t> sleepers_{0};
  /// Set (under mu_ and before the deque sweeps) once Shutdown begins;
  /// closes both admission paths.
  std::atomic<bool> shutdown_{false};
  /// Exact count of tasks queued anywhere (global + deques): the park
  /// predicate and QueueDepth. Updated inside the owning queue's
  /// critical section, so a worker that sees pending_ == 0 under mu_
  /// cannot miss a wakeup for a task pushed afterwards.
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> steals_{0};
  const size_t queue_capacity_;
  /// Sized by the constructor, never resized after: workers index it
  /// without synchronization.
  std::vector<std::unique_ptr<Deque>> deques_;
  /// Written only by the constructor and Shutdown (which joins every
  /// worker before clearing); workers never touch it.
  std::vector<std::thread> workers_;
};

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_THREAD_POOL_H_
