// A fixed-size worker pool with a bounded FIFO admission queue. The
// queue never blocks producers: TrySubmit returns false when the queue
// is full (or the pool is shutting down), which is what lets the query
// service shed load with an explicit rejection instead of buffering
// unbounded work — overload degrades to fast failures, not OOM.
#ifndef APPROXQL_SERVICE_THREAD_POOL_H_
#define APPROXQL_SERVICE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::service {

/// What happens to tasks still queued when Shutdown is called.
enum class DrainMode {
  kDrain,    // run everything already admitted, then stop
  kAbandon,  // destroy queued tasks without running them
};

class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 = hardware_concurrency (min 1).
    size_t num_threads = 0;
    /// Max tasks waiting (excluding the ones running). TrySubmit fails
    /// beyond this.
    size_t queue_capacity = 256;
  };

  explicit ThreadPool(Options options);
  /// Finishes queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` unless the queue is at capacity or Shutdown began.
  bool TrySubmit(std::function<void()> task);

  /// Tasks currently waiting (not yet picked up by a worker).
  size_t QueueDepth() const;

  size_t num_threads() const { return workers_.size(); }

  /// Stops admission, then either drains or abandons the queue, and
  /// joins workers. Idempotent (later calls find an empty queue); the
  /// destructor calls Shutdown(kDrain). Abandoned tasks are destroyed
  /// without running — callers whose tasks carry completion obligations
  /// (promises) must discharge them from the task's destructor.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

 private:
  void WorkerLoop();

  mutable util::Mutex mu_;
  util::CondVar work_available_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  const size_t queue_capacity_;
  /// Written only by the constructor and Shutdown (which joins every
  /// worker before clearing); workers never touch it.
  std::vector<std::thread> workers_;
};

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_THREAD_POOL_H_
