// Workload files for the serve driver: a plain text file with one
// approXQL query per line. Blank lines and `#` comments are skipped;
// every remaining line must parse as approXQL (validated up front so a
// typo fails the replay before it starts, not 40 seconds in).
#ifndef APPROXQL_SERVICE_WORKLOAD_H_
#define APPROXQL_SERVICE_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace approxql::service {

/// Parses workload text. Returns the queries in file order.
util::Result<std::vector<std::string>> ParseWorkload(std::string_view text);

/// Reads and parses a workload file.
util::Result<std::vector<std::string>> LoadWorkloadFile(
    const std::string& path);

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_WORKLOAD_H_
