// Workload files for the serve drivers (in-process and wire replay): a
// plain text file with one approXQL query per line. Blank lines and
// lines starting with `#` are skipped. Every remaining line is parsed
// up front so a typo fails the replay before it starts, not 40 seconds
// in — and every unparseable line is reported with its line number and
// parse error, not silently counted as a runtime failure.
#ifndef APPROXQL_SERVICE_WORKLOAD_H_
#define APPROXQL_SERVICE_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace approxql::service {

/// One unparseable workload line: where it is and why it failed.
struct WorkloadError {
  size_t line = 0;      // 1-based line number in the input
  std::string text;     // the offending line, trimmed
  util::Status status;  // the parse error

  /// "line 12: `cd[oops`: ParseError: ..." — ready to print.
  std::string ToString() const;
};

/// Parsed workload: the valid queries in file order plus every bad
/// line. Callers decide whether errors are fatal (the serve drivers
/// print them and refuse to replay a partially valid file).
struct Workload {
  std::vector<std::string> queries;
  std::vector<WorkloadError> errors;
};

/// Parses workload text, collecting all unparseable lines instead of
/// stopping at the first.
Workload ScanWorkload(std::string_view text);

/// Strict flavor: fails with the first bad line's (line, error), and
/// with InvalidArgument when no queries remain. Returns the queries in
/// file order.
util::Result<std::vector<std::string>> ParseWorkload(std::string_view text);

/// Reads and strictly parses a workload file.
util::Result<std::vector<std::string>> LoadWorkloadFile(
    const std::string& path);

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_WORKLOAD_H_
