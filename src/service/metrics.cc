#include "service/metrics.h"

namespace approxql::service {

Counter* MetricsRegistry::RegisterCounter(std::string name) {
  util::MutexLock lock(&mu_);
  for (const Entry& existing : entries_) {
    if (existing.name == name && existing.counter != nullptr) {
      return existing.counter.get();
    }
  }
  Entry entry;
  entry.name = std::move(name);
  entry.counter = std::make_unique<Counter>();
  Counter* raw = entry.counter.get();
  entries_.push_back(std::move(entry));
  return raw;
}

Gauge* MetricsRegistry::RegisterGauge(std::string name) {
  util::MutexLock lock(&mu_);
  for (const Entry& existing : entries_) {
    if (existing.name == name && existing.gauge != nullptr) {
      return existing.gauge.get();
    }
  }
  Entry entry;
  entry.name = std::move(name);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* raw = entry.gauge.get();
  entries_.push_back(std::move(entry));
  return raw;
}

LatencyHistogram* MetricsRegistry::RegisterHistogram(std::string name) {
  util::MutexLock lock(&mu_);
  for (const Entry& existing : entries_) {
    if (existing.name == name && existing.histogram != nullptr) {
      return existing.histogram.get();
    }
  }
  Entry entry;
  entry.name = std::move(name);
  entry.histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* raw = entry.histogram.get();
  entries_.push_back(std::move(entry));
  return raw;
}

std::string MetricsRegistry::DumpText() const {
  util::MutexLock lock(&mu_);
  std::string out;
  for (const Entry& entry : entries_) {
    out += entry.name;
    out.push_back(' ');
    if (entry.counter != nullptr) {
      out += std::to_string(entry.counter->Value());
    } else if (entry.gauge != nullptr) {
      out += std::to_string(entry.gauge->Value());
    } else {
      out += entry.histogram->Snapshot().Summary("us");
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace approxql::service
