// The concurrent serving layer over an immutable engine::Database: a
// fixed-size thread pool behind a bounded admission queue (overload is
// shed with kResourceExhausted instead of buffered), per-request
// deadlines enforced cooperatively between the schema strategy's top-k
// rounds (an expired deadline yields the partial answers found so far,
// flagged `truncated`), an LRU result cache, and a metrics registry
// covering the whole request lifecycle.
//
// Intra-query parallelism (parallelism > 1): a request is decomposed
// into the conjunctive disjuncts of its separated representation
// (paper Section 3), the disjuncts are evaluated concurrently on the
// same worker pool via ParallelFor (deadlock-free — see parallel.h),
// and their per-disjunct top-n lists are k-way merged into the global
// top n. The direct strategy additionally materializes all per-label
// index fetches concurrently up front (engine::FetchPlan). Parallel
// results are bit-identical to serial execution; see DESIGN.md for the
// argument and the one caveat (schema-strategy k-capping).
//
// Safe because Database's const query paths are thread-safe (see the
// contract in engine/database.h): workers share one Database without
// locks; all service-side shared state (queue, cache, metrics) locks
// internally.
#ifndef APPROXQL_SERVICE_QUERY_SERVICE_H_
#define APPROXQL_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace approxql::shard {
class ShardedDatabase;
}  // namespace approxql::shard

namespace approxql::dist {
class ShardRouter;
}  // namespace approxql::dist

namespace approxql::ingest {
class MutableCorpus;
}  // namespace approxql::ingest

namespace approxql::service {

struct ServiceOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 8;
  /// Bounded admission queue; submissions beyond this are rejected.
  size_t queue_capacity = 128;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 256;
  /// Deadline applied to requests that don't set one; zero = none.
  std::chrono::milliseconds default_deadline{0};
  /// Default intra-query parallelism (concurrent executors per request,
  /// including the thread running the request). 1 = serial; requests
  /// can override per-call. Results are identical either way.
  size_t parallelism = 1;
  /// Adaptive fan-out floor (service/granularity.h): a parallel-eligible
  /// request whose total estimated index entries fall below this runs
  /// serially instead — task overhead would dominate. 0 = always fan
  /// out (tests use this to force the parallel path on tiny corpora).
  size_t parallel_min_work = 2048;
  /// Target estimated entries per concurrent fetch task; consecutive
  /// small plan slots are packed into one task. 0 = one task per slot.
  size_t parallel_fetch_batch = 512;
  /// Schema strategy: fresh skeletons a top-k round must produce before
  /// the second-level batch is executed as a parallel wave; smaller
  /// rounds run serially. 0 = parallelize every round.
  size_t parallel_min_skeletons = 8;
};

struct QueryRequest {
  std::string query_text;
  /// Strategy, n, per-query cost model and evaluator knobs. The
  /// schema.cancelled hook is owned by the service (overwritten when a
  /// deadline applies).
  engine::ExecOptions exec;
  /// Per-request deadline from admission; zero = use
  /// ServiceOptions::default_deadline. A negative value is a deadline
  /// already in the past (deterministic expiry, used by tests).
  std::chrono::milliseconds deadline{0};
  /// Skip cache lookup and insertion for this request.
  bool bypass_cache = false;
  /// Intra-query parallelism override; 0 = ServiceOptions::parallelism.
  size_t parallelism = 0;
  /// Live-cluster routed backend only: read-your-writes floors.
  /// min_epochs[i] is the minimum ingest epoch cluster shard i's answer
  /// must have been computed under (from WireIngestAck::epoch of the
  /// caller's own acked writes); shards beyond the vector have no
  /// floor. Ignored by every other backend.
  std::vector<uint64_t> min_epochs;
};

struct QueryResponse {
  util::Status status = util::Status::OK();
  std::vector<engine::QueryAnswer> answers;
  /// Deadline fired mid-evaluation: `answers` is a correct but possibly
  /// short prefix of the best results (schema strategy only).
  bool truncated = false;
  bool cache_hit = false;
  /// Distributed backend only: one or more shards never answered, so
  /// `answers` covers only the shards that did. Degraded responses are
  /// NEVER cached — a repeat of the query re-asks the cluster.
  bool degraded = false;
  std::vector<uint32_t> missing_shards;
  /// The parallel evaluation path ran (disjunct fan-out and/or
  /// concurrent fetch). False for serial execution and cache hits.
  bool parallel = false;
  /// Mutable-corpus backend: the ingest epoch of the snapshot this
  /// response was evaluated against. Live-cluster routed backend: the
  /// minimum epoch across the shard answers merged into this response
  /// (the read-your-writes watermark). 0 elsewhere. Lets ingesting
  /// clients tell whether a query already sees their last write.
  uint64_t backend_epoch = 0;
  /// Mutable-corpus backend only: the exact generation this response
  /// was evaluated against (or, on a cache hit, the generation whose
  /// fingerprint keyed the hit). The network server reverse-translates
  /// global answer ids to shard-local ids against precisely this
  /// snapshot — never a newer one.
  std::shared_ptr<const shard::ShardedDatabase> backend_snapshot;
  int64_t queue_micros = 0;  // admission-to-start wait
  int64_t exec_micros = 0;   // parse + evaluate (0 on cache hit)
  int64_t total_micros = 0;  // admission-to-response
};

class QueryService {
 public:
  /// `db` must outlive the service and must not be mutated (moved-from,
  /// destroyed) while the service exists.
  QueryService(const engine::Database& db, ServiceOptions options);
  /// Sharded backend: requests scatter-gather across the shards on this
  /// service's own worker pool (request `parallelism` bounds the
  /// concurrent shard evaluations). Results are bit-identical to the
  /// single-database backend over the same corpus; the cache key carries
  /// the backend's layout fingerprint, so answers never alias across
  /// backends or shard layouts.
  QueryService(const shard::ShardedDatabase& db, ServiceOptions options);
  /// Distributed backend: requests scatter-gather across REMOTE shard
  /// servers through the router (dist/shard_router.h). Healthy-cluster
  /// results are bit-identical to both in-process backends over the
  /// same corpus; with shards missing the response is `degraded` (and
  /// never cached) or, in the router's strict mode, kUnavailable. The
  /// cache key folds the router's layout fingerprint plus a distinct
  /// backend tag, so distributed answers never alias in-process ones.
  QueryService(dist::ShardRouter& router, ServiceOptions options);
  /// Mutable-corpus backend: every request takes the corpus's current
  /// generation and runs the in-process scatter-gather path against it,
  /// so queries keep serving (and stay bit-identical to a frozen
  /// ShardedDatabase over the same document set) while documents are
  /// ingested concurrently. The cache key carries the generation's
  /// epoch-salted fingerprint, so cached answers never survive a
  /// mutation.
  QueryService(const ingest::MutableCorpus& corpus, ServiceOptions options);
  /// Abandons queued requests (their futures resolve with kUnavailable)
  /// and joins the workers; in-flight requests finish first.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a request. The future is always valid: rejection (queue
  /// full) resolves it immediately with kResourceExhausted.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Callback flavor of Submit, for callers that integrate with an
  /// event loop instead of blocking on futures (the network server).
  /// `done` is invoked exactly once — from a worker thread on normal
  /// completion, or inline from the calling thread on admission
  /// rejection (kResourceExhausted) and from the teardown path on
  /// abandonment (kUnavailable). It must not throw and must tolerate
  /// running on any of those threads.
  void SubmitAsync(QueryRequest request,
                   std::function<void(QueryResponse)> done);

  /// Runs a request synchronously on the caller's thread — same cache,
  /// deadline and metrics treatment, but no admission control.
  QueryResponse ExecuteNow(QueryRequest request);

  /// Drops all cached results (e.g. when the caller swaps databases).
  void InvalidateCache();

  /// Point-in-time service state for programmatic inspection.
  struct Snapshot {
    size_t queue_depth = 0;
    int64_t running = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t truncated = 0;
    uint64_t abandoned = 0;       // queued requests dropped at shutdown
    uint64_t parallel_tasks = 0;  // ParallelFor iterations executed
    ResultCache::Stats cache;
  };
  Snapshot GetSnapshot() const;

  /// Registry dump plus cache and queue lines; the serve driver prints
  /// this verbatim.
  std::string DumpMetrics() const;

  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  QueryService(const engine::Database* db, const shard::ShardedDatabase* sharded,
               dist::ShardRouter* router, const ingest::MutableCorpus* corpus,
               ServiceOptions options);

  /// The worker-side request lifecycle (also the ExecuteNow body).
  QueryResponse Run(QueryRequest& request, Clock::time_point admitted);

  /// Scatter-gather execution against the sharded backend (sharded_
  /// != nullptr). Mirrors the serial/parallel paths' deadline and
  /// truncation semantics.
  QueryResponse RunSharded(const shard::ShardedDatabase& db,
                           const query::Query& query, engine::ExecOptions& exec,
                           size_t parallelism,
                           const std::function<bool()>& cancelled);

  /// Remote scatter-gather through router_. The router blocks this
  /// worker thread while its transports fan out; `deadline_ms` is the
  /// request's remaining budget (0 = none).
  QueryResponse RunRouted(const QueryRequest& request, int64_t deadline_ms);

  const cost::CostModel& BackendCostModel() const;

  /// Parallel evaluation of a parsed query. Returns false when the
  /// request has no exploitable parallelism (full-scan baseline,
  /// separated representation too large, single disjunct under the
  /// schema strategy); the caller then executes serially with `exec`
  /// untouched. Returns true with `out` filled otherwise.
  bool RunParallel(const query::Query& query, engine::ExecOptions& exec,
                   size_t parallelism, const std::function<bool()>& cancelled,
                   QueryResponse* out);

  std::chrono::milliseconds EffectiveDeadline(
      const QueryRequest& request) const {
    return request.deadline.count() != 0 ? request.deadline
                                         : options_.default_deadline;
  }

  /// Exactly one backend is set. Requests dispatch to db_ (serial or
  /// disjunct-parallel), to sharded_ (in-process scatter-gather), or to
  /// router_ (remote scatter-gather).
  const engine::Database* db_ = nullptr;
  const shard::ShardedDatabase* sharded_ = nullptr;
  dist::ShardRouter* router_ = nullptr;
  const ingest::MutableCorpus* mutable_ = nullptr;
  /// Folded into every cache key (see CacheKey::backend_fingerprint).
  uint32_t backend_fingerprint_ = 0;
  const ServiceOptions options_;
  ResultCache cache_;
  MetricsRegistry metrics_;

  Counter* submitted_;
  Counter* rejected_;
  Counter* completed_;
  Counter* failed_;
  Counter* deadline_exceeded_;
  Counter* truncated_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* abandoned_;
  Counter* parallel_tasks_;
  Gauge* queue_depth_;
  /// ThreadPool::QueueDepth() sampled at submit and completion — the
  /// wire-level backpressure signal (how close admission is to
  /// rejecting), readable from DumpText without a Snapshot call.
  Gauge* thread_pool_queue_depth_;
  Gauge* running_;
  LatencyHistogram* queue_wait_us_;
  LatencyHistogram* exec_latency_us_;
  LatencyHistogram* total_latency_us_;
  LatencyHistogram* parallel_fetch_us_;
  LatencyHistogram* parallel_eval_us_;
  LatencyHistogram* parallel_merge_us_;

  ThreadPool pool_;  // last member: workers stop before metrics die
};

}  // namespace approxql::service

#endif  // APPROXQL_SERVICE_QUERY_SERVICE_H_
