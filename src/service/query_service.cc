#include "service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "dist/shard_router.h"
#include "engine/fetch_plan.h"
#include "ingest/mutable_corpus.h"
#include "engine/list_ops.h"
#include "query/ast.h"
#include "query/separated.h"
#include "service/granularity.h"
#include "service/parallel.h"
#include "shard/sharded_database.h"
#include "util/crc32.h"

namespace approxql::service {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Owns a submitted request's completion callback until the worker
/// takes it. If the task is destroyed without running
/// (ThreadPool::Shutdown(kAbandon)), the destructor invokes the
/// callback with kUnavailable — no caller is ever left waiting on a
/// completion that will never come.
class PendingResponse {
 public:
  PendingResponse(std::function<void(QueryResponse)> done, Gauge* queue_depth,
                  Counter* abandoned)
      : done_(std::move(done)),
        queue_depth_(queue_depth),
        abandoned_(abandoned) {}

  PendingResponse(const PendingResponse&) = delete;
  PendingResponse& operator=(const PendingResponse&) = delete;

  ~PendingResponse() {
    if (!done_) return;
    queue_depth_->Decrement();
    abandoned_->Increment();
    QueryResponse response;
    response.status =
        util::Status::Unavailable("service shut down before the request ran");
    done_(std::move(response));
  }

  std::function<void(QueryResponse)> Take() { return std::move(done_); }

 private:
  std::function<void(QueryResponse)> done_;
  Gauge* queue_depth_;
  Counter* abandoned_;
};

}  // namespace

namespace {

uint32_t FingerprintBackend(const shard::ShardedDatabase* sharded,
                            const dist::ShardRouter* router) {
  // A distributed and an in-process sharded backend over the same
  // layout share the fingerprint but not the tag: distributed answers
  // can be degraded, so they must never alias in the cache.
  if (router != nullptr) {
    return util::Crc32c("backend=dist") ^ router->layout_fingerprint();
  }
  if (sharded != nullptr) return sharded->LayoutFingerprint();
  return util::Crc32c("backend=single");
}

}  // namespace

QueryService::QueryService(const engine::Database& db, ServiceOptions options)
    : QueryService(&db, nullptr, nullptr, nullptr, std::move(options)) {}

QueryService::QueryService(const shard::ShardedDatabase& db,
                           ServiceOptions options)
    : QueryService(nullptr, &db, nullptr, nullptr, std::move(options)) {}

QueryService::QueryService(dist::ShardRouter& router, ServiceOptions options)
    : QueryService(nullptr, nullptr, &router, nullptr, std::move(options)) {}

QueryService::QueryService(const ingest::MutableCorpus& corpus,
                           ServiceOptions options)
    : QueryService(nullptr, nullptr, nullptr, &corpus, std::move(options)) {}

QueryService::QueryService(const engine::Database* db,
                           const shard::ShardedDatabase* sharded,
                           dist::ShardRouter* router,
                           const ingest::MutableCorpus* corpus,
                           ServiceOptions options)
    : db_(db),
      sharded_(sharded),
      router_(router),
      mutable_(corpus),
      backend_fingerprint_(FingerprintBackend(sharded, router)),
      options_(options),
      cache_(options.cache_capacity),
      submitted_(metrics_.RegisterCounter("queries_submitted")),
      rejected_(metrics_.RegisterCounter("queries_rejected")),
      completed_(metrics_.RegisterCounter("queries_completed")),
      failed_(metrics_.RegisterCounter("queries_failed")),
      deadline_exceeded_(metrics_.RegisterCounter("queries_deadline_exceeded")),
      truncated_(metrics_.RegisterCounter("queries_truncated")),
      cache_hits_(metrics_.RegisterCounter("cache_hits")),
      cache_misses_(metrics_.RegisterCounter("cache_misses")),
      abandoned_(metrics_.RegisterCounter("queries_abandoned")),
      parallel_tasks_(metrics_.RegisterCounter("query_parallel_tasks")),
      queue_depth_(metrics_.RegisterGauge("queue_depth")),
      thread_pool_queue_depth_(
          metrics_.RegisterGauge("thread_pool_queue_depth")),
      running_(metrics_.RegisterGauge("queries_running")),
      queue_wait_us_(metrics_.RegisterHistogram("queue_wait_us")),
      exec_latency_us_(metrics_.RegisterHistogram("exec_latency_us")),
      total_latency_us_(metrics_.RegisterHistogram("total_latency_us")),
      parallel_fetch_us_(metrics_.RegisterHistogram("parallel_fetch_us")),
      parallel_eval_us_(metrics_.RegisterHistogram("parallel_eval_us")),
      parallel_merge_us_(metrics_.RegisterHistogram("parallel_merge_us")),
      pool_(ThreadPool::Options{options.num_threads, options.queue_capacity}) {
}

// Abandon, don't drain: a service being torn down has nobody left to
// serve, and a deep queue of expensive queries would stall the teardown
// for their full execution time. The promise guard resolves every
// abandoned future with kUnavailable.
QueryService::~QueryService() { pool_.Shutdown(DrainMode::kAbandon); }

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  SubmitAsync(std::move(request), [promise](QueryResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void QueryService::SubmitAsync(QueryRequest request,
                               std::function<void(QueryResponse)> done) {
  submitted_->Increment();
  Clock::time_point admitted = Clock::now();
  auto pending = std::make_shared<PendingResponse>(std::move(done),
                                                   queue_depth_, abandoned_);
  auto task = [this, pending, admitted,
               request = std::move(request)]() mutable {
    auto taken = pending->Take();
    queue_depth_->Decrement();
    taken(Run(request, admitted));
  };
  queue_depth_->Increment();
  if (!pool_.TrySubmit(std::move(task))) {
    // The rejected closure is already destroyed, but SubmitAsync's own
    // `pending` reference kept the guard alive; taking the callback
    // here disarms it so rejection completes exactly once.
    auto taken = pending->Take();
    queue_depth_->Decrement();
    rejected_->Increment();
    thread_pool_queue_depth_->Set(static_cast<int64_t>(pool_.QueueDepth()));
    QueryResponse response;
    response.status = util::Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.queue_capacity) +
        " waiting)");
    taken(std::move(response));
    return;
  }
  thread_pool_queue_depth_->Set(static_cast<int64_t>(pool_.QueueDepth()));
}

QueryResponse QueryService::ExecuteNow(QueryRequest request) {
  submitted_->Increment();
  return Run(request, Clock::now());
}

QueryResponse QueryService::Run(QueryRequest& request,
                                Clock::time_point admitted) {
  QueryResponse response;
  response.queue_micros = MicrosSince(admitted);
  queue_wait_us_->Record(static_cast<uint64_t>(response.queue_micros));
  running_->Increment();
  Clock::time_point started = Clock::now();

  const std::chrono::milliseconds deadline_ms = EffectiveDeadline(request);
  const bool has_deadline = deadline_ms.count() != 0;
  const Clock::time_point deadline = admitted + deadline_ms;

  auto finish = [&](QueryResponse&& r) {
    r.queue_micros = response.queue_micros;
    r.exec_micros = MicrosSince(started);
    r.total_micros = MicrosSince(admitted);
    exec_latency_us_->Record(static_cast<uint64_t>(r.exec_micros));
    total_latency_us_->Record(static_cast<uint64_t>(r.total_micros));
    running_->Decrement();
    thread_pool_queue_depth_->Set(static_cast<int64_t>(pool_.QueueDepth()));
    return std::move(r);
  };

  // A request that spent its whole deadline waiting in the queue fails
  // fast instead of burning a worker on an answer nobody awaits.
  if (has_deadline && Clock::now() >= deadline) {
    deadline_exceeded_->Increment();
    QueryResponse r;
    r.status = util::Status::DeadlineExceeded("deadline expired in queue");
    return finish(std::move(r));
  }

  auto parsed = query::Parse(request.query_text);
  if (!parsed.ok()) {
    failed_->Increment();
    QueryResponse r;
    r.status = parsed.status();
    return finish(std::move(r));
  }
  const query::Query& query = *parsed;

  // Mutable backend: pin this request to the corpus's current
  // generation — one consistent state for the cache key, the evaluation
  // and the reported epoch, however long the query runs.
  std::shared_ptr<const shard::ShardedDatabase> pinned;
  if (mutable_ != nullptr) pinned = mutable_->snapshot();

  // Live-cluster routed backend: the backend fingerprint is the static
  // cluster configuration, not the moving document layout, so a cached
  // answer could outlive the data it was computed from. Never cache.
  const bool bypass_cache = request.bypass_cache ||
                            (router_ != nullptr && router_->live());

  const cost::CostModel& effective_model = request.exec.cost_model != nullptr
                                               ? *request.exec.cost_model
                                               : BackendCostModel();
  CacheKey key;
  key.normalized_query = query.ToString();
  key.strategy = request.exec.strategy;
  key.n = request.exec.n;
  key.cost_fingerprint = FingerprintCostModel(effective_model);
  // The generation fingerprint is epoch-salted, so a cached answer can
  // only ever be served against the exact corpus state it was computed
  // from.
  key.backend_fingerprint =
      pinned != nullptr ? pinned->LayoutFingerprint() : backend_fingerprint_;

  if (!bypass_cache) {
    if (auto cached = cache_.Lookup(key); cached != nullptr) {
      cache_hits_->Increment();
      completed_->Increment();
      QueryResponse r;
      r.answers = *cached;
      r.cache_hit = true;
      if (pinned != nullptr) {
        r.backend_epoch = pinned->epoch();
        r.backend_snapshot = pinned;
      }
      return finish(std::move(r));
    }
    cache_misses_->Increment();
  }

  // Deadline enforcement: the schema strategy polls cooperatively
  // between top-k rounds and second-level executions, producing a
  // correct-prefix partial answer. The direct strategies have no safe
  // interior stopping point (one recursive pass over the list algebra),
  // so their deadline is only checked at dispatch above. The parallel
  // path additionally polls between ParallelFor iterations — but a
  // partial disjunct union is *not* a correct prefix of the global
  // ranking, so a deadline there fails the request (kDeadlineExceeded)
  // instead of returning truncated answers.
  std::function<bool()> cancelled;
  if (has_deadline) {
    cancelled = [deadline] { return Clock::now() >= deadline; };
  }
  engine::ExecOptions exec = request.exec;
  engine::SchemaEvalStats schema_stats;
  if (exec.strategy == engine::Strategy::kSchema) {
    if (has_deadline) {
      exec.schema.cancelled = cancelled;
    }
    if (exec.schema_stats_out == nullptr) {
      exec.schema_stats_out = &schema_stats;
    }
  }

  const size_t parallelism = request.parallelism != 0 ? request.parallelism
                                                      : options_.parallelism;
  QueryResponse r;
  if (router_ != nullptr) {
    int64_t remaining_ms = 0;
    if (has_deadline) {
      remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - Clock::now())
                         .count();
      if (remaining_ms < 1) remaining_ms = 1;
    }
    r = RunRouted(request, remaining_ms);
  } else if (sharded_ != nullptr) {
    r = RunSharded(*sharded_, query, exec, parallelism, cancelled);
  } else if (pinned != nullptr) {
    r = RunSharded(*pinned, query, exec, parallelism, cancelled);
    r.backend_epoch = pinned->epoch();
    r.backend_snapshot = pinned;
  } else {
    bool handled =
        parallelism > 1 && RunParallel(query, exec, parallelism, cancelled, &r);
    if (!handled) {
      auto answers = db_->Execute(query, exec);
      if (answers.ok()) {
        r.answers = std::move(*answers);
      } else {
        r.status = answers.status();
      }
    }
  }

  if (!r.status.ok()) {
    if (r.status.IsDeadlineExceeded()) {
      deadline_exceeded_->Increment();
    } else {
      failed_->Increment();
    }
    r.answers.clear();
    return finish(std::move(r));
  }

  if (exec.strategy == engine::Strategy::kSchema &&
      exec.schema_stats_out->cancelled) {
    r.truncated = true;
    truncated_->Increment();
    deadline_exceeded_->Increment();
  }
  completed_->Increment();
  // Only complete answer lists are cacheable; a truncated prefix (or a
  // degraded scatter missing whole shards' answers) served from cache
  // would silently under-answer future requests.
  if (!bypass_cache && !r.truncated && !r.degraded) {
    cache_.Insert(key, r.answers);
  }
  return finish(std::move(r));
}

bool QueryService::RunParallel(const query::Query& query,
                               engine::ExecOptions& exec, size_t parallelism,
                               const std::function<bool()>& cancelled,
                               QueryResponse* out) {
  // The full-scan baseline deliberately ignores the index; the fetch
  // plan has nothing to offer it and a baseline should stay a baseline.
  if (exec.strategy == engine::Strategy::kFullScan) return false;
  const bool direct = exec.strategy == engine::Strategy::kDirect;

  const cost::CostModel& model =
      exec.cost_model != nullptr ? *exec.cost_model : db_->cost_model();

  // The separated representation is exponential in the or-count; when
  // it overflows its limit, the serial engines (which encode "or"
  // natively in the expanded DAG) handle the query instead.
  auto separated = query::SeparatedRepresentation(query);
  if (!separated.ok()) return false;
  const size_t disjuncts = separated->size();

  auto expanded = query::ExpandedQuery::Build(query, model);
  if (!expanded.ok()) return false;

  // Adaptive granularity: per-slot posting-size estimates for the full
  // query, from index statistics only (never a fetch). Below the floor
  // the fan-out overhead dominates the work being split — decline, and
  // the caller runs the serial path. For the schema strategy the data
  // postings still bound the instance-scanning volume, so the same
  // estimate serves both strategies.
  engine::FetchPlan plan(*expanded);
  std::vector<size_t> estimates(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    estimates[i] =
        plan.EstimateEntries(i, db_->label_index(), db_->tree().labels());
  }
  if (options_.parallel_min_work > 0 &&
      EstimateTotalWork(estimates) < options_.parallel_min_work) {
    return false;
  }

  ParallelForOptions pf;
  pf.parallelism = parallelism;
  pf.cancelled = cancelled;

  // Second-level wave runner injected into the schema evaluators (the
  // engine layer cannot depend on the pool). The runner contract
  // requires every index to execute, so no cancellation here — the
  // evaluator bounds each wave and polls its own cancellation between
  // waves, the same granularity as its serial loop.
  ParallelForOptions wave_pf;
  wave_pf.parallelism = parallelism;
  auto wave_runner = [this, wave_pf](size_t count,
                                     const std::function<void(size_t)>& fn) {
    ParallelForResult waved = ParallelFor(&pool_, count, fn, wave_pf);
    parallel_tasks_->Increment(waved.executed);
  };

  // Stage 1 (direct only): materialize every per-label index read of
  // the full query concurrently. Sub-queries fetch a subset of the full
  // query's (type, label, as_leaf) slots, so one plan serves them all.
  // A task per ~parallel_fetch_batch estimated entries instead of one
  // per slot: parallel_tasks scales with real work, not plan size.
  if (direct) {
    Clock::time_point fetch_started = Clock::now();
    const engine::EncodedTree tree = engine::EncodedTree::Of(db_->tree());
    const std::vector<size_t> batch_ends =
        PackBatches(estimates, options_.parallel_fetch_batch);
    ParallelForResult fetched = ParallelFor(
        &pool_, batch_ends.size(),
        [&](size_t b) {
          for (size_t i = b == 0 ? 0 : batch_ends[b - 1]; i < batch_ends[b];
               ++i) {
            plan.Materialize(i, tree, db_->label_index(),
                             db_->tree().labels());
          }
        },
        pf);
    parallel_tasks_->Increment(fetched.executed);
    parallel_fetch_us_->Record(
        static_cast<uint64_t>(MicrosSince(fetch_started)));
    if (fetched.cancelled) {
      out->parallel = true;
      out->status = util::Status::DeadlineExceeded(
          "deadline expired during parallel evaluation");
      return true;
    }
    exec.direct.fetch_plan = &plan;
  }

  if (disjuncts < 2) {
    // One conjunct: no disjunct fan-out. The direct strategy already
    // parallelized its fetch stage above; the schema strategy runs its
    // second-level rounds as concurrent waves instead.
    if (!direct) {
      exec.schema.parallel_runner = wave_runner;
      exec.schema.parallel_min_batch = options_.parallel_min_skeletons;
    }
    Clock::time_point eval_started = Clock::now();
    auto answers = db_->Execute(query, exec);
    parallel_eval_us_->Record(static_cast<uint64_t>(MicrosSince(eval_started)));
    if (answers.ok()) {
      out->answers = std::move(*answers);
    } else {
      out->status = answers.status();
    }
    out->parallel = true;
    return true;
  }

  // Stage 2: evaluate the disjuncts concurrently, each for the full
  // top n. Per-disjunct top-n lists suffice for the exact global top n:
  // every global answer's cost is its minimum over the disjuncts, and
  // any disjunct entry outside that disjunct's top n is dominated by n
  // better (cost, root) pairs which also reach the merge.
  struct Part {
    util::Status status = util::Status::OK();
    std::vector<engine::QueryAnswer> answers;
    engine::SchemaEvalStats schema_stats;
    engine::EvalStats direct_stats;
  };
  std::vector<query::Query> subqueries;
  subqueries.reserve(disjuncts);
  for (const query::ConjunctiveQuery& conjunct : *separated) {
    subqueries.push_back(conjunct.ToQuery());
  }
  std::vector<Part> parts(disjuncts);
  // Disjuncts differ only in their or-branch choices, so their skeleton
  // closures overlap heavily; a shared second-level memo lets whichever
  // disjunct executes a skeleton first answer it for all the others
  // (results are deterministic per signature, so sharing cannot change
  // answers — only skip re-execution).
  engine::SharedSkeletonMemo skeleton_memo;
  // The same granularity logic batches the disjuncts: consecutive
  // disjuncts whose combined estimated work stays under the floor share
  // one task instead of costing one each. An un-estimable disjunct
  // (expansion failed here; Execute will surface the error) counts as
  // unknown and gets its own task.
  std::vector<size_t> disjunct_work(disjuncts,
                                    index::PostingSource::kUnknownSize);
  if (options_.parallel_min_work > 0) {
    for (size_t i = 0; i < disjuncts; ++i) {
      auto sub_expanded = query::ExpandedQuery::Build(subqueries[i], model);
      if (!sub_expanded.ok()) continue;
      engine::FetchPlan sub_plan(*sub_expanded);
      std::vector<size_t> sub_estimates(sub_plan.size());
      for (size_t s = 0; s < sub_plan.size(); ++s) {
        sub_estimates[s] = sub_plan.EstimateEntries(s, db_->label_index(),
                                                    db_->tree().labels());
      }
      disjunct_work[i] = EstimateTotalWork(sub_estimates);
    }
  }
  const std::vector<size_t> disjunct_ends =
      PackBatches(disjunct_work, options_.parallel_min_work);
  Clock::time_point eval_started = Clock::now();
  ParallelForResult evaluated = ParallelFor(
      &pool_, disjunct_ends.size(),
      [&](size_t b) {
        for (size_t i = b == 0 ? 0 : disjunct_ends[b - 1];
             i < disjunct_ends[b]; ++i) {
          engine::ExecOptions sub = exec;
          sub.schema_stats_out = &parts[i].schema_stats;
          sub.direct_stats_out = &parts[i].direct_stats;
          if (sub.strategy == engine::Strategy::kSchema) {
            sub.schema.shared_memo = &skeleton_memo;
            // Disjunct tasks fork their second-level waves back into
            // the pool; idle workers (done with their own disjuncts)
            // steal that work instead of waiting at the barrier.
            sub.schema.parallel_runner = wave_runner;
            sub.schema.parallel_min_batch = options_.parallel_min_skeletons;
          }
          auto result = db_->Execute(subqueries[i], sub);
          if (result.ok()) {
            parts[i].answers = std::move(*result);
          } else {
            parts[i].status = result.status();
          }
        }
      },
      pf);
  parallel_tasks_->Increment(evaluated.executed);
  parallel_eval_us_->Record(static_cast<uint64_t>(MicrosSince(eval_started)));
  out->parallel = true;

  // Surface aggregate evaluator counters: sums for work counts, max for
  // final_k, OR for the flags — the caller sees the union of what the
  // disjunct evaluations did.
  if (exec.schema_stats_out != nullptr) {
    engine::SchemaEvalStats total;
    for (const Part& part : parts) {
      total.rounds += part.schema_stats.rounds;
      total.final_k = std::max(total.final_k, part.schema_stats.final_k);
      total.entries_created += part.schema_stats.entries_created;
      total.second_level_executed += part.schema_stats.second_level_executed;
      total.instances_scanned += part.schema_stats.instances_scanned;
      total.shared_memo_hits += part.schema_stats.shared_memo_hits;
      total.k_capped = total.k_capped || part.schema_stats.k_capped;
      total.cancelled = total.cancelled || part.schema_stats.cancelled;
    }
    *exec.schema_stats_out = total;
  }
  if (exec.direct_stats_out != nullptr) {
    engine::EvalStats total;
    for (const Part& part : parts) {
      total.fetches += part.direct_stats.fetches;
      total.entries_fetched += part.direct_stats.entries_fetched;
      total.list_ops += part.direct_stats.list_ops;
      total.cache_hits += part.direct_stats.cache_hits;
      total.cache_misses += part.direct_stats.cache_misses;
      total.and_short_circuits += part.direct_stats.and_short_circuits;
    }
    *exec.direct_stats_out = total;
  }

  for (const Part& part : parts) {
    if (!part.status.ok()) {
      out->status = part.status;
      return true;
    }
  }
  // A deadline mid-fan-out leaves some disjuncts partial or unrun; the
  // union of what finished is not a correct prefix of the global
  // ranking, so the request fails rather than under-answer silently.
  bool fired = evaluated.cancelled;
  for (const Part& part : parts) {
    fired = fired || part.schema_stats.cancelled;
  }
  if (fired) {
    out->status = util::Status::DeadlineExceeded(
        "deadline expired during parallel evaluation");
    if (exec.schema_stats_out != nullptr) {
      exec.schema_stats_out->cancelled = true;
    }
    return true;
  }

  // Stage 3: k-way merge of the per-disjunct rankings (first occurrence
  // of a root wins = its minimum cost over the disjuncts).
  Clock::time_point merge_started = Clock::now();
  std::vector<std::vector<engine::RootCost>> lists(disjuncts);
  for (size_t i = 0; i < disjuncts; ++i) {
    lists[i].reserve(parts[i].answers.size());
    for (const engine::QueryAnswer& answer : parts[i].answers) {
      lists[i].push_back({answer.root, answer.cost});
    }
  }
  std::vector<engine::RootCost> merged = engine::MergeTopN(lists, exec.n);
  out->answers.reserve(merged.size());
  for (const engine::RootCost& rc : merged) {
    out->answers.push_back({rc.root, rc.cost});
  }
  parallel_merge_us_->Record(static_cast<uint64_t>(MicrosSince(merge_started)));
  return true;
}

QueryResponse QueryService::RunSharded(const shard::ShardedDatabase& db,
                                       const query::Query& query,
                                       engine::ExecOptions& exec,
                                       size_t parallelism,
                                       const std::function<bool()>& cancelled) {
  QueryResponse r;
  shard::ScatterOptions scatter;
  scatter.pool = &pool_;
  scatter.parallelism = parallelism;
  scatter.cancelled = cancelled;
  shard::ScatterStats stats;
  Clock::time_point eval_started = Clock::now();
  auto answers = db.Execute(query, exec, scatter, &stats);
  parallel_eval_us_->Record(static_cast<uint64_t>(MicrosSince(eval_started)));
  parallel_tasks_->Increment(stats.shards.size());
  r.parallel = db.num_shards() > 1 && parallelism > 1;
  // Surface the aggregated evaluator counters through the caller's
  // stats slot (Run's truncation logic reads the cancelled flag there).
  if (exec.schema_stats_out != nullptr) {
    *exec.schema_stats_out = stats.schema;
  }
  if (exec.direct_stats_out != nullptr) {
    *exec.direct_stats_out = stats.direct;
  }
  if (answers.ok()) {
    r.answers = std::move(*answers);
  } else {
    r.status = answers.status();
  }
  return r;
}

QueryResponse QueryService::RunRouted(const QueryRequest& request,
                                      int64_t deadline_ms) {
  QueryResponse r;
  if (request.exec.cost_model != nullptr) {
    // Remote shards evaluate with their own (identically built) model;
    // shipping an arbitrary per-request model is not supported, and
    // silently ignoring it would poison the cost-fingerprinted cache.
    r.status = util::Status::InvalidArgument(
        "per-request cost models are not supported by the distributed "
        "backend");
    return r;
  }
  auto routed = router_->Execute(request.query_text, request.exec.strategy,
                                 request.exec.n, deadline_ms,
                                 request.min_epochs);
  if (!routed.ok()) {
    r.status = routed.status();
    return r;
  }
  r.answers = std::move(routed->answers);
  r.degraded = routed->degraded;
  r.missing_shards = std::move(routed->missing_shards);
  r.backend_epoch = routed->backend_epoch;
  r.parallel = router_->num_shards() > 1;
  return r;
}

const cost::CostModel& QueryService::BackendCostModel() const {
  if (router_ != nullptr) return router_->cost_model();
  if (mutable_ != nullptr) return mutable_->options().model;
  return sharded_ != nullptr ? sharded_->cost_model() : db_->cost_model();
}

void QueryService::InvalidateCache() { cache_.Invalidate(); }

QueryService::Snapshot QueryService::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.queue_depth = pool_.QueueDepth();
  snapshot.running = running_->Value();
  snapshot.submitted = submitted_->Value();
  snapshot.rejected = rejected_->Value();
  snapshot.completed = completed_->Value();
  snapshot.failed = failed_->Value();
  snapshot.deadline_exceeded = deadline_exceeded_->Value();
  snapshot.truncated = truncated_->Value();
  snapshot.abandoned = abandoned_->Value();
  snapshot.parallel_tasks = parallel_tasks_->Value();
  snapshot.cache = cache_.GetStats();
  return snapshot;
}

std::string QueryService::DumpMetrics() const {
  std::string out = metrics_.DumpText();
  out += "thread_pool_steals " + std::to_string(pool_.steals()) + "\n";
  ResultCache::Stats cache = cache_.GetStats();
  out += "cache_evictions " + std::to_string(cache.evictions) + "\n";
  out += "cache_size " + std::to_string(cache.size) + "\n";
  out += "cache_capacity " + std::to_string(cache.capacity) + "\n";
  double total = static_cast<double>(cache.hits + cache.misses);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f",
                total == 0 ? 0.0 : static_cast<double>(cache.hits) / total);
  out += std::string("cache_hit_rate ") + rate + "\n";
  if (sharded_ != nullptr) {
    out += sharded_->DumpMetrics();
  }
  if (router_ != nullptr) {
    out += router_->DumpMetrics();
  }
  if (mutable_ != nullptr) {
    // The corpus registry carries both the ingest_* metrics and the
    // per-shard fetch/eval metrics of every published generation.
    out += mutable_->metrics()->DumpText();
    std::vector<ingest::MutableCorpus::ShardStatus> statuses =
        mutable_->ShardStatuses();
    for (size_t i = 0; i < statuses.size(); ++i) {
      const std::string stem = "ingest_shard" + std::to_string(i);
      out += stem + "_documents " + std::to_string(statuses[i].documents) +
             "\n";
      out += stem + "_last_seq " + std::to_string(statuses[i].last_seq) + "\n";
      out += stem + "_wal_bytes " + std::to_string(statuses[i].wal_bytes) +
             "\n";
      out += stem + "_vlog_bytes " + std::to_string(statuses[i].vlog_bytes) +
             "\n";
    }
  }
  return out;
}

}  // namespace approxql::service
