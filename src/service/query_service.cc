#include "service/query_service.h"

#include <cstdio>
#include <utility>

#include "query/ast.h"

namespace approxql::service {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

QueryService::QueryService(const engine::Database& db, ServiceOptions options)
    : db_(db),
      options_(options),
      cache_(options.cache_capacity),
      submitted_(metrics_.RegisterCounter("queries_submitted")),
      rejected_(metrics_.RegisterCounter("queries_rejected")),
      completed_(metrics_.RegisterCounter("queries_completed")),
      failed_(metrics_.RegisterCounter("queries_failed")),
      deadline_exceeded_(metrics_.RegisterCounter("queries_deadline_exceeded")),
      truncated_(metrics_.RegisterCounter("queries_truncated")),
      cache_hits_(metrics_.RegisterCounter("cache_hits")),
      cache_misses_(metrics_.RegisterCounter("cache_misses")),
      queue_depth_(metrics_.RegisterGauge("queue_depth")),
      running_(metrics_.RegisterGauge("queries_running")),
      queue_wait_us_(metrics_.RegisterHistogram("queue_wait_us")),
      exec_latency_us_(metrics_.RegisterHistogram("exec_latency_us")),
      total_latency_us_(metrics_.RegisterHistogram("total_latency_us")),
      pool_(ThreadPool::Options{options.num_threads, options.queue_capacity}) {
}

QueryService::~QueryService() { pool_.Shutdown(); }

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  submitted_->Increment();
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  Clock::time_point admitted = Clock::now();
  auto task = [this, promise, admitted,
               request = std::move(request)]() mutable {
    queue_depth_->Decrement();
    promise->set_value(Run(request, admitted));
  };
  queue_depth_->Increment();
  if (!pool_.TrySubmit(std::move(task))) {
    queue_depth_->Decrement();
    rejected_->Increment();
    promise->set_value(QueryResponse{
        util::Status::ResourceExhausted(
            "admission queue full (" +
            std::to_string(options_.queue_capacity) + " waiting)"),
        {}, false, false, 0, 0, 0});
    return future;
  }
  return future;
}

QueryResponse QueryService::ExecuteNow(QueryRequest request) {
  submitted_->Increment();
  return Run(request, Clock::now());
}

QueryResponse QueryService::Run(QueryRequest& request,
                                Clock::time_point admitted) {
  QueryResponse response;
  response.queue_micros = MicrosSince(admitted);
  queue_wait_us_->Record(static_cast<uint64_t>(response.queue_micros));
  running_->Increment();
  Clock::time_point started = Clock::now();

  const std::chrono::milliseconds deadline_ms = EffectiveDeadline(request);
  const bool has_deadline = deadline_ms.count() != 0;
  const Clock::time_point deadline = admitted + deadline_ms;

  auto finish = [&](QueryResponse&& r) {
    r.queue_micros = response.queue_micros;
    r.exec_micros = MicrosSince(started);
    r.total_micros = MicrosSince(admitted);
    exec_latency_us_->Record(static_cast<uint64_t>(r.exec_micros));
    total_latency_us_->Record(static_cast<uint64_t>(r.total_micros));
    running_->Decrement();
    return std::move(r);
  };

  // A request that spent its whole deadline waiting in the queue fails
  // fast instead of burning a worker on an answer nobody awaits.
  if (has_deadline && Clock::now() >= deadline) {
    deadline_exceeded_->Increment();
    QueryResponse r;
    r.status = util::Status::DeadlineExceeded("deadline expired in queue");
    return finish(std::move(r));
  }

  auto parsed = query::Parse(request.query_text);
  if (!parsed.ok()) {
    failed_->Increment();
    QueryResponse r;
    r.status = parsed.status();
    return finish(std::move(r));
  }
  const query::Query& query = *parsed;

  const cost::CostModel& effective_model = request.exec.cost_model != nullptr
                                               ? *request.exec.cost_model
                                               : db_.cost_model();
  CacheKey key;
  key.normalized_query = query.ToString();
  key.strategy = request.exec.strategy;
  key.n = request.exec.n;
  key.cost_fingerprint = FingerprintCostModel(effective_model);

  if (!request.bypass_cache) {
    if (auto cached = cache_.Lookup(key); cached.has_value()) {
      cache_hits_->Increment();
      completed_->Increment();
      QueryResponse r;
      r.answers = std::move(*cached);
      r.cache_hit = true;
      return finish(std::move(r));
    }
    cache_misses_->Increment();
  }

  // Deadline enforcement: the schema strategy polls cooperatively
  // between top-k rounds and second-level executions, producing a
  // correct-prefix partial answer. The direct strategies have no safe
  // interior stopping point (one recursive pass over the list algebra),
  // so their deadline is only checked at dispatch above.
  engine::ExecOptions exec = request.exec;
  engine::SchemaEvalStats schema_stats;
  if (exec.strategy == engine::Strategy::kSchema) {
    if (has_deadline) {
      exec.schema.cancelled = [deadline] { return Clock::now() >= deadline; };
    }
    if (exec.schema_stats_out == nullptr) {
      exec.schema_stats_out = &schema_stats;
    }
  }

  auto answers = db_.Execute(query, exec);
  if (!answers.ok()) {
    failed_->Increment();
    QueryResponse r;
    r.status = answers.status();
    return finish(std::move(r));
  }

  QueryResponse r;
  r.answers = std::move(*answers);
  if (exec.strategy == engine::Strategy::kSchema &&
      exec.schema_stats_out->cancelled) {
    r.truncated = true;
    truncated_->Increment();
    deadline_exceeded_->Increment();
  }
  completed_->Increment();
  // Only complete answer lists are cacheable; a truncated prefix served
  // from cache would silently under-answer future requests.
  if (!request.bypass_cache && !r.truncated) {
    cache_.Insert(key, r.answers);
  }
  return finish(std::move(r));
}

void QueryService::InvalidateCache() { cache_.Invalidate(); }

QueryService::Snapshot QueryService::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.queue_depth = pool_.QueueDepth();
  snapshot.running = running_->Value();
  snapshot.submitted = submitted_->Value();
  snapshot.rejected = rejected_->Value();
  snapshot.completed = completed_->Value();
  snapshot.failed = failed_->Value();
  snapshot.deadline_exceeded = deadline_exceeded_->Value();
  snapshot.truncated = truncated_->Value();
  snapshot.cache = cache_.GetStats();
  return snapshot;
}

std::string QueryService::DumpMetrics() const {
  std::string out = metrics_.DumpText();
  ResultCache::Stats cache = cache_.GetStats();
  out += "cache_evictions " + std::to_string(cache.evictions) + "\n";
  out += "cache_size " + std::to_string(cache.size) + "\n";
  out += "cache_capacity " + std::to_string(cache.capacity) + "\n";
  double total = static_cast<double>(cache.hits + cache.misses);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f",
                total == 0 ? 0.0 : static_cast<double>(cache.hits) / total);
  out += std::string("cache_hit_rate ") + rate + "\n";
  return out;
}

}  // namespace approxql::service
