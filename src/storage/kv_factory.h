// Selects a KvStore backend by name — the one place `--store=mem|disk`
// flags resolve to a concrete store, shared by builders, servers and
// tools so they cannot drift.
#ifndef APPROXQL_STORAGE_KV_FACTORY_H_
#define APPROXQL_STORAGE_KV_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "storage/kv_store.h"
#include "util/status.h"

namespace approxql::storage {

enum class StoreKind {
  kMem,   // MemKvStore: everything in RAM, nothing persisted.
  kDisk,  // DiskKvStore: B+tree pages in a file.
};

/// "mem" or "disk"; anything else is InvalidArgument.
util::Result<StoreKind> ParseStoreKind(std::string_view text);

const char* StoreKindName(StoreKind kind);

/// Creates a bare store of `kind`. `path` names the backing file for
/// kDisk and is ignored for kMem.
util::Result<std::unique_ptr<KvStore>> CreateKvStore(
    StoreKind kind, const std::string& path, bool create_if_missing);

/// A store factory: invoked once per shard with that shard's backing
/// path. Builders take this so callers pick the backend without the
/// builder knowing about files or flags.
using StoreFactory =
    std::function<util::Result<std::unique_ptr<KvStore>>(const std::string&)>;

/// Factory producing stores of `kind`; kMem ignores the path argument.
StoreFactory MakeStoreFactory(StoreKind kind);

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_KV_FACTORY_H_
