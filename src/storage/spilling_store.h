// KvStore decorator that spills large values into a ValueLog, keeping
// only a tagged SegmentPointer in the underlying (B+tree) store — the
// jubilant-db pattern: leaves stay small, bulk bytes live in an
// append-only log. The spill decision is a pure function of the value
// size and the fixed inline threshold, so WAL replay that re-issues the
// same Puts in the same order reproduces the identical log layout
// byte for byte (DurableShard verifies this against the WAL records).
//
// Stored representation:
//   kInlineTag  (1 byte) + raw value
//   kSpilledTag (1 byte) + varint offset + varint length
#ifndef APPROXQL_STORAGE_SPILLING_STORE_H_
#define APPROXQL_STORAGE_SPILLING_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "storage/kv_store.h"
#include "storage/vlog/value_log.h"

namespace approxql::storage {

inline constexpr char kInlineTag = 1;
inline constexpr char kSpilledTag = 2;

/// Values strictly larger than this many bytes spill to the value log.
inline constexpr size_t kDefaultInlineThreshold = 256;

class SpillingStore : public KvStore {
 public:
  /// Takes ownership of both. `inline_threshold` must stay constant
  /// across the store's whole life (it is part of the layout contract).
  SpillingStore(std::unique_ptr<KvStore> inner,
                std::unique_ptr<ValueLog> vlog,
                size_t inline_threshold = kDefaultInlineThreshold)
      : inner_(std::move(inner)),
        vlog_(std::move(vlog)),
        inline_threshold_(inline_threshold) {}

  util::Status Put(std::string_view key, std::string_view value) override;
  util::Result<std::string> Get(std::string_view key) const override;
  util::Status Delete(std::string_view key, bool* existed = nullptr) override;
  util::Result<bool> Contains(std::string_view key) const override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t KeyCount() const override { return inner_->KeyCount(); }
  /// Values first, then the pointers that reference them.
  util::Status Flush() override;

  struct Stats {
    uint64_t inline_puts = 0;
    uint64_t spilled_puts = 0;
    uint64_t spilled_bytes = 0;
    /// Value-log bytes whose pointer was overwritten or deleted since
    /// this store generation was created. Dead weight the next
    /// checkpoint's log rewrite reclaims; until then the ratio
    /// garbage_bytes / vlog size measures how stale the log is.
    uint64_t garbage_bytes = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t inline_threshold() const { return inline_threshold_; }
  ValueLog* vlog() { return vlog_.get(); }
  KvStore* inner() { return inner_.get(); }

 private:
  friend class SpillingIterator;

  util::Result<std::string> Resolve(std::string_view stored) const;
  /// If `key` currently maps to a spilled segment, that segment is about
  /// to become unreachable — charge it to stats_.garbage_bytes.
  void AccountGarbage(std::string_view key);

  std::unique_ptr<KvStore> inner_;
  std::unique_ptr<ValueLog> vlog_;
  size_t inline_threshold_;
  Stats stats_;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_SPILLING_STORE_H_
