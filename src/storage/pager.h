// Page-level file manager: fixed-size pages in a single file, a freelist
// of recycled pages, and a write-back cache. The B+tree sits on top.
//
// Concurrency/durability contract: single-threaded, single-writer; pages
// are flushed explicitly (Flush/close). Crash atomicity is out of scope
// for this reproduction substrate and documented in DESIGN.md.
#ifndef APPROXQL_STORAGE_PAGER_H_
#define APPROXQL_STORAGE_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace approxql::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0;  // page 0 is the meta page
inline constexpr size_t kPageSize = 4096;
/// The last four bytes of every page hold a CRC-32C of the rest,
/// verified on every read from disk; page content must stay below this.
inline constexpr size_t kPageUsableSize = kPageSize - 4;

struct Page {
  std::vector<uint8_t> data;
  bool dirty = false;
  uint64_t last_use = 0;  // LRU stamp maintained by the pager
};

class Pager {
 public:
  /// Opens or creates the file. A fresh file gets a meta page; an
  /// existing file is validated (magic, page size, length).
  static util::Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                                   bool create_if_missing);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a page (recycling the freelist first). The returned page
  /// is zeroed and dirty.
  util::Result<PageId> Allocate();

  /// Returns the freed page to the freelist.
  util::Status Free(PageId id);

  /// Fetches a page through the cache. The returned pointer is valid
  /// until the next EvictIfNeeded() or pager destruction — callers must
  /// not hold it across other pager calls that may evict (the B+tree
  /// only uses pages transiently and evicts between public operations).
  util::Result<Page*> Fetch(PageId id);

  void MarkDirty(PageId id);

  /// Writes all dirty pages and the meta page.
  util::Status Flush();

  /// Flush() plus fsync: the pages are durable on media when this
  /// returns, not merely in the OS buffer cache. The WAL checkpoint
  /// protocol depends on this ordering point.
  util::Status Sync();

  /// Drops every cached page (dirty ones included) and closes the file
  /// WITHOUT writing anything — the on-disk state stays exactly as the
  /// last Flush left it. Simulates `kill -9` in crash-recovery tests.
  /// The pager is unusable afterwards; destroy it.
  void Abandon();

  /// Caps the number of cached pages; 0 (default) = unbounded.
  void set_cache_limit(size_t pages) { cache_limit_ = pages; }
  size_t cached_pages() const { return cache_.size(); }

  /// Drops least-recently-used pages above the cache limit. Dirty pages
  /// are written back before being dropped. Invalidates Page pointers.
  util::Status EvictIfNeeded();

  /// 4 user-visible 32-bit slots in the meta page (the B+tree stores its
  /// root page id and entry count here).
  uint32_t GetMetaSlot(int slot) const;
  void SetMetaSlot(int slot, uint32_t value);

  PageId page_count() const { return page_count_; }
  size_t freelist_size() const;

 private:
  Pager(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  util::Status LoadMeta();
  util::Status WriteMeta();
  util::Status ReadPageFromFile(PageId id, Page* page);
  /// Stamps the checksum trailer, then writes.
  util::Status WritePageToFile(PageId id, Page* page);

  std::FILE* file_;
  std::string path_;
  PageId page_count_ = 1;       // includes the meta page
  PageId freelist_head_ = kInvalidPage;
  uint32_t meta_slots_[4] = {0, 0, 0, 0};
  bool meta_dirty_ = false;
  size_t cache_limit_ = 0;
  uint64_t use_clock_ = 0;
  std::unordered_map<PageId, std::unique_ptr<Page>> cache_;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_PAGER_H_
