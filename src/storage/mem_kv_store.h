// In-memory KvStore over std::map. Default store for query evaluation
// benchmarks (the paper measures algorithm time, not disk time).
#ifndef APPROXQL_STORAGE_MEM_KV_STORE_H_
#define APPROXQL_STORAGE_MEM_KV_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "storage/kv_store.h"

namespace approxql::storage {

class MemKvStore : public KvStore {
 public:
  MemKvStore() = default;

  util::Status Put(std::string_view key, std::string_view value) override;
  util::Result<std::string> Get(std::string_view key) const override;
  util::Status Delete(std::string_view key, bool* existed) override;
  util::Result<bool> Contains(std::string_view key) const override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t KeyCount() const override { return map_.size(); }
  util::Status Flush() override { return util::Status::OK(); }

 private:
  std::map<std::string, std::string, std::less<>> map_;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_MEM_KV_STORE_H_
