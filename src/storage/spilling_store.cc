#include "storage/spilling_store.h"

#include <utility>

#include "util/varint.h"

namespace approxql::storage {

using util::Result;
using util::Status;

void SpillingStore::AccountGarbage(std::string_view key) {
  auto old = inner_->Get(key);
  if (!old.ok() || old->empty() || old->front() != kSpilledTag) return;
  util::VarintReader reader(std::string_view(*old).substr(1));
  SegmentPointer pointer;
  if (!reader.GetVarint64(&pointer.offset).ok()) return;
  if (!reader.GetVarint64(&pointer.length).ok()) return;
  stats_.garbage_bytes += pointer.length;
}

Status SpillingStore::Put(std::string_view key, std::string_view value) {
  AccountGarbage(key);
  std::string stored;
  if (value.size() > inline_threshold_) {
    ASSIGN_OR_RETURN(SegmentPointer pointer, vlog_->Append(value));
    stored.reserve(21);
    stored.push_back(kSpilledTag);
    util::PutVarint64(&stored, pointer.offset);
    util::PutVarint64(&stored, pointer.length);
    stats_.spilled_puts += 1;
    stats_.spilled_bytes += value.size();
  } else {
    stored.reserve(value.size() + 1);
    stored.push_back(kInlineTag);
    stored.append(value);
    stats_.inline_puts += 1;
  }
  return inner_->Put(key, stored);
}

Result<std::string> SpillingStore::Resolve(std::string_view stored) const {
  if (stored.empty()) {
    return Status::Corruption("spilling store: empty stored value");
  }
  if (stored.front() == kInlineTag) {
    return std::string(stored.substr(1));
  }
  if (stored.front() != kSpilledTag) {
    return Status::Corruption("spilling store: unknown value tag " +
                              std::to_string(stored.front()));
  }
  util::VarintReader reader(stored.substr(1));
  SegmentPointer pointer;
  RETURN_IF_ERROR(reader.GetVarint64(&pointer.offset));
  RETURN_IF_ERROR(reader.GetVarint64(&pointer.length));
  if (!reader.empty()) {
    return Status::Corruption("spilling store: trailing pointer bytes");
  }
  return vlog_->Read(pointer);
}

Result<std::string> SpillingStore::Get(std::string_view key) const {
  ASSIGN_OR_RETURN(std::string stored, inner_->Get(key));
  return Resolve(stored);
}

Status SpillingStore::Delete(std::string_view key, bool* existed) {
  // The spilled segment (if any) becomes garbage until the next
  // checkpoint rewrites the log with only live values.
  AccountGarbage(key);
  return inner_->Delete(key, existed);
}

Result<bool> SpillingStore::Contains(std::string_view key) const {
  return inner_->Contains(key);
}

Status SpillingStore::Flush() {
  RETURN_IF_ERROR(vlog_->Sync());
  return inner_->Flush();
}

/// Iterator that resolves spilled values on access. value() materializes
/// into an owned buffer (the base class hands out string_views).
class SpillingIterator : public KvIterator {
 public:
  SpillingIterator(const SpillingStore* store,
                   std::unique_ptr<KvIterator> inner)
      : store_(store), inner_(std::move(inner)) {}

  void Seek(std::string_view key) override {
    inner_->Seek(key);
    resolved_ = false;
  }
  void SeekToFirst() override {
    inner_->SeekToFirst();
    resolved_ = false;
  }
  bool Valid() const override { return inner_->Valid(); }
  void Next() override {
    inner_->Next();
    resolved_ = false;
  }
  std::string_view key() const override { return inner_->key(); }
  std::string_view value() const override {
    if (!resolved_) {
      auto value = store_->Resolve(inner_->value());
      // The KvIterator interface has no error channel; a corrupt
      // segment surfaces as an empty value here and as a hard error on
      // the Get path (which every correctness-critical reader uses).
      buffer_ = value.ok() ? std::move(value).value() : std::string();
      resolved_ = true;
    }
    return buffer_;
  }

 private:
  const SpillingStore* store_;
  std::unique_ptr<KvIterator> inner_;
  mutable std::string buffer_;
  mutable bool resolved_ = false;
};

std::unique_ptr<KvIterator> SpillingStore::NewIterator() const {
  return std::make_unique<SpillingIterator>(this, inner_->NewIterator());
}

}  // namespace approxql::storage
