// Per-shard write-ahead log. Every mutation is appended as a CRC'd
// varint record and fsync'd before the caller acknowledges it, so a
// crash can lose at most the un-acked suffix. Replay at open returns
// the longest valid record prefix and drops a torn tail; an explicit
// Truncate() (the checkpoint protocol's last step) empties the log
// while preserving the sequence numbering.
//
// File layout (all integers varint unless noted):
//
//   header  := magic version base_seq len(config) config fixed32 crc
//   record  := len(payload) payload fixed32 crc(payload)
//   payload := seq type body-bytes
//
// The header CRC covers the header bytes before it; each record CRC
// covers its payload. Sequence numbers are strictly consecutive
// (base_seq+1, base_seq+2, ...) — a gap, repeat, or regression is
// treated exactly like a torn tail: replay stops cleanly at the last
// good record and the bad suffix is truncated away. The header (and
// every Truncate) is published by tmp-file + rename, so a half-written
// header can never be observed.
#ifndef APPROXQL_STORAGE_WAL_WAL_H_
#define APPROXQL_STORAGE_WAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace approxql::storage {

struct WalRecord {
  uint64_t seq = 0;
  uint32_t type = 0;
  std::string payload;
};

class WriteAheadLog {
 public:
  struct OpenResult {
    std::unique_ptr<WriteAheadLog> wal;
    /// The longest valid record prefix, sequence-ascending.
    std::vector<WalRecord> records;
    /// True when bytes after the valid prefix were dropped (torn tail,
    /// CRC mismatch, sequence break). Never an error: the suffix was
    /// by definition never acknowledged durable.
    bool tail_truncated = false;
  };

  /// Opens or creates `path`. `config` is an opaque caller string baked
  /// into the header (shard layout parameters); reopening with a
  /// different config fails with Corruption rather than replaying a log
  /// against the wrong world.
  static util::Result<OpenResult> Open(const std::string& path,
                                       std::string_view config);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and returns its sequence number. NOT durable
  /// until Sync() returns.
  util::Result<uint64_t> Append(uint32_t type, std::string_view payload);

  /// fsync barrier: every appended record is on media after this.
  util::Status Sync();

  /// Drops all records (the checkpoint that just completed covers
  /// them), keeping base_seq = last_seq so numbering never restarts.
  /// Atomic via tmp + rename.
  util::Status Truncate();

  /// Last appended (or replayed) sequence number; base_seq() right
  /// after a Truncate or on a fresh log.
  uint64_t last_seq() const { return last_seq_; }
  uint64_t base_seq() const { return base_seq_; }
  size_t size_bytes() const { return size_bytes_; }
  const std::string& config() const { return config_; }

  /// Closes the file without flushing buffered appends — the on-disk
  /// log keeps only what the last Sync made durable (plus whatever the
  /// OS happened to write). Crash simulation; unusable afterwards.
  void Abandon();

 private:
  WriteAheadLog(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  static std::string EncodeHeader(std::string_view config, uint64_t base_seq);
  util::Status WriteFresh(uint64_t base_seq);

  std::FILE* file_;
  std::string path_;
  std::string config_;
  uint64_t base_seq_ = 0;
  uint64_t last_seq_ = 0;
  size_t size_bytes_ = 0;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_WAL_WAL_H_
