// Byte-level helpers shared by the write-ahead log and the value log:
// little-endian fixed32 (the CRC trailer convention the wire protocol
// and LayoutManifest already use) on top of the varint codec.
#ifndef APPROXQL_STORAGE_WAL_LOG_FORMAT_H_
#define APPROXQL_STORAGE_WAL_LOG_FORMAT_H_

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "util/status.h"

namespace approxql::storage {

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

inline uint32_t GetFixed32(const char* data) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[3])) << 24;
}

/// Fsyncs the directory containing `path`. A tmp-file + rename commit
/// point is only durable once the parent directory's entry table itself
/// reaches media; without this, a later rename (e.g. the WAL truncate)
/// can survive a power loss while an earlier one (the CURRENT publish)
/// does not, reordering the commit protocol.
inline util::Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::IoError(dir + ": open for directory fsync failed");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::Status::IoError(dir + ": directory fsync failed");
  return util::Status::OK();
}

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_WAL_LOG_FORMAT_H_
