// Byte-level helpers shared by the write-ahead log and the value log:
// little-endian fixed32 (the CRC trailer convention the wire protocol
// and LayoutManifest already use) on top of the varint codec.
#ifndef APPROXQL_STORAGE_WAL_LOG_FORMAT_H_
#define APPROXQL_STORAGE_WAL_LOG_FORMAT_H_

#include <cstdint>
#include <string>

namespace approxql::storage {

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

inline uint32_t GetFixed32(const char* data) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[3])) << 24;
}

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_WAL_LOG_FORMAT_H_
