#include "storage/wal/wal.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/varint.h"

namespace approxql::storage {

using util::Result;
using util::Status;

namespace {

constexpr uint32_t kWalMagic = 0x4c575141;  // "AQWL"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kCrcBytes = 4;

/// Reads a whole file into `out`. Missing file -> NotFound.
Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound(path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out->append(buf, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError(path + ": read failed");
  return Status::OK();
}

Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError(path + ": fflush failed");
  }
  if (::fsync(fileno(file)) != 0) {
    return Status::IoError(path + ": fsync failed");
  }
  return Status::OK();
}

/// Parses the header; on success positions `*header_end` just past it.
Status ParseHeader(std::string_view data, std::string* config,
                   uint64_t* base_seq, size_t* header_end) {
  util::VarintReader reader(data);
  uint32_t magic = 0, version = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  if (magic != kWalMagic) return Status::Corruption("WAL: bad magic");
  RETURN_IF_ERROR(reader.GetVarint32(&version));
  if (version != kWalVersion) {
    return Status::Corruption("WAL: unsupported version " +
                              std::to_string(version));
  }
  RETURN_IF_ERROR(reader.GetVarint64(base_seq));
  uint64_t config_len = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&config_len));
  if (config_len > reader.remaining()) {
    return Status::Corruption("WAL: config overruns header");
  }
  std::string_view config_bytes;
  RETURN_IF_ERROR(reader.GetBytes(static_cast<size_t>(config_len),
                                  &config_bytes));
  const size_t covered = reader.position();
  if (reader.remaining() < kCrcBytes) {
    return Status::Corruption("WAL: header truncated before CRC");
  }
  if (GetFixed32(data.data() + covered) !=
      util::Crc32c(data.data(), covered)) {
    return Status::Corruption("WAL: header CRC mismatch");
  }
  config->assign(config_bytes);
  *header_end = covered + kCrcBytes;
  return Status::OK();
}

}  // namespace

std::string WriteAheadLog::EncodeHeader(std::string_view config,
                                        uint64_t base_seq) {
  std::string out;
  util::PutVarint32(&out, kWalMagic);
  util::PutVarint32(&out, kWalVersion);
  util::PutVarint64(&out, base_seq);
  util::PutVarint64(&out, config.size());
  out.append(config);
  PutFixed32(&out, util::Crc32c(out));
  return out;
}

Status WriteAheadLog::WriteFresh(uint64_t base_seq) {
  const std::string tmp = path_ + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp);
  const std::string header = EncodeHeader(config_, base_seq);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    std::fclose(file);
    return Status::IoError(tmp + ": short header write");
  }
  Status synced = SyncFile(file, tmp);
  std::fclose(file);
  RETURN_IF_ERROR(synced);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path_ + " failed");
  }
  RETURN_IF_ERROR(SyncParentDir(path_));
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::IoError("cannot reopen " + path_);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError(path_ + ": seek failed");
  }
  base_seq_ = base_seq;
  last_seq_ = base_seq;
  size_bytes_ = header.size();
  return Status::OK();
}

Result<WriteAheadLog::OpenResult> WriteAheadLog::Open(
    const std::string& path, std::string_view config) {
  OpenResult result;
  std::string data;
  Status read = ReadFile(path, &data);
  if (read.IsNotFound()) {
    // Fresh log: header published atomically via tmp + rename.
    std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(nullptr, path));
    wal->config_.assign(config);
    RETURN_IF_ERROR(wal->WriteFresh(/*base_seq=*/0));
    result.wal = std::move(wal);
    return result;
  }
  RETURN_IF_ERROR(read);

  std::string stored_config;
  uint64_t base_seq = 0;
  size_t offset = 0;
  RETURN_IF_ERROR(ParseHeader(data, &stored_config, &base_seq, &offset));
  if (stored_config != config) {
    return Status::Corruption(path + ": WAL config mismatch (stored \"" +
                              stored_config + "\", expected \"" +
                              std::string(config) + "\")");
  }

  // Replay: accept records until the first torn/corrupt/out-of-sequence
  // one, then drop everything from there on.
  uint64_t expected_seq = base_seq;
  size_t valid_end = offset;
  while (offset < data.size()) {
    util::VarintReader reader(std::string_view(data).substr(offset));
    uint64_t payload_len = 0;
    if (!reader.GetVarint64(&payload_len).ok()) break;
    if (payload_len > reader.remaining() ||
        reader.remaining() - static_cast<size_t>(payload_len) < kCrcBytes) {
      break;  // torn tail
    }
    std::string_view payload;
    if (!reader.GetBytes(static_cast<size_t>(payload_len), &payload).ok()) {
      break;
    }
    const uint32_t stored_crc =
        GetFixed32(data.data() + offset + reader.position());
    if (stored_crc != util::Crc32c(payload)) break;
    util::VarintReader body(payload);
    WalRecord record;
    if (!body.GetVarint64(&record.seq).ok() ||
        !body.GetVarint32(&record.type).ok()) {
      break;
    }
    if (record.seq != expected_seq + 1) break;  // gap/dup/regression
    record.payload.assign(payload.substr(body.position()));
    result.records.push_back(std::move(record));
    expected_seq += 1;
    offset += reader.position() + kCrcBytes;
    valid_end = offset;
  }
  result.tail_truncated = valid_end < data.size();

  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(file, path));
  wal->config_ = std::move(stored_config);
  wal->base_seq_ = base_seq;
  wal->last_seq_ = expected_seq;
  wal->size_bytes_ = valid_end;
  if (result.tail_truncated) {
    // Physically drop the bad suffix so new appends follow the valid
    // prefix contiguously.
    if (::ftruncate(fileno(file), static_cast<off_t>(valid_end)) != 0) {
      return Status::IoError(path + ": truncate of torn tail failed");
    }
  }
  if (std::fseek(file, static_cast<long>(valid_end), SEEK_SET) != 0) {
    return Status::IoError(path + ": seek failed");
  }
  result.wal = std::move(wal);
  return result;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      APPROXQL_LOG(Error) << "WAL flush on close failed for " << path_;
    }
    std::fclose(file_);
  }
}

Result<uint64_t> WriteAheadLog::Append(uint32_t type,
                                       std::string_view payload) {
  const uint64_t seq = last_seq_ + 1;
  std::string body;
  body.reserve(payload.size() + 12);
  util::PutVarint64(&body, seq);
  util::PutVarint32(&body, type);
  body.append(payload);
  std::string record;
  record.reserve(body.size() + 10);
  util::PutVarint64(&record, body.size());
  record.append(body);
  PutFixed32(&record, util::Crc32c(body));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IoError(path_ + ": short WAL append");
  }
  last_seq_ = seq;
  size_bytes_ += record.size();
  return seq;
}

Status WriteAheadLog::Sync() { return SyncFile(file_, path_); }

Status WriteAheadLog::Truncate() { return WriteFresh(last_seq_); }

void WriteAheadLog::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace approxql::storage
