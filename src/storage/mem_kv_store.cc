#include "storage/mem_kv_store.h"

namespace approxql::storage {

using util::Result;
using util::Status;

namespace {

class MemIterator : public KvIterator {
 public:
  explicit MemIterator(const std::map<std::string, std::string, std::less<>>* map)
      : map_(map), it_(map->end()) {}

  void Seek(std::string_view key) override { it_ = map_->lower_bound(key); }
  void SeekToFirst() override { it_ = map_->begin(); }
  bool Valid() const override { return it_ != map_->end(); }
  void Next() override { ++it_; }
  std::string_view key() const override { return it_->first; }
  std::string_view value() const override { return it_->second; }

 private:
  const std::map<std::string, std::string, std::less<>>* map_;
  std::map<std::string, std::string, std::less<>>::const_iterator it_;
};

}  // namespace

Status MemKvStore::Put(std::string_view key, std::string_view value) {
  map_.insert_or_assign(std::string(key), std::string(value));
  return Status::OK();
}

Result<std::string> MemKvStore::Get(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status::NotFound("key not found: " + std::string(key));
  }
  return it->second;
}

Status MemKvStore::Delete(std::string_view key, bool* existed) {
  auto it = map_.find(key);
  bool found = it != map_.end();
  if (found) map_.erase(it);
  if (existed != nullptr) *existed = found;
  return Status::OK();
}

Result<bool> MemKvStore::Contains(std::string_view key) const {
  return map_.find(key) != map_.end();
}

std::unique_ptr<KvIterator> MemKvStore::NewIterator() const {
  return std::make_unique<MemIterator>(&map_);
}

}  // namespace approxql::storage
