#include "storage/bptree.h"

#include <algorithm>
#include <cstring>

#include "util/varint.h"

namespace approxql::storage {

using util::Result;
using util::Status;

namespace {

constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;
constexpr uint8_t kOverflowType = 3;

// Meta slots used by the tree.
constexpr int kRootSlot = 0;
constexpr int kCountSlot = 1;

constexpr size_t kOverflowHeader = 1 + 4 + 2;  // type, next, len
constexpr size_t kOverflowCapacity = kPageUsableSize - kOverflowHeader;

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 24));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t EntrySize(const std::string& key, bool is_inline, size_t inline_size,
                 uint64_t total_length) {
  size_t n = VarintSize(key.size()) + key.size() + 1;  // key + flag
  if (is_inline) {
    n += VarintSize(inline_size) + inline_size;
  } else {
    n += 4 + VarintSize(total_length);
  }
  return n;
}

}  // namespace

size_t BPlusTree::Node::SerializedSize() const {
  if (is_leaf) {
    size_t n = 1 + 2 + 4;  // type, nkeys, next_leaf
    for (size_t i = 0; i < keys.size(); ++i) {
      n += EntrySize(keys[i], values[i].is_inline,
                     values[i].inline_data.size(), values[i].length);
    }
    return n;
  }
  size_t n = 1 + 2;  // type, nchildren
  n += 4 * children.size();
  for (const auto& key : keys) {
    n += VarintSize(key.size()) + key.size();
  }
  return n;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(
    std::unique_ptr<Pager> pager) {
  std::unique_ptr<BPlusTree> tree(new BPlusTree(std::move(pager)));
  tree->root_ = tree->pager_->GetMetaSlot(kRootSlot);
  tree->key_count_ = tree->pager_->GetMetaSlot(kCountSlot);
  if (tree->root_ == kInvalidPage) {
    ASSIGN_OR_RETURN(Node * root, tree->NewNode(/*is_leaf=*/true));
    tree->root_ = root->id;
    tree->pager_->SetMetaSlot(kRootSlot, tree->root_);
    tree->pager_->SetMetaSlot(kCountSlot, 0);
  }
  return tree;
}

Result<BPlusTree::Node*> BPlusTree::FetchNode(PageId id) const {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second->last_use = ++node_clock_;
    return it->second.get();
  }
  ASSIGN_OR_RETURN(Page * page, pager_->Fetch(id));
  ASSIGN_OR_RETURN(Node node, DecodeNode(id, *page));
  auto owned = std::make_unique<Node>(std::move(node));
  owned->last_use = ++node_clock_;
  Node* raw = owned.get();
  nodes_[id] = std::move(owned);
  return raw;
}

Result<BPlusTree::Node*> BPlusTree::NewNode(bool is_leaf) {
  ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  auto node = std::make_unique<Node>();
  node->id = id;
  node->is_leaf = is_leaf;
  node->dirty = true;
  node->last_use = ++node_clock_;
  Node* raw = node.get();
  nodes_[id] = std::move(node);
  return raw;
}

void BPlusTree::SetCacheLimits(size_t max_nodes, size_t max_pages) {
  max_cached_nodes_ = max_nodes;
  pager_->set_cache_limit(max_pages);
}

Status BPlusTree::EvictCaches() const {
  if (max_cached_nodes_ != 0 && nodes_.size() > max_cached_nodes_) {
    std::vector<std::pair<uint64_t, PageId>> by_age;
    by_age.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
      by_age.emplace_back(node->last_use, id);
    }
    std::sort(by_age.begin(), by_age.end());
    size_t to_evict = nodes_.size() - max_cached_nodes_;
    for (size_t i = 0; i < to_evict; ++i) {
      auto it = nodes_.find(by_age[i].second);
      APPROXQL_DCHECK(it != nodes_.end());
      if (it->second->dirty) {
        RETURN_IF_ERROR(SerializeNode(*it->second));
      }
      nodes_.erase(it);
    }
  }
  return pager_->EvictIfNeeded();
}

Result<BPlusTree::Node> BPlusTree::DecodeNode(PageId id,
                                              const Page& page) const {
  Node node;
  node.id = id;
  const uint8_t* d = page.data.data();
  uint8_t type = d[0];
  std::string_view body(reinterpret_cast<const char*>(d), kPageSize);
  if (type == kLeafType) {
    node.is_leaf = true;
    uint16_t nkeys = GetU16(d + 1);
    node.next_leaf = GetU32(d + 3);
    util::VarintReader reader(body.substr(7));
    node.keys.reserve(nkeys);
    node.values.reserve(nkeys);
    for (uint16_t i = 0; i < nkeys; ++i) {
      uint64_t klen = 0;
      RETURN_IF_ERROR(reader.GetVarint64(&klen));
      std::string_view key;
      RETURN_IF_ERROR(reader.GetBytes(klen, &key));
      node.keys.emplace_back(key);
      std::string_view flag;
      RETURN_IF_ERROR(reader.GetBytes(1, &flag));
      ValueRef ref;
      if (flag[0] == 1) {
        ref.is_inline = true;
        uint64_t vlen = 0;
        RETURN_IF_ERROR(reader.GetVarint64(&vlen));
        std::string_view value;
        RETURN_IF_ERROR(reader.GetBytes(vlen, &value));
        ref.inline_data.assign(value);
      } else {
        ref.is_inline = false;
        std::string_view raw;
        RETURN_IF_ERROR(reader.GetBytes(4, &raw));
        ref.overflow = GetU32(reinterpret_cast<const uint8_t*>(raw.data()));
        RETURN_IF_ERROR(reader.GetVarint64(&ref.length));
      }
      node.values.push_back(std::move(ref));
    }
    return node;
  }
  if (type == kInternalType) {
    node.is_leaf = false;
    uint16_t nchildren = GetU16(d + 1);
    if (nchildren < 2) {
      return Status::Corruption("internal node with fewer than two children");
    }
    util::VarintReader reader(body.substr(3));
    for (uint16_t i = 0; i < nchildren; ++i) {
      std::string_view raw;
      RETURN_IF_ERROR(reader.GetBytes(4, &raw));
      node.children.push_back(
          GetU32(reinterpret_cast<const uint8_t*>(raw.data())));
    }
    for (uint16_t i = 0; i + 1 < nchildren; ++i) {
      uint64_t klen = 0;
      RETURN_IF_ERROR(reader.GetVarint64(&klen));
      std::string_view key;
      RETURN_IF_ERROR(reader.GetBytes(klen, &key));
      node.keys.emplace_back(key);
    }
    return node;
  }
  return Status::Corruption("unexpected page type " + std::to_string(type) +
                            " for node page " + std::to_string(id));
}

Status BPlusTree::SerializeNode(const Node& node) const {
  std::string out;
  out.reserve(kPageSize);
  if (node.is_leaf) {
    out.push_back(static_cast<char>(kLeafType));
    PutU16(&out, static_cast<uint16_t>(node.keys.size()));
    PutU32(&out, node.next_leaf);
    for (size_t i = 0; i < node.keys.size(); ++i) {
      util::PutVarint64(&out, node.keys[i].size());
      out.append(node.keys[i]);
      const ValueRef& ref = node.values[i];
      out.push_back(ref.is_inline ? 1 : 2);
      if (ref.is_inline) {
        util::PutVarint64(&out, ref.inline_data.size());
        out.append(ref.inline_data);
      } else {
        PutU32(&out, ref.overflow);
        util::PutVarint64(&out, ref.length);
      }
    }
  } else {
    out.push_back(static_cast<char>(kInternalType));
    PutU16(&out, static_cast<uint16_t>(node.children.size()));
    for (PageId child : node.children) PutU32(&out, child);
    for (const auto& key : node.keys) {
      util::PutVarint64(&out, key.size());
      out.append(key);
    }
  }
  if (out.size() > kPageUsableSize) {
    return Status::Internal("node overflows page after split logic");
  }
  ASSIGN_OR_RETURN(Page * page, pager_->Fetch(node.id));
  std::fill(page->data.begin(), page->data.end(), 0);
  std::memcpy(page->data.data(), out.data(), out.size());
  page->dirty = true;
  return Status::OK();
}

Result<BPlusTree::Node*> BPlusTree::DescendToLeaf(
    std::string_view key, std::vector<std::pair<Node*, size_t>>* path) const {
  ASSIGN_OR_RETURN(Node * node, FetchNode(root_));
  while (!node->is_leaf) {
    // First child whose separator exceeds the key.
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    if (path != nullptr) path->emplace_back(node, idx);
    ASSIGN_OR_RETURN(node, FetchNode(node->children[idx]));
  }
  return node;
}

Result<PageId> BPlusTree::WriteOverflow(std::string_view value) {
  PageId head = kInvalidPage;
  PageId prev = kInvalidPage;
  size_t offset = 0;
  while (offset < value.size()) {
    size_t chunk = std::min(kOverflowCapacity, value.size() - offset);
    ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
    ASSIGN_OR_RETURN(Page * page, pager_->Fetch(id));
    uint8_t* d = page->data.data();
    d[0] = kOverflowType;
    // next filled in when the successor is allocated.
    d[5] = static_cast<uint8_t>(chunk);
    d[6] = static_cast<uint8_t>(chunk >> 8);
    std::memcpy(d + kOverflowHeader, value.data() + offset, chunk);
    page->dirty = true;
    if (prev == kInvalidPage) {
      head = id;
    } else {
      ASSIGN_OR_RETURN(Page * prev_page, pager_->Fetch(prev));
      uint8_t* pd = prev_page->data.data();
      pd[1] = static_cast<uint8_t>(id);
      pd[2] = static_cast<uint8_t>(id >> 8);
      pd[3] = static_cast<uint8_t>(id >> 16);
      pd[4] = static_cast<uint8_t>(id >> 24);
      prev_page->dirty = true;
    }
    prev = id;
    offset += chunk;
  }
  return head;
}

Result<std::string> BPlusTree::ReadOverflow(PageId head,
                                            uint64_t length) const {
  std::string out;
  out.reserve(length);
  PageId cursor = head;
  while (cursor != kInvalidPage) {
    ASSIGN_OR_RETURN(Page * page, pager_->Fetch(cursor));
    const uint8_t* d = page->data.data();
    if (d[0] != kOverflowType) {
      return Status::Corruption("expected overflow page");
    }
    uint16_t len = GetU16(d + 5);
    if (len > kOverflowCapacity) {
      return Status::Corruption("overflow chunk too large");
    }
    out.append(reinterpret_cast<const char*>(d + kOverflowHeader), len);
    cursor = GetU32(d + 1);
    if (out.size() > length) {
      return Status::Corruption("overflow chain longer than recorded length");
    }
  }
  if (out.size() != length) {
    return Status::Corruption("overflow chain shorter than recorded length");
  }
  return out;
}

Status BPlusTree::FreeOverflow(PageId head) {
  PageId cursor = head;
  while (cursor != kInvalidPage) {
    ASSIGN_OR_RETURN(Page * page, pager_->Fetch(cursor));
    const uint8_t* d = page->data.data();
    PageId next = GetU32(d + 1);
    RETURN_IF_ERROR(pager_->Free(cursor));
    cursor = next;
  }
  return Status::OK();
}

Status BPlusTree::FreeValue(const ValueRef& ref) {
  if (!ref.is_inline && ref.overflow != kInvalidPage) {
    return FreeOverflow(ref.overflow);
  }
  return Status::OK();
}

Status BPlusTree::Put(std::string_view key, std::string_view value) {
  if (key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key exceeds " +
                                   std::to_string(kMaxKeySize) + " bytes");
  }
  std::vector<std::pair<Node*, size_t>> path;
  ASSIGN_OR_RETURN(Node * leaf, DescendToLeaf(key, &path));

  ValueRef ref;
  if (value.size() <= kInlineValueLimit) {
    ref.is_inline = true;
    ref.inline_data.assign(value);
  } else {
    ref.is_inline = false;
    ref.length = value.size();
    ASSIGN_OR_RETURN(ref.overflow, WriteOverflow(value));
  }

  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  size_t idx = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    RETURN_IF_ERROR(FreeValue(leaf->values[idx]));
    leaf->values[idx] = std::move(ref);
  } else {
    leaf->keys.insert(it, std::string(key));
    leaf->values.insert(leaf->values.begin() + static_cast<long>(idx),
                        std::move(ref));
    ++key_count_;
    pager_->SetMetaSlot(kCountSlot, static_cast<uint32_t>(key_count_));
  }
  leaf->dirty = true;
  RETURN_IF_ERROR(SplitIfNeeded(leaf, &path));
  return EvictCaches();
}

Status BPlusTree::SplitIfNeeded(Node* node,
                                std::vector<std::pair<Node*, size_t>>* path) {
  while (node->SerializedSize() > kPageUsableSize) {
    // Find the split point: the largest prefix whose serialized size stays
    // at or below half the total. Guarantees both halves fit in a page
    // because single entries are bounded (kMaxKeySize/kInlineValueLimit).
    size_t total = node->SerializedSize();
    size_t header = node->is_leaf ? (1 + 2 + 4) : (1 + 2);
    size_t acc = header;
    size_t split = 0;
    size_t n = node->is_leaf ? node->keys.size() : node->children.size();
    for (size_t i = 0; i < n; ++i) {
      size_t cell;
      if (node->is_leaf) {
        cell = EntrySize(node->keys[i], node->values[i].is_inline,
                         node->values[i].inline_data.size(),
                         node->values[i].length);
      } else {
        cell = 4 + (i + 1 < n ? VarintSize(node->keys[i].size()) +
                                    node->keys[i].size()
                              : 0);
      }
      if (acc + cell > total / 2 && split > 0) break;
      acc += cell;
      split = i + 1;
    }
    // Keep at least one entry (leaf) / two children (internal) per side.
    size_t min_left = node->is_leaf ? 1 : 2;
    size_t max_left = node->is_leaf ? n - 1 : n - 2;
    split = std::max(split, min_left);
    split = std::min(split, max_left);

    ASSIGN_OR_RETURN(Node * right, NewNode(node->is_leaf));
    std::string separator;
    if (node->is_leaf) {
      right->keys.assign(node->keys.begin() + static_cast<long>(split),
                         node->keys.end());
      right->values.assign(node->values.begin() + static_cast<long>(split),
                           node->values.end());
      node->keys.resize(split);
      node->values.resize(split);
      right->next_leaf = node->next_leaf;
      node->next_leaf = right->id;
      separator = right->keys.front();
    } else {
      // children[split..] move right; keys[split-1] is promoted.
      right->children.assign(node->children.begin() + static_cast<long>(split),
                             node->children.end());
      right->keys.assign(node->keys.begin() + static_cast<long>(split),
                         node->keys.end());
      separator = node->keys[split - 1];
      node->children.resize(split);
      node->keys.resize(split - 1);
    }
    node->dirty = true;
    right->dirty = true;

    if (path->empty()) {
      // Root split: make a new root.
      ASSIGN_OR_RETURN(Node * new_root, NewNode(/*is_leaf=*/false));
      new_root->children = {node->id, right->id};
      new_root->keys = {separator};
      root_ = new_root->id;
      pager_->SetMetaSlot(kRootSlot, root_);
      return Status::OK();
    }
    auto [parent, child_idx] = path->back();
    path->pop_back();
    parent->keys.insert(parent->keys.begin() + static_cast<long>(child_idx),
                        separator);
    parent->children.insert(
        parent->children.begin() + static_cast<long>(child_idx) + 1,
        right->id);
    parent->dirty = true;
    node = parent;
  }
  return Status::OK();
}

Result<std::string> BPlusTree::Get(std::string_view key) const {
  ASSIGN_OR_RETURN(Node * leaf, DescendToLeaf(key, nullptr));
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    RETURN_IF_ERROR(EvictCaches());
    return Status::NotFound("key not found: " + std::string(key));
  }
  const ValueRef& ref = leaf->values[static_cast<size_t>(
      it - leaf->keys.begin())];
  std::string value;
  if (ref.is_inline) {
    value = ref.inline_data;
  } else {
    ASSIGN_OR_RETURN(value, ReadOverflow(ref.overflow, ref.length));
  }
  RETURN_IF_ERROR(EvictCaches());
  return value;
}

Result<bool> BPlusTree::Contains(std::string_view key) const {
  ASSIGN_OR_RETURN(Node * leaf, DescendToLeaf(key, nullptr));
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  bool found = it != leaf->keys.end() && *it == key;
  RETURN_IF_ERROR(EvictCaches());
  return found;
}

Status BPlusTree::Delete(std::string_view key, bool* existed) {
  ASSIGN_OR_RETURN(Node * leaf, DescendToLeaf(key, nullptr));
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  bool found = it != leaf->keys.end() && *it == key;
  if (existed != nullptr) *existed = found;
  if (!found) return EvictCaches();
  size_t idx = static_cast<size_t>(it - leaf->keys.begin());
  RETURN_IF_ERROR(FreeValue(leaf->values[idx]));
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<long>(idx));
  leaf->dirty = true;
  --key_count_;
  pager_->SetMetaSlot(kCountSlot, static_cast<uint32_t>(key_count_));
  return EvictCaches();
}

Status BPlusTree::Flush() {
  for (auto& [id, node] : nodes_) {
    if (node->dirty) {
      RETURN_IF_ERROR(SerializeNode(*node));
      node->dirty = false;
    }
  }
  return pager_->Flush();
}

Status BPlusTree::Sync() {
  for (auto& [id, node] : nodes_) {
    if (node->dirty) {
      RETURN_IF_ERROR(SerializeNode(*node));
      node->dirty = false;
    }
  }
  return pager_->Sync();
}

void BPlusTree::Abandon() {
  nodes_.clear();
  pager_->Abandon();
  abandoned_ = true;
}

int BPlusTree::Height() const {
  int height = 1;
  auto node = FetchNode(root_);
  APPROXQL_CHECK(node.ok()) << node.status();
  Node* cursor = *node;
  while (!cursor->is_leaf) {
    ++height;
    auto child = FetchNode(cursor->children.front());
    APPROXQL_CHECK(child.ok()) << child.status();
    cursor = *child;
  }
  return height;
}

Status BPlusTree::CheckSubtree(PageId id, const std::string* lower,
                               const std::string* upper, int depth,
                               int* leaf_depth,
                               std::vector<PageId>* leaves) const {
  ASSIGN_OR_RETURN(Node * node, FetchNode(id));
  // Keys sorted strictly.
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (!(node->keys[i - 1] < node->keys[i])) {
      return Status::Internal("keys out of order in node " +
                              std::to_string(id));
    }
  }
  for (const auto& key : node->keys) {
    if (lower != nullptr && key < *lower) {
      return Status::Internal("key below lower bound in node " +
                              std::to_string(id));
    }
    if (upper != nullptr && !(key < *upper)) {
      return Status::Internal("key above upper bound in node " +
                              std::to_string(id));
    }
  }
  if (node->is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at different depths");
    }
    leaves->push_back(id);
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("child/key count mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const std::string* lo = i == 0 ? lower : &node->keys[i - 1];
    const std::string* hi = i == node->keys.size() ? upper : &node->keys[i];
    RETURN_IF_ERROR(
        CheckSubtree(node->children[i], lo, hi, depth + 1, leaf_depth, leaves));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  std::vector<PageId> leaves;
  RETURN_IF_ERROR(CheckSubtree(root_, nullptr, nullptr, 0, &leaf_depth,
                               &leaves));
  // Leaf chain order must match in-order traversal, allowing interleaved
  // empty leaves to appear in the chain.
  ASSIGN_OR_RETURN(Node * first, FetchNode(leaves.front()));
  size_t pos = 0;
  size_t counted = 0;
  std::string prev_key;
  bool have_prev = false;
  for (Node* cursor = first; cursor != nullptr;) {
    if (pos >= leaves.size() || leaves[pos] != cursor->id) {
      return Status::Internal("leaf chain diverges from tree order");
    }
    ++pos;
    for (const auto& key : cursor->keys) {
      if (have_prev && !(prev_key < key)) {
        return Status::Internal("leaf chain keys out of order");
      }
      prev_key = key;
      have_prev = true;
      ++counted;
    }
    if (cursor->next_leaf == kInvalidPage) {
      cursor = nullptr;
    } else {
      ASSIGN_OR_RETURN(cursor, FetchNode(cursor->next_leaf));
    }
  }
  if (counted != key_count_) {
    return Status::Internal("key count mismatch: counted " +
                            std::to_string(counted) + " stored " +
                            std::to_string(key_count_));
  }
  return Status::OK();
}

BPlusTree::~BPlusTree() {
  if (abandoned_) return;
  Status s = Flush();
  if (!s.ok()) {
    APPROXQL_LOG(Error) << "B+tree flush on close failed: " << s;
  }
}

// ---------------------------------------------------------------------------
// DiskKvStore

class BPlusTreeIteratorImpl : public KvIterator {
 public:
  explicit BPlusTreeIteratorImpl(const BPlusTree* tree) : tree_(tree) {}

  void Seek(std::string_view key) override;
  void SeekToFirst() override { Seek(""); }
  bool Valid() const override { return valid_; }
  void Next() override;
  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }

 private:
  void LoadCurrent();
  void SkipEmptyLeavesAndLoad();

  const BPlusTree* tree_;
  PageId leaf_ = kInvalidPage;
  size_t index_ = 0;
  bool valid_ = false;
  std::string key_;
  std::string value_;
};

std::unique_ptr<KvIterator> DiskKvStore::NewIterator() const {
  return std::make_unique<BPlusTreeIteratorImpl>(tree_.get());
}

Result<std::unique_ptr<DiskKvStore>> DiskKvStore::Open(
    const std::string& path, bool create_if_missing) {
  ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                   Pager::Open(path, create_if_missing));
  ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                   BPlusTree::Open(std::move(pager)));
  return std::unique_ptr<DiskKvStore>(new DiskKvStore(std::move(tree)));
}

Status DiskKvStore::Put(std::string_view key, std::string_view value) {
  return tree_->Put(key, value);
}

Result<std::string> DiskKvStore::Get(std::string_view key) const {
  return tree_->Get(key);
}

Status DiskKvStore::Delete(std::string_view key, bool* existed) {
  return tree_->Delete(key, existed);
}

Result<bool> DiskKvStore::Contains(std::string_view key) const {
  return tree_->Contains(key);
}

size_t DiskKvStore::KeyCount() const { return tree_->KeyCount(); }

Status DiskKvStore::Flush() { return tree_->Flush(); }

void BPlusTreeIteratorImpl::Seek(std::string_view key) {
  valid_ = false;
  auto leaf = tree_->DescendToLeaf(key, nullptr);
  if (!leaf.ok()) return;
  leaf_ = (*leaf)->id;
  auto it = std::lower_bound((*leaf)->keys.begin(), (*leaf)->keys.end(), key);
  index_ = static_cast<size_t>(it - (*leaf)->keys.begin());
  SkipEmptyLeavesAndLoad();
}

void BPlusTreeIteratorImpl::Next() {
  APPROXQL_DCHECK(valid_);
  ++index_;
  SkipEmptyLeavesAndLoad();
}

void BPlusTreeIteratorImpl::SkipEmptyLeavesAndLoad() {
  for (;;) {
    auto node = tree_->FetchNode(leaf_);
    if (!node.ok()) {
      valid_ = false;
      return;
    }
    if (index_ < (*node)->keys.size()) {
      LoadCurrent();
      return;
    }
    if ((*node)->next_leaf == kInvalidPage) {
      valid_ = false;
      return;
    }
    leaf_ = (*node)->next_leaf;
    index_ = 0;
  }
}

void BPlusTreeIteratorImpl::LoadCurrent() {
  auto node = tree_->FetchNode(leaf_);
  if (!node.ok()) {
    valid_ = false;
    return;
  }
  key_ = (*node)->keys[index_];
  const auto& ref = (*node)->values[index_];
  if (ref.is_inline) {
    value_ = ref.inline_data;
  } else {
    auto value = tree_->ReadOverflow(ref.overflow, ref.length);
    if (!value.ok()) {
      valid_ = false;
      return;
    }
    value_ = std::move(value).value();
  }
  valid_ = true;
}

}  // namespace approxql::storage
