#include "storage/vlog/value_log.h"

#include <unistd.h>

#include <cstdio>
#include <utility>
#include <vector>

#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/varint.h"

namespace approxql::storage {

using util::Result;
using util::Status;

namespace {

constexpr uint32_t kVlogMagic = 0x474c5641;  // "AVLG"
constexpr uint32_t kVlogVersion = 1;
constexpr size_t kCrcBytes = 4;

std::string EncodeVlogHeader() {
  std::string out;
  util::PutVarint32(&out, kVlogMagic);
  util::PutVarint32(&out, kVlogVersion);
  PutFixed32(&out, util::Crc32c(out));
  return out;
}

Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError(path + ": fflush failed");
  }
  if (::fsync(fileno(file)) != 0) {
    return Status::IoError(path + ": fsync failed");
  }
  return Status::OK();
}

}  // namespace

uint64_t ValueLog::HeaderSize() { return EncodeVlogHeader().size(); }

Result<std::unique_ptr<ValueLog>> ValueLog::Open(const std::string& path) {
  const std::string header = EncodeVlogHeader();
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) return Status::IoError("cannot create " + path);
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
      std::fclose(file);
      return Status::IoError(path + ": short header write");
    }
    Status synced = SyncFile(file, path);
    if (!synced.ok()) {
      std::fclose(file);
      return synced;
    }
    std::unique_ptr<ValueLog> vlog(new ValueLog(file, path));
    vlog->size_ = header.size();
    return vlog;
  }
  std::vector<char> stored(header.size());
  if (std::fread(stored.data(), 1, stored.size(), file) != stored.size() ||
      std::string_view(stored.data(), stored.size()) != header) {
    std::fclose(file);
    return Status::Corruption(path + ": bad value-log header");
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError(path + ": seek failed");
  }
  const long end = std::ftell(file);
  if (end < 0) {
    std::fclose(file);
    return Status::IoError(path + ": ftell failed");
  }
  std::unique_ptr<ValueLog> vlog(new ValueLog(file, path));
  vlog->size_ = static_cast<uint64_t>(end);
  return vlog;
}

ValueLog::~ValueLog() {
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      APPROXQL_LOG(Error) << "value-log flush on close failed for " << path_;
    }
    std::fclose(file_);
  }
}

Result<SegmentPointer> ValueLog::Append(std::string_view value) {
  std::string segment;
  segment.reserve(value.size() + 14);
  util::PutVarint64(&segment, value.size());
  segment.append(value);
  PutFixed32(&segment, util::Crc32c(value));
  if (std::fseek(file_, static_cast<long>(size_), SEEK_SET) != 0) {
    return Status::IoError(path_ + ": seek failed");
  }
  if (std::fwrite(segment.data(), 1, segment.size(), file_) !=
      segment.size()) {
    return Status::IoError(path_ + ": short value-log append");
  }
  SegmentPointer pointer;
  pointer.offset = size_;
  pointer.length = value.size();
  size_ += segment.size();
  return pointer;
}

Result<std::string> ValueLog::Read(const SegmentPointer& pointer) const {
  // Appends sit in the stdio buffer until flushed, but reads bypass it
  // via pread — push any buffered suffix to the kernel first so a
  // just-appended segment is readable. No-op when the buffer is empty.
  if (std::fflush(file_) != 0) {
    return Status::IoError(path_ + ": fflush before read failed");
  }
  // Segment = len varint (<=10 bytes) + value + CRC; bound the pread by
  // the log end so a stale pointer fails instead of reading garbage.
  if (pointer.offset >= size_) {
    return Status::Corruption(path_ + ": segment offset " +
                              std::to_string(pointer.offset) +
                              " beyond log end " + std::to_string(size_));
  }
  const uint64_t max_segment = pointer.length + 10 + kCrcBytes;
  const uint64_t available = size_ - pointer.offset;
  const size_t to_read =
      static_cast<size_t>(max_segment < available ? max_segment : available);
  std::string buffer(to_read, '\0');
  // pread: no shared file-position state, so concurrent readers under
  // the store mutex never interleave with the append cursor.
  const ssize_t n = ::pread(fileno(file_), buffer.data(), to_read,
                            static_cast<off_t>(pointer.offset));
  if (n < 0 || static_cast<size_t>(n) != to_read) {
    return Status::IoError(path_ + ": segment read failed at offset " +
                           std::to_string(pointer.offset));
  }
  util::VarintReader reader(buffer);
  uint64_t stored_length = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&stored_length));
  if (stored_length != pointer.length) {
    return Status::Corruption(path_ + ": segment length mismatch at offset " +
                              std::to_string(pointer.offset));
  }
  if (reader.remaining() < stored_length + kCrcBytes) {
    return Status::Corruption(path_ + ": segment overruns log");
  }
  std::string_view value;
  RETURN_IF_ERROR(reader.GetBytes(static_cast<size_t>(stored_length), &value));
  if (GetFixed32(buffer.data() + reader.position()) != util::Crc32c(value)) {
    return Status::Corruption(path_ + ": segment CRC mismatch at offset " +
                              std::to_string(pointer.offset));
  }
  return std::string(value);
}

Status ValueLog::TruncateTo(uint64_t size) {
  if (size < HeaderSize() || size > size_) {
    return Status::InvalidArgument(
        path_ + ": truncate to " + std::to_string(size) + " outside [" +
        std::to_string(HeaderSize()) + ", " + std::to_string(size_) + "]");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError(path_ + ": fflush failed");
  }
  if (::ftruncate(fileno(file_), static_cast<off_t>(size)) != 0) {
    return Status::IoError(path_ + ": truncate failed");
  }
  size_ = size;
  return Status::OK();
}

Status ValueLog::Sync() { return SyncFile(file_, path_); }

void ValueLog::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace approxql::storage
