// Append-only value log: large posting lists spill here out of B+tree
// leaves, which keep only a fixed-size SegmentPointer. Each segment is
// individually CRC'd, so a damaged log fails the specific read instead
// of the whole store. The log is truncated back to its checkpointed
// size at open — replaying the WAL then re-appends the post-checkpoint
// values at byte-identical offsets, which is what makes the spill
// layout reproducible across crashes.
//
// File layout:
//
//   header  := varint magic, varint version, fixed32 crc(header bytes)
//   segment := varint len(value) value fixed32 crc(value)
//
// A SegmentPointer addresses the whole segment (offset of the length
// varint); Read re-verifies length and CRC on every access.
#ifndef APPROXQL_STORAGE_VLOG_VALUE_LOG_H_
#define APPROXQL_STORAGE_VLOG_VALUE_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace approxql::storage {

/// Location of one spilled value. `offset` is the segment start in the
/// log file; `length` is the raw value length (what Read returns).
struct SegmentPointer {
  uint64_t offset = 0;
  uint64_t length = 0;
};

class ValueLog {
 public:
  /// Opens or creates `path`. An existing log is NOT scanned — callers
  /// immediately TruncateTo() their checkpointed size, which also
  /// discards any torn tail from a crash.
  static util::Result<std::unique_ptr<ValueLog>> Open(
      const std::string& path);

  ~ValueLog();
  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  /// Appends one value; returns where it landed. Durable after Sync().
  util::Result<SegmentPointer> Append(std::string_view value);

  /// Reads a segment back, verifying its length header and CRC.
  util::Result<std::string> Read(const SegmentPointer& pointer) const;

  /// Drops everything past `size` bytes (a previously recorded size()).
  /// Rejects sizes beyond the current end or inside the header.
  util::Status TruncateTo(uint64_t size);

  util::Status Sync();

  /// Current end of the log = the next Append's offset. Recorded in
  /// checkpoints and in WAL records for replay-layout verification.
  uint64_t size() const { return size_; }

  /// Smallest valid size(): a log truncated here is empty.
  static uint64_t HeaderSize();

  /// Close without flushing (crash simulation); unusable afterwards.
  void Abandon();

 private:
  ValueLog(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
  uint64_t size_ = 0;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_VLOG_VALUE_LOG_H_
