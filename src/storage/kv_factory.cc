#include "storage/kv_factory.h"

#include <utility>

#include "storage/bptree.h"
#include "storage/mem_kv_store.h"

namespace approxql::storage {

using util::Result;
using util::Status;

Result<StoreKind> ParseStoreKind(std::string_view text) {
  if (text == "mem") return StoreKind::kMem;
  if (text == "disk") return StoreKind::kDisk;
  return Status::InvalidArgument("unknown store kind '" + std::string(text) +
                                 "' (expected mem|disk)");
}

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kMem:
      return "mem";
    case StoreKind::kDisk:
      return "disk";
  }
  return "unknown";
}

Result<std::unique_ptr<KvStore>> CreateKvStore(StoreKind kind,
                                               const std::string& path,
                                               bool create_if_missing) {
  switch (kind) {
    case StoreKind::kMem:
      return std::unique_ptr<KvStore>(std::make_unique<MemKvStore>());
    case StoreKind::kDisk: {
      ASSIGN_OR_RETURN(std::unique_ptr<DiskKvStore> store,
                       DiskKvStore::Open(path, create_if_missing));
      return std::unique_ptr<KvStore>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown store kind");
}

StoreFactory MakeStoreFactory(StoreKind kind) {
  return [kind](const std::string& path) {
    return CreateKvStore(kind, path, /*create_if_missing=*/true);
  };
}

}  // namespace approxql::storage
