// Single-file B+tree keyed by raw bytes. Values of any size are
// supported: small values are stored inline in leaf pages, large values
// spill to overflow-page chains (index postings routinely exceed a
// page). Leaves are chained for ordered iteration.
//
// Structure invariants:
//   - internal node with c children carries c-1 separator keys;
//     separator[i] is the smallest key in the subtree of child i+1;
//   - serialized node size <= kPageSize (enforced by splitting);
//   - deletes do not rebalance (leaves may become empty; iteration skips
//     them) — the workload is build-once/read-mostly, documented in
//     DESIGN.md.
#ifndef APPROXQL_STORAGE_BPTREE_H_
#define APPROXQL_STORAGE_BPTREE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/kv_store.h"
#include "storage/pager.h"

namespace approxql::storage {

/// Longest accepted key. Bounded so that any single entry fits well
/// within a page half, which makes node splits always succeed.
inline constexpr size_t kMaxKeySize = 512;

/// Values up to this size are stored inline in the leaf.
inline constexpr size_t kInlineValueLimit = 512;

class BPlusTree {
 public:
  /// Takes ownership of the pager. A fresh store gets an empty root leaf;
  /// an existing store resumes from the meta page.
  static util::Result<std::unique_ptr<BPlusTree>> Open(
      std::unique_ptr<Pager> pager);

  util::Status Put(std::string_view key, std::string_view value);
  util::Result<std::string> Get(std::string_view key) const;
  util::Status Delete(std::string_view key, bool* existed);
  util::Result<bool> Contains(std::string_view key) const;
  size_t KeyCount() const { return key_count_; }
  util::Status Flush();

  /// Flush plus fsync — durable on media, not just in the OS cache.
  util::Status Sync();

  /// Discards all in-memory state (dirty nodes and pages included) and
  /// closes the file without writing: the on-disk image stays whatever
  /// the last Flush/Sync produced. Crash simulation for recovery tests;
  /// the tree is unusable afterwards.
  void Abandon();

  /// Bounds the decoded-node and raw-page caches (0 = unbounded, the
  /// default). Enforced between public operations: clean entries beyond
  /// the limit are dropped LRU-first, dirty nodes are serialized first.
  /// Lets the store work on data sets larger than memory.
  void SetCacheLimits(size_t max_nodes, size_t max_pages);
  size_t CachedNodes() const { return nodes_.size(); }

  /// Tree height (1 = root is a leaf); for tests and stats.
  int Height() const;

  /// Verifies all structure invariants (key order within and across
  /// nodes, separator correctness, leaf chain consistency). For tests.
  util::Status CheckInvariants() const;

  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

 private:
  friend class BPlusTreeIteratorImpl;

  struct ValueRef {
    bool is_inline = true;
    std::string inline_data;     // when is_inline
    PageId overflow = kInvalidPage;  // head of the chain otherwise
    uint64_t length = 0;             // total overflow value length
  };

  struct Node {
    PageId id = kInvalidPage;
    bool is_leaf = true;
    bool dirty = false;
    uint64_t last_use = 0;  // LRU stamp
    std::vector<std::string> keys;
    // Leaf payloads, parallel to keys.
    std::vector<ValueRef> values;
    PageId next_leaf = kInvalidPage;
    // Internal children; children.size() == keys.size() + 1.
    std::vector<PageId> children;

    size_t SerializedSize() const;
  };

  explicit BPlusTree(std::unique_ptr<Pager> pager)
      : pager_(std::move(pager)) {}

  util::Result<Node*> FetchNode(PageId id) const;
  util::Result<Node*> NewNode(bool is_leaf);
  util::Status SerializeNode(const Node& node) const;
  // lint:allow-unfuzzed pages reach DecodeNode only after the Pager's
  // per-page CRC check, so raw-disk corruption cannot hit this parser;
  // the on-disk byte boundary itself is fuzzed by wal_replay/vlog_read.
  util::Result<Node> DecodeNode(PageId id, const Page& page) const;

  /// Descends to the leaf responsible for `key`; fills `path` with the
  /// internal nodes visited (top-down) and the child index taken in each.
  util::Result<Node*> DescendToLeaf(std::string_view key,
                                    std::vector<std::pair<Node*, size_t>>*
                                        path) const;

  util::Status SplitIfNeeded(Node* node,
                             std::vector<std::pair<Node*, size_t>>* path);

  util::Result<std::string> ReadOverflow(PageId head, uint64_t length) const;
  util::Result<PageId> WriteOverflow(std::string_view value);
  util::Status FreeOverflow(PageId head);
  util::Status FreeValue(const ValueRef& ref);

  util::Status CheckSubtree(PageId id, const std::string* lower,
                            const std::string* upper, int depth,
                            int* leaf_depth,
                            std::vector<PageId>* leaves) const;

  /// Applies the cache bounds; called at the end of public operations
  /// (no Node*/Page* is held across them).
  util::Status EvictCaches() const;

  std::unique_ptr<Pager> pager_;
  PageId root_ = kInvalidPage;
  bool abandoned_ = false;
  size_t key_count_ = 0;
  size_t max_cached_nodes_ = 0;
  mutable uint64_t node_clock_ = 0;
  // Decoded-node cache: fetched nodes live here until flushed/evicted.
  mutable std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

/// DiskKvStore: the KvStore facade over BPlusTree (what the indexes use).
class DiskKvStore : public KvStore {
 public:
  static util::Result<std::unique_ptr<DiskKvStore>> Open(
      const std::string& path, bool create_if_missing);

  util::Status Put(std::string_view key, std::string_view value) override;
  util::Result<std::string> Get(std::string_view key) const override;
  util::Status Delete(std::string_view key, bool* existed) override;
  util::Result<bool> Contains(std::string_view key) const override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t KeyCount() const override;
  util::Status Flush() override;
  util::Status Sync() { return tree_->Sync(); }
  void Abandon() { tree_->Abandon(); }

  BPlusTree* tree() { return tree_.get(); }

 private:
  explicit DiskKvStore(std::unique_ptr<BPlusTree> tree)
      : tree_(std::move(tree)) {}

  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_BPTREE_H_
