// KvStore decorator serializing every operation behind one mutex, so a
// single mutating writer (live ingest) can share a store with the
// read-side StoredLabelIndex fetches of any number of query threads —
// DiskKvStore's page cache is single-threaded by contract, MemKvStore's
// map is not concurrent either. Also the seam for checkpoint handoff:
// Swap() atomically replaces the inner store (the checkpoint's freshly
// compacted generation) without readers ever observing a half state.
//
// NewIterator() holds the store mutex for the ITERATOR'S LIFETIME:
// destroy it before calling any other method from the same thread, and
// never hold two at once.
#ifndef APPROXQL_STORAGE_SYNCHRONIZED_STORE_H_
#define APPROXQL_STORAGE_SYNCHRONIZED_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "storage/kv_store.h"
#include "util/mutex.h"

namespace approxql::storage {

class SynchronizedKvStore : public KvStore {
 public:
  explicit SynchronizedKvStore(std::unique_ptr<KvStore> inner)
      : inner_(std::move(inner)) {}

  util::Status Put(std::string_view key, std::string_view value) override {
    util::MutexLock lock(&mu_);
    return inner_->Put(key, value);
  }
  util::Result<std::string> Get(std::string_view key) const override {
    util::MutexLock lock(&mu_);
    return inner_->Get(key);
  }
  util::Status Delete(std::string_view key, bool* existed = nullptr) override {
    util::MutexLock lock(&mu_);
    return inner_->Delete(key, existed);
  }
  util::Result<bool> Contains(std::string_view key) const override {
    util::MutexLock lock(&mu_);
    return inner_->Contains(key);
  }
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t KeyCount() const override {
    util::MutexLock lock(&mu_);
    return inner_->KeyCount();
  }
  util::Status Flush() override {
    util::MutexLock lock(&mu_);
    return inner_->Flush();
  }

  /// Replaces the inner store, returning the previous one. In-flight
  /// readers (all serialized on mu_) switch to the new store on their
  /// next operation; the checkpoint protocol guarantees it holds the
  /// same logical content.
  std::unique_ptr<KvStore> Swap(std::unique_ptr<KvStore> next) {
    util::MutexLock lock(&mu_);
    std::swap(inner_, next);
    return next;
  }

 private:
  friend class SynchronizedIterator;

  mutable util::Mutex mu_;
  std::unique_ptr<KvStore> inner_ GUARDED_BY(mu_);
};

/// Holds the store mutex from construction to destruction; the inner
/// iterator is only ever touched with the lock held.
class SynchronizedIterator : public KvIterator {
 public:
  // Lifetime-scoped lock: acquired here, released in the destructor.
  // The static analysis cannot track a capability across object
  // lifetime, hence the explicit opt-outs.
  explicit SynchronizedIterator(const SynchronizedKvStore* store)
      NO_THREAD_SAFETY_ANALYSIS : store_(store) {
    store_->mu_.Lock();
    inner_ = store_->inner_->NewIterator();
  }
  ~SynchronizedIterator() override NO_THREAD_SAFETY_ANALYSIS {
    inner_.reset();  // before the lock drops: it points into the store
    store_->mu_.Unlock();
  }

  void Seek(std::string_view key) override { inner_->Seek(key); }
  void SeekToFirst() override { inner_->SeekToFirst(); }
  bool Valid() const override { return inner_->Valid(); }
  void Next() override { inner_->Next(); }
  std::string_view key() const override { return inner_->key(); }
  std::string_view value() const override { return inner_->value(); }

 private:
  const SynchronizedKvStore* store_;
  std::unique_ptr<KvIterator> inner_;
};

inline std::unique_ptr<KvIterator> SynchronizedKvStore::NewIterator() const {
  return std::make_unique<SynchronizedIterator>(this);
}

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_SYNCHRONIZED_STORE_H_
