#include "storage/pager.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/crc32.h"

namespace approxql::storage {

using util::Result;
using util::Status;

namespace {

constexpr uint32_t kMagic = 0x41505132;  // "APQ2" (v2: page checksums)
constexpr size_t kMagicOffset = 0;
constexpr size_t kPageSizeOffset = 4;
constexpr size_t kPageCountOffset = 8;
constexpr size_t kFreelistOffset = 12;
constexpr size_t kMetaSlotsOffset = 16;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           bool create_if_missing) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  bool fresh = false;
  if (file == nullptr) {
    if (!create_if_missing) {
      return Status::IoError("cannot open " + path);
    }
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) {
      return Status::IoError("cannot create " + path);
    }
    fresh = true;
  }
  std::unique_ptr<Pager> pager(new Pager(file, path));
  if (fresh) {
    pager->meta_dirty_ = true;
    RETURN_IF_ERROR(pager->WriteMeta());
  } else {
    RETURN_IF_ERROR(pager->LoadMeta());
  }
  return pager;
}

Pager::~Pager() {
  if (file_ != nullptr) {
    Status s = Flush();
    if (!s.ok()) {
      APPROXQL_LOG(Error) << "flush on close failed for " << path_ << ": "
                          << s;
    }
    std::fclose(file_);
  }
}

Status Pager::LoadMeta() {
  Page meta;
  RETURN_IF_ERROR(ReadPageFromFile(0, &meta));
  const uint8_t* d = meta.data.data();
  if (GetU32(d + kMagicOffset) != kMagic) {
    return Status::Corruption(path_ + ": bad magic (not an approxql store)");
  }
  if (GetU32(d + kPageSizeOffset) != kPageSize) {
    return Status::Corruption(path_ + ": page size mismatch");
  }
  page_count_ = GetU32(d + kPageCountOffset);
  freelist_head_ = GetU32(d + kFreelistOffset);
  if (page_count_ == 0) {
    return Status::Corruption(path_ + ": zero page count");
  }
  for (int i = 0; i < 4; ++i) {
    meta_slots_[i] = GetU32(d + kMetaSlotsOffset + 4 * static_cast<size_t>(i));
  }
  return Status::OK();
}

Status Pager::WriteMeta() {
  Page meta;
  meta.data.assign(kPageSize, 0);
  uint8_t* d = meta.data.data();
  PutU32(d + kMagicOffset, kMagic);
  PutU32(d + kPageSizeOffset, kPageSize);
  PutU32(d + kPageCountOffset, page_count_);
  PutU32(d + kFreelistOffset, freelist_head_);
  for (int i = 0; i < 4; ++i) {
    PutU32(d + kMetaSlotsOffset + 4 * static_cast<size_t>(i), meta_slots_[i]);
  }
  RETURN_IF_ERROR(WritePageToFile(0, &meta));
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::ReadPageFromFile(PageId id, Page* page) {
  page->data.assign(kPageSize, 0);
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError(path_ + ": seek failed");
  }
  size_t n = std::fread(page->data.data(), 1, kPageSize, file_);
  if (n != kPageSize) {
    return Status::IoError(path_ + ": short read of page " +
                           std::to_string(id));
  }
  uint32_t stored = GetU32(page->data.data() + kPageUsableSize);
  uint32_t computed = util::Crc32c(page->data.data(), kPageUsableSize);
  if (stored != computed) {
    return Status::Corruption(path_ + ": checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Pager::WritePageToFile(PageId id, Page* page) {
  APPROXQL_DCHECK(page->data.size() == kPageSize);
  // The checksum trailer is (re)computed on every write; callers never
  // touch the last four bytes.
  PutU32(page->data.data() + kPageUsableSize,
         util::Crc32c(page->data.data(), kPageUsableSize));
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError(path_ + ": seek failed");
  }
  if (std::fwrite(page->data.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError(path_ + ": short write of page " +
                           std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> Pager::Allocate() {
  PageId id;
  if (freelist_head_ != kInvalidPage) {
    id = freelist_head_;
    ASSIGN_OR_RETURN(Page * page, Fetch(id));
    freelist_head_ = GetU32(page->data.data());
    page->data.assign(kPageSize, 0);
    page->dirty = true;
  } else {
    id = page_count_++;
    auto page = std::make_unique<Page>();
    page->data.assign(kPageSize, 0);
    page->dirty = true;
    cache_[id] = std::move(page);
  }
  meta_dirty_ = true;
  return id;
}

Status Pager::Free(PageId id) {
  APPROXQL_CHECK(id != 0) << "cannot free the meta page";
  ASSIGN_OR_RETURN(Page * page, Fetch(id));
  page->data.assign(kPageSize, 0);
  PutU32(page->data.data(), freelist_head_);
  page->dirty = true;
  freelist_head_ = id;
  meta_dirty_ = true;
  return Status::OK();
}

Result<Page*> Pager::Fetch(PageId id) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond page count " +
                              std::to_string(page_count_));
  }
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second->last_use = ++use_clock_;
    return it->second.get();
  }
  auto page = std::make_unique<Page>();
  RETURN_IF_ERROR(ReadPageFromFile(id, page.get()));
  page->last_use = ++use_clock_;
  Page* raw = page.get();
  cache_[id] = std::move(page);
  return raw;
}

Status Pager::EvictIfNeeded() {
  if (cache_limit_ == 0 || cache_.size() <= cache_limit_) {
    return Status::OK();
  }
  // Collect (last_use, id), oldest first; keep the newest cache_limit_.
  std::vector<std::pair<uint64_t, PageId>> by_age;
  by_age.reserve(cache_.size());
  for (const auto& [id, page] : cache_) {
    by_age.emplace_back(page->last_use, id);
  }
  std::sort(by_age.begin(), by_age.end());
  size_t to_evict = cache_.size() - cache_limit_;
  for (size_t i = 0; i < to_evict; ++i) {
    auto it = cache_.find(by_age[i].second);
    APPROXQL_DCHECK(it != cache_.end());
    if (it->second->dirty) {
      RETURN_IF_ERROR(WritePageToFile(it->first, it->second.get()));
    }
    cache_.erase(it);
  }
  return Status::OK();
}

void Pager::MarkDirty(PageId id) {
  auto it = cache_.find(id);
  APPROXQL_CHECK(it != cache_.end()) << "MarkDirty on unfetched page " << id;
  it->second->dirty = true;
}

Status Pager::Flush() {
  for (auto& [id, page] : cache_) {
    if (page->dirty) {
      RETURN_IF_ERROR(WritePageToFile(id, page.get()));
      page->dirty = false;
    }
  }
  if (meta_dirty_) {
    RETURN_IF_ERROR(WriteMeta());
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError(path_ + ": fflush failed");
  }
  return Status::OK();
}

Status Pager::Sync() {
  RETURN_IF_ERROR(Flush());
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError(path_ + ": fsync failed");
  }
  return Status::OK();
}

void Pager::Abandon() {
  cache_.clear();
  meta_dirty_ = false;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

uint32_t Pager::GetMetaSlot(int slot) const {
  APPROXQL_DCHECK(slot >= 0 && slot < 4);
  return meta_slots_[slot];
}

void Pager::SetMetaSlot(int slot, uint32_t value) {
  APPROXQL_DCHECK(slot >= 0 && slot < 4);
  meta_slots_[slot] = value;
  meta_dirty_ = true;
}

size_t Pager::freelist_size() const {
  // Walking the freelist requires const_cast-free fetches; cheap count by
  // following links in the cache/file is only used by tests, so we accept
  // the mutable fetch through a const_cast here.
  size_t n = 0;
  Pager* self = const_cast<Pager*>(this);
  PageId cursor = freelist_head_;
  while (cursor != kInvalidPage) {
    ++n;
    auto page = self->Fetch(cursor);
    if (!page.ok()) break;
    cursor = GetU32((*page)->data.data());
  }
  return n;
}

}  // namespace approxql::storage
