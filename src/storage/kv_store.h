// Ordered key-value store interface. The paper's implementation stores
// its indexes in Berkeley DB; this interface is our substitute seam with
// two implementations: MemKvStore (std::map, used by default and in
// benchmarks) and DiskKvStore (single-file page-based B+tree, used for
// persistence).
#ifndef APPROXQL_STORAGE_KV_STORE_H_
#define APPROXQL_STORAGE_KV_STORE_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace approxql::storage {

/// Forward iteration over key order. Invalidated by writes to the store.
class KvIterator {
 public:
  virtual ~KvIterator() = default;

  /// Positions on the first key >= `key`.
  virtual void Seek(std::string_view key) = 0;
  virtual void SeekToFirst() = 0;
  virtual bool Valid() const = 0;
  /// Precondition for Next/key/value: Valid().
  virtual void Next() = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites.
  virtual util::Status Put(std::string_view key, std::string_view value) = 0;
  /// NotFound if absent.
  virtual util::Result<std::string> Get(std::string_view key) const = 0;
  /// True in *existed if the key was present.
  virtual util::Status Delete(std::string_view key, bool* existed = nullptr) = 0;
  virtual util::Result<bool> Contains(std::string_view key) const = 0;
  virtual std::unique_ptr<KvIterator> NewIterator() const = 0;
  virtual size_t KeyCount() const = 0;
  /// Durability point for persistent stores; no-op for in-memory ones.
  virtual util::Status Flush() = 0;
};

}  // namespace approxql::storage

#endif  // APPROXQL_STORAGE_KV_STORE_H_
