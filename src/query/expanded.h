// The expanded representation of a query (paper Section 6.1): a DAG of
// four representation types that implicitly encodes every
// semi-transformed query (all deletions and renamings, no insertions):
//
//   node — an inner query node together with all its allowed renamings;
//   leaf — a query leaf with its renamings and its deletion cost;
//   and  — an "and" operator (binary; n-ary ASTs are left-binarized);
//   or   — a query "or" operator (edge cost 0), or a deletion bridge for
//          a deletable inner node: the left edge leads to the node, the
//          right edge bridges it at the node's delete cost.
//
// The deletion bridge shares the child subtree with the bridged node
// (the structure is a DAG, exactly as drawn in the paper's Figure 2(a)),
// which also lets the evaluator's dynamic-programming cache kick in.
//
// Deviation from Definition 4, documented in DESIGN.md: leaf deletion
// costs are attached per leaf as in Figure 2, and the evaluator enforces
// the paper's "full version" rule that at least one query leaf matches,
// instead of the sequential per-parent "keep one leaf" side condition.
#ifndef APPROXQL_QUERY_EXPANDED_H_
#define APPROXQL_QUERY_EXPANDED_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "query/ast.h"

namespace approxql::query {

enum class RepType : uint8_t { kNode, kLeaf, kAnd, kOr };

struct ExpandedNode {
  RepType rep;
  /// Dense arena index; keys the evaluator's memoization tables.
  int id = 0;
  /// True only for the query root (the algorithm returns its list
  /// directly instead of joining it with ancestors).
  bool is_root = false;

  // kNode / kLeaf:
  NodeType type = NodeType::kStruct;
  std::string label;
  std::vector<cost::Renaming> renamings;
  /// kLeaf: cost of deleting this leaf (kInfinite = not deletable).
  cost::Cost delcost = cost::kInfinite;

  /// kOr: cost of the edge to the right child (0 for query "or",
  /// the bridged node's delete cost for a deletion bridge).
  cost::Cost edgecost = 0;

  /// kNode: the single child (nullptr for a root without content).
  /// kAnd/kOr: both children.
  const ExpandedNode* left = nullptr;
  const ExpandedNode* right = nullptr;
};

class ExpandedQuery {
 public:
  ExpandedQuery(ExpandedQuery&&) = default;
  ExpandedQuery& operator=(ExpandedQuery&&) = default;

  /// Builds the expanded representation of `query` under `model`.
  static util::Result<ExpandedQuery> Build(const Query& query,
                                           const cost::CostModel& model);

  const ExpandedNode* root() const { return root_; }
  /// Number of distinct DAG vertices (= size of the DP cache).
  size_t node_count() const { return arena_.size(); }

  /// Number of semi-transformed query derivations the representation
  /// encodes (label choices multiply, "or" branches add, deletable
  /// leaves double; saturates at SIZE_MAX).
  size_t SemiTransformedCount() const;

  /// GraphViz dot output for debugging and EXPLAIN-style inspection.
  std::string ToDot() const;

 private:
  ExpandedQuery() = default;

  ExpandedNode* New(RepType rep);
  const ExpandedNode* BuildSelector(const AstNode& ast,
                                    const cost::CostModel& model,
                                    bool is_root);
  const ExpandedNode* BuildExpr(const AstNode& ast,
                                const cost::CostModel& model);

  std::vector<std::unique_ptr<ExpandedNode>> arena_;
  const ExpandedNode* root_ = nullptr;
};

}  // namespace approxql::query

#endif  // APPROXQL_QUERY_EXPANDED_H_
