#include "query/ast.h"

#include <cctype>

#include "util/string_util.h"

namespace approxql::query {

using util::Result;
using util::Status;

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == ':' || c == '.';
}

// Brackets and parentheses each recurse one level of ParseSelector /
// ParsePrimary; a wire-delivered "a[a[a[…" must hit a parse error, not
// exhaust the stack. 64 is far beyond any schema-sensible query (the
// paper's examples nest 2-3 deep) and also bounds the recursion of
// every downstream AST walk (ToString, AstEquals, the node destructor).
constexpr int kMaxNesting = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(std::unique_ptr<AstNode> root, ParseSelector());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    Query query;
    query.root = std::move(root);
    return query;
  }

 private:
  Status Error(std::string message) const {
    return Status::ParseError("query offset " + std::to_string(pos_) + ": " +
                              std::move(message));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// True if the next token is the keyword `word` (consumes it).
  bool ConsumeKeyword(std::string_view word) {
    SkipWhitespace();
    if (!text_.substr(pos_).starts_with(word)) return false;
    size_t end = pos_ + word.size();
    if (end < text_.size() && IsNameChar(text_[end])) return false;
    pos_ = end;
    return true;
  }

  Result<std::unique_ptr<AstNode>> ParseSelector() {
    SkipWhitespace();
    if (AtEnd() || !IsNameChar(Peek())) {
      return Error("expected name selector");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    std::string name(text_.substr(start, pos_ - start));
    if (name == "and" || name == "or") {
      return Error("'" + name + "' is a reserved word");
    }
    auto node = std::make_unique<AstNode>();
    node->kind = AstKind::kName;
    node->label = std::move(name);
    SkipWhitespace();
    if (Consume('[')) {
      if (++depth_ > kMaxNesting) {
        return Error("query nesting exceeds depth limit " +
                     std::to_string(kMaxNesting));
      }
      ASSIGN_OR_RETURN(std::unique_ptr<AstNode> expr, ParseOrExpr());
      --depth_;
      SkipWhitespace();
      if (!Consume(']')) return Error("expected ']'");
      node->children.push_back(std::move(expr));
    }
    return node;
  }

  /// Appends `child` to the n-ary `parent`, splicing same-kind children
  /// so "a and b and c" is one flat kAnd whether it came from operators
  /// or from a multi-word text selector.
  static void Adopt(AstNode* parent, std::unique_ptr<AstNode> child) {
    if (child->kind == parent->kind) {
      for (auto& grandchild : child->children) {
        parent->children.push_back(std::move(grandchild));
      }
    } else {
      parent->children.push_back(std::move(child));
    }
  }

  Result<std::unique_ptr<AstNode>> ParseOrExpr() {
    ASSIGN_OR_RETURN(std::unique_ptr<AstNode> first, ParseAndExpr());
    if (!ConsumeKeyword("or")) return first;
    auto node = std::make_unique<AstNode>();
    node->kind = AstKind::kOr;
    Adopt(node.get(), std::move(first));
    do {
      ASSIGN_OR_RETURN(std::unique_ptr<AstNode> next, ParseAndExpr());
      Adopt(node.get(), std::move(next));
    } while (ConsumeKeyword("or"));
    return node;
  }

  Result<std::unique_ptr<AstNode>> ParseAndExpr() {
    ASSIGN_OR_RETURN(std::unique_ptr<AstNode> first, ParsePrimary());
    if (!ConsumeKeyword("and")) return first;
    auto node = std::make_unique<AstNode>();
    node->kind = AstKind::kAnd;
    Adopt(node.get(), std::move(first));
    do {
      ASSIGN_OR_RETURN(std::unique_ptr<AstNode> next, ParsePrimary());
      Adopt(node.get(), std::move(next));
    } while (ConsumeKeyword("and"));
    return node;
  }

  Result<std::unique_ptr<AstNode>> ParsePrimary() {
    SkipWhitespace();
    if (AtEnd()) return Error("expected selector, text, or '('");
    char c = Peek();
    if (c == '(') {
      ++pos_;
      if (++depth_ > kMaxNesting) {
        return Error("query nesting exceeds depth limit " +
                     std::to_string(kMaxNesting));
      }
      ASSIGN_OR_RETURN(std::unique_ptr<AstNode> expr, ParseOrExpr());
      --depth_;
      SkipWhitespace();
      if (!Consume(')')) return Error("expected ')'");
      return expr;
    }
    if (c == '"' || c == '\'') {
      return ParseTextSelector();
    }
    return ParseSelector();
  }

  Result<std::unique_ptr<AstNode>> ParseTextSelector() {
    char quote = Peek();
    ++pos_;
    // The paper's examples typeset the opening quote as ''; accept a
    // doubled single quote as one delimiter.
    if (quote == '\'' && Consume('\'')) quote = '\'';
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated text selector");
    std::string_view raw = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    std::vector<std::string> words = util::SplitWords(raw);
    if (words.empty()) {
      return Error("text selector contains no words");
    }
    if (words.size() == 1) {
      auto node = std::make_unique<AstNode>();
      node->kind = AstKind::kText;
      node->label = std::move(words[0]);
      return node;
    }
    // Multi-word text selector: conjunction of its words.
    auto conj = std::make_unique<AstNode>();
    conj->kind = AstKind::kAnd;
    for (auto& word : words) {
      auto leaf = std::make_unique<AstNode>();
      leaf->kind = AstKind::kText;
      leaf->label = std::move(word);
      conj->children.push_back(std::move(leaf));
    }
    return conj;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void AppendString(const AstNode& node, std::string* out) {
  switch (node.kind) {
    case AstKind::kName:
      out->append(node.label);
      if (!node.children.empty()) {
        out->push_back('[');
        AppendString(*node.children.front(), out);
        out->push_back(']');
      }
      break;
    case AstKind::kText:
      out->push_back('"');
      out->append(node.label);
      out->push_back('"');
      break;
    case AstKind::kAnd:
    case AstKind::kOr: {
      const char* op = node.kind == AstKind::kAnd ? " and " : " or ";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out->append(op);
        const AstNode& child = *node.children[i];
        bool needs_parens = child.kind == AstKind::kOr ||
                            (node.kind == AstKind::kOr &&
                             child.kind == AstKind::kAnd);
        if (needs_parens) out->push_back('(');
        AppendString(child, out);
        if (needs_parens) out->push_back(')');
      }
      break;
    }
  }
}

}  // namespace

Result<Query> Parse(std::string_view text) { return Parser(text).Parse(); }

std::string Query::ToString() const {
  std::string out;
  if (root != nullptr) AppendString(*root, &out);
  return out;
}

bool AstEquals(const AstNode& a, const AstNode& b) {
  if (a.kind != b.kind || a.label != b.label ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!AstEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

size_t SelectorCount(const AstNode& node) {
  size_t n = node.kind == AstKind::kName || node.kind == AstKind::kText ? 1 : 0;
  for (const auto& child : node.children) n += SelectorCount(*child);
  return n;
}

size_t OrCount(const AstNode& node) {
  size_t n =
      node.kind == AstKind::kOr ? node.children.size() - 1 : 0;
  for (const auto& child : node.children) n += OrCount(*child);
  return n;
}

}  // namespace approxql::query
