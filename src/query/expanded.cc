#include "query/expanded.h"

#include <limits>
#include <unordered_map>

namespace approxql::query {

using cost::CostModel;
using util::Result;
using util::Status;

ExpandedNode* ExpandedQuery::New(RepType rep) {
  auto node = std::make_unique<ExpandedNode>();
  node->rep = rep;
  node->id = static_cast<int>(arena_.size());
  ExpandedNode* raw = node.get();
  arena_.push_back(std::move(node));
  return raw;
}

const ExpandedNode* ExpandedQuery::BuildExpr(const AstNode& ast,
                                             const CostModel& model) {
  switch (ast.kind) {
    case AstKind::kText: {
      ExpandedNode* leaf = New(RepType::kLeaf);
      leaf->type = NodeType::kText;
      leaf->label = ast.label;
      leaf->renamings = model.RenamingsOf(NodeType::kText, ast.label);
      leaf->delcost = model.DeleteCost(NodeType::kText, ast.label);
      return leaf;
    }
    case AstKind::kName:
      return BuildSelector(ast, model, /*is_root=*/false);
    case AstKind::kAnd:
    case AstKind::kOr: {
      RepType rep = ast.kind == AstKind::kAnd ? RepType::kAnd : RepType::kOr;
      const ExpandedNode* acc = BuildExpr(*ast.children.front(), model);
      for (size_t i = 1; i < ast.children.size(); ++i) {
        ExpandedNode* op = New(rep);
        op->left = acc;
        op->right = BuildExpr(*ast.children[i], model);
        op->edgecost = 0;  // query-level operators carry no edge cost
        acc = op;
      }
      return acc;
    }
  }
  APPROXQL_CHECK(false) << "unreachable AST kind";
  return nullptr;
}

const ExpandedNode* ExpandedQuery::BuildSelector(const AstNode& ast,
                                                 const CostModel& model,
                                                 bool is_root) {
  APPROXQL_DCHECK(ast.kind == AstKind::kName);
  if (ast.children.empty() && !is_root) {
    // A name selector without content is a query leaf of type struct.
    ExpandedNode* leaf = New(RepType::kLeaf);
    leaf->type = NodeType::kStruct;
    leaf->label = ast.label;
    leaf->renamings = model.RenamingsOf(NodeType::kStruct, ast.label);
    leaf->delcost = model.DeleteCost(NodeType::kStruct, ast.label);
    return leaf;
  }
  const ExpandedNode* child =
      ast.children.empty() ? nullptr : BuildExpr(*ast.children.front(), model);
  ExpandedNode* node = New(RepType::kNode);
  node->type = NodeType::kStruct;
  node->label = ast.label;
  node->renamings = model.RenamingsOf(NodeType::kStruct, ast.label);
  node->is_root = is_root;
  node->left = child;
  if (is_root) return node;
  // Deletable inner node: wrap in a deletion bridge that shares the
  // child subtree (DAG edge), per Figure 2(a). The root is never
  // deletable (Definition 3).
  cost::Cost delete_cost = model.DeleteCost(NodeType::kStruct, ast.label);
  if (!cost::IsFinite(delete_cost)) return node;
  ExpandedNode* bridge = New(RepType::kOr);
  bridge->left = node;
  bridge->right = child;
  bridge->edgecost = delete_cost;
  return bridge;
}

Result<ExpandedQuery> ExpandedQuery::Build(const Query& query,
                                           const CostModel& model) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("empty query");
  }
  if (query.root->kind != AstKind::kName) {
    return Status::InvalidArgument("query root must be a name selector");
  }
  ExpandedQuery expanded;
  expanded.root_ =
      expanded.BuildSelector(*query.root, model, /*is_root=*/true);
  return expanded;
}

namespace {

size_t SaturatingMul(size_t a, size_t b) {
  if (a != 0 && b > std::numeric_limits<size_t>::max() / a) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

size_t SaturatingAdd(size_t a, size_t b) {
  size_t sum = a + b;
  return sum < a ? std::numeric_limits<size_t>::max() : sum;
}

/// Counts derivable semi-transformed queries: label choices multiply,
/// "or" edges add, "and" edges multiply, a deletable leaf doubles (kept
/// or deleted).
size_t Count(const ExpandedNode* node,
             std::unordered_map<const ExpandedNode*, size_t>* memo) {
  auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  size_t result = 0;
  switch (node->rep) {
    case RepType::kLeaf:
      result = 1 + node->renamings.size();
      if (cost::IsFinite(node->delcost)) result = SaturatingAdd(result, 1);
      break;
    case RepType::kNode: {
      size_t labels = 1 + node->renamings.size();
      size_t below = node->left == nullptr ? 1 : Count(node->left, memo);
      result = SaturatingMul(labels, below);
      break;
    }
    case RepType::kAnd:
      result = SaturatingMul(Count(node->left, memo), Count(node->right, memo));
      break;
    case RepType::kOr:
      result = SaturatingAdd(Count(node->left, memo), Count(node->right, memo));
      break;
  }
  (*memo)[node] = result;
  return result;
}

const char* RepName(RepType rep) {
  switch (rep) {
    case RepType::kNode:
      return "node";
    case RepType::kLeaf:
      return "leaf";
    case RepType::kAnd:
      return "and";
    case RepType::kOr:
      return "or";
  }
  return "?";
}

}  // namespace

size_t ExpandedQuery::SemiTransformedCount() const {
  std::unordered_map<const ExpandedNode*, size_t> memo;
  return Count(root_, &memo);
}

std::string ExpandedQuery::ToDot() const {
  std::string out = "digraph expanded {\n";
  for (const auto& node : arena_) {
    out += "  n" + std::to_string(node->id) + " [label=\"";
    out += RepName(node->rep);
    if (node->rep == RepType::kNode || node->rep == RepType::kLeaf) {
      out += ": " + node->label;
      for (const auto& renaming : node->renamings) {
        out += " | " + renaming.to + "/" + std::to_string(renaming.cost);
      }
      if (node->rep == RepType::kLeaf && cost::IsFinite(node->delcost)) {
        out += " del=" + std::to_string(node->delcost);
      }
    }
    out += "\"];\n";
    if (node->left != nullptr) {
      out += "  n" + std::to_string(node->id) + " -> n" +
             std::to_string(node->left->id) + ";\n";
    }
    if (node->right != nullptr) {
      out += "  n" + std::to_string(node->id) + " -> n" +
             std::to_string(node->right->id);
      if (node->rep == RepType::kOr && node->edgecost > 0) {
        out += " [label=\"" + std::to_string(node->edgecost) + "\"]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace approxql::query
