// approXQL abstract syntax (paper Section 3). The language subset:
// name selectors, text selectors, the containment operator "[]" and the
// Boolean operators "and" / "or":
//
//   cd[title["piano" and "concerto"] and composer["rachmaninov"]]
//
// Grammar (text selectors accept double or single quotes; "and" binds
// tighter than "or"):
//   query    := selector
//   selector := NAME ( '[' or-expr ']' )?
//   or-expr  := and-expr ( 'or' and-expr )*
//   and-expr := primary ( 'and' primary )*
//   primary  := selector | TEXT | '(' or-expr ')'
//
// A TEXT selector with several words ("piano concerto") is sugar for the
// conjunction of its words, matching the word-granular data model.
#ifndef APPROXQL_QUERY_AST_H_
#define APPROXQL_QUERY_AST_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace approxql::query {

enum class AstKind : uint8_t {
  kName,  // name selector; at most one child (the bracket expression)
  kText,  // text selector (single word); no children
  kAnd,   // n-ary conjunction
  kOr,    // n-ary disjunction
};

struct AstNode {
  AstKind kind;
  std::string label;  // kName / kText only
  std::vector<std::unique_ptr<AstNode>> children;
};

/// A parsed approXQL query; the root is always a name selector.
struct Query {
  std::unique_ptr<AstNode> root;

  /// Canonical text form (parses back to an equal AST).
  std::string ToString() const;
};

/// Parses approXQL text. Errors carry a character offset.
util::Result<Query> Parse(std::string_view text);

/// Structural equality of ASTs (for tests).
bool AstEquals(const AstNode& a, const AstNode& b);

/// Number of selectors (name + text nodes) in the query.
size_t SelectorCount(const AstNode& node);

/// Number of "or" operators in the query (the separated representation
/// has up to 2^or-count conjunctive queries).
size_t OrCount(const AstNode& node);

}  // namespace approxql::query

#endif  // APPROXQL_QUERY_AST_H_
