// The separated query representation (paper Section 3): an approXQL
// query with k "or" operators is broken into up to 2^k conjunctive
// queries. The evaluation engine never materializes this set (the
// expanded representation encodes "or" natively); it exists for the
// brute-force oracle, for tests, and for EXPLAIN-style output.
#ifndef APPROXQL_QUERY_SEPARATED_H_
#define APPROXQL_QUERY_SEPARATED_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "query/ast.h"

namespace approxql::query {

/// A node of a conjunctive query tree (no "or"; "and" is implicit in the
/// child list, matching the paper's tree interpretation of Figure 1(a)).
struct ConjunctiveNode {
  NodeType type = NodeType::kStruct;
  std::string label;
  std::vector<std::unique_ptr<ConjunctiveNode>> children;

  std::unique_ptr<ConjunctiveNode> Clone() const;
};

struct ConjunctiveQuery {
  std::unique_ptr<ConjunctiveNode> root;

  std::string ToString() const;

  /// Rebuilds a regular (or-free) Query AST for this conjunct, so a
  /// disjunct can be handed to any evaluator that consumes a Query.
  Query ToQuery() const;
};

/// Expands a query into its separated representation. Fails with
/// OutOfRange if the number of conjunctive queries would exceed
/// `max_queries` (the count is exponential in the number of "or"s).
util::Result<std::vector<ConjunctiveQuery>> SeparatedRepresentation(
    const Query& query, size_t max_queries = 4096);

}  // namespace approxql::query

#endif  // APPROXQL_QUERY_SEPARATED_H_
