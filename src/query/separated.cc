#include "query/separated.h"

namespace approxql::query {

using util::Result;
using util::Status;

std::unique_ptr<ConjunctiveNode> ConjunctiveNode::Clone() const {
  auto copy = std::make_unique<ConjunctiveNode>();
  copy->type = type;
  copy->label = label;
  copy->children.reserve(children.size());
  for (const auto& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

namespace {

void AppendString(const ConjunctiveNode& node, std::string* out) {
  if (node.type == NodeType::kText) {
    out->push_back('"');
    out->append(node.label);
    out->push_back('"');
    return;
  }
  out->append(node.label);
  if (!node.children.empty()) {
    out->push_back('[');
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out->append(" and ");
      AppendString(*node.children[i], out);
    }
    out->push_back(']');
  }
}

/// One alternative: the list of subtree roots contributed to the parent.
using Group = std::vector<std::unique_ptr<ConjunctiveNode>>;

Group CloneGroup(const Group& group) {
  Group copy;
  copy.reserve(group.size());
  for (const auto& node : group) copy.push_back(node->Clone());
  return copy;
}

/// Returns all alternatives for the subexpression. Every alternative is
/// a group of conjunctive subtrees (an "and" contributes several roots).
Result<std::vector<Group>> Expand(const AstNode& node, size_t max_queries) {
  switch (node.kind) {
    case AstKind::kText: {
      auto leaf = std::make_unique<ConjunctiveNode>();
      leaf->type = NodeType::kText;
      leaf->label = node.label;
      std::vector<Group> alternatives;
      Group group;
      group.push_back(std::move(leaf));
      alternatives.push_back(std::move(group));
      return alternatives;
    }
    case AstKind::kName: {
      std::vector<Group> child_alternatives;
      if (node.children.empty()) {
        child_alternatives.emplace_back();  // one empty group
      } else {
        ASSIGN_OR_RETURN(child_alternatives,
                         Expand(*node.children.front(), max_queries));
      }
      std::vector<Group> alternatives;
      for (auto& child_group : child_alternatives) {
        auto name = std::make_unique<ConjunctiveNode>();
        name->type = NodeType::kStruct;
        name->label = node.label;
        name->children = std::move(child_group);
        Group group;
        group.push_back(std::move(name));
        alternatives.push_back(std::move(group));
      }
      return alternatives;
    }
    case AstKind::kAnd: {
      // Cartesian product of the children's alternatives.
      std::vector<Group> acc;
      acc.emplace_back();
      for (const auto& child : node.children) {
        ASSIGN_OR_RETURN(std::vector<Group> child_alts,
                         Expand(*child, max_queries));
        std::vector<Group> next;
        if (acc.size() * child_alts.size() > max_queries) {
          return Status::OutOfRange(
              "separated representation exceeds limit of " +
              std::to_string(max_queries) + " conjunctive queries");
        }
        next.reserve(acc.size() * child_alts.size());
        for (const auto& left : acc) {
          for (const auto& right : child_alts) {
            Group combined = CloneGroup(left);
            for (auto& node_copy : CloneGroup(right)) {
              combined.push_back(std::move(node_copy));
            }
            next.push_back(std::move(combined));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case AstKind::kOr: {
      std::vector<Group> alternatives;
      for (const auto& child : node.children) {
        ASSIGN_OR_RETURN(std::vector<Group> child_alts,
                         Expand(*child, max_queries));
        for (auto& group : child_alts) {
          alternatives.push_back(std::move(group));
          if (alternatives.size() > max_queries) {
            return Status::OutOfRange(
                "separated representation exceeds limit of " +
                std::to_string(max_queries) + " conjunctive queries");
          }
        }
      }
      return alternatives;
    }
  }
  return Status::Internal("unreachable AST kind");
}

std::unique_ptr<AstNode> ToAst(const ConjunctiveNode& node) {
  auto ast = std::make_unique<AstNode>();
  ast->kind = node.type == NodeType::kText ? AstKind::kText : AstKind::kName;
  ast->label = node.label;
  if (node.children.empty()) return ast;
  if (node.children.size() == 1) {
    ast->children.push_back(ToAst(*node.children.front()));
    return ast;
  }
  auto conj = std::make_unique<AstNode>();
  conj->kind = AstKind::kAnd;
  conj->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    conj->children.push_back(ToAst(*child));
  }
  ast->children.push_back(std::move(conj));
  return ast;
}

}  // namespace

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  if (root != nullptr) AppendString(*root, &out);
  return out;
}

Query ConjunctiveQuery::ToQuery() const {
  Query q;
  if (root != nullptr) q.root = ToAst(*root);
  return q;
}

Result<std::vector<ConjunctiveQuery>> SeparatedRepresentation(
    const Query& query, size_t max_queries) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("empty query");
  }
  ASSIGN_OR_RETURN(std::vector<Group> alternatives,
                   Expand(*query.root, max_queries));
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(alternatives.size());
  for (auto& group : alternatives) {
    APPROXQL_CHECK(group.size() == 1)
        << "query root must expand to a single selector";
    ConjunctiveQuery q;
    q.root = std::move(group.front());
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace approxql::query
