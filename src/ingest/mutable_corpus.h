// A mutable sharded corpus: N DurableShards behind a serialized ingest
// path, published to readers as immutable ShardedDatabase generations.
//
// Readers call snapshot() and run queries against the returned
// generation for as long as they like; every accepted mutation builds a
// new generation copy-on-write (only the mutated shard's engine state
// is rebuilt — unmutated shards are shared by pointer) and swaps it in.
// Snapshot isolation is enforced by the StoredLabelIndex node limit on
// the read side: postings appended by later documents are invisible to
// older generations. Removals rewrite postings in place, so before a
// remove every still-live generation's view of the affected shard is
// preloaded into its cache and sealed.
//
// Placement: a new document goes to the shard with the fewest documents
// (ties to the lowest index). The rule is recomputable from recovered
// state alone, and answers are placement-independent (the partition-
// equivalence contract), so recovery does not need to remember any
// arrival ordering beyond the global ids themselves.
//
// Epoch: the sum of the shards' durable WAL sequence numbers. Every
// acknowledged mutation moves it; it salts the generation's layout
// fingerprint, so result caches keyed by fingerprint never cross
// corpus states.
#ifndef APPROXQL_INGEST_MUTABLE_CORPUS_H_
#define APPROXQL_INGEST_MUTABLE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "ingest/durable_shard.h"
#include "service/metrics.h"
#include "shard/sharded_database.h"
#include "storage/kv_factory.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::ingest {

class MutableCorpus {
 public:
  struct Options {
    std::string data_dir;
    size_t num_shards = 1;
    storage::StoreKind store_kind = storage::StoreKind::kMem;
    cost::CostModel model;
    size_t inline_threshold = storage::kDefaultInlineThreshold;
  };

  struct OpenStats {
    size_t recovered_documents = 0;
    size_t replayed_records = 0;
    bool any_tail_truncated = false;
    bool any_store_rebuilt = false;
  };

  /// Opens (or creates) the corpus under `data_dir`, recovering every
  /// shard (in parallel) and publishing the first generation. A corpus
  /// directory remembers its configuration (corpus.meta) and refuses to
  /// open under a different one. `metrics` may be shared with a serving
  /// QueryService; pass nullptr for a private registry.
  static util::Result<std::unique_ptr<MutableCorpus>> Open(
      Options options,
      std::shared_ptr<service::MetricsRegistry> metrics = nullptr,
      OpenStats* stats_out = nullptr);

  MutableCorpus(const MutableCorpus&) = delete;
  MutableCorpus& operator=(const MutableCorpus&) = delete;

  struct IngestResult {
    uint64_t seq = 0;       // durable sequence number on the owning shard
    uint64_t epoch = 0;     // corpus epoch after the mutation
    doc::NodeId doc_root = 0;  // the document's global root id
    uint32_t shard_index = 0;
    uint32_t length = 0;    // nodes in the document subtree
  };

  /// Ingests one XML document. Returns only after the mutation is
  /// durable (WAL synced); normally the new generation is also visible
  /// to snapshot() by then. If publishing the generation fails after
  /// the durable apply, the mutation is still acknowledged (a non-OK
  /// status always means "did not happen", so callers may safely
  /// resend on error) and the snapshot lags until the next successful
  /// publish — compare snapshot()->epoch() with the returned epoch to
  /// tell. Safe to call concurrently with queries; concurrent ingest
  /// calls are serialized internally.
  util::Result<IngestResult> AddDocument(std::string_view xml);

  /// Removes the document whose global root id is `doc_root` (as
  /// returned by AddDocument, or ShardedDatabase::DocRootOf on an
  /// answer). The id stays a permanent hole in the global id space.
  util::Result<IngestResult> RemoveDocument(doc::NodeId doc_root);

  /// The current generation. Never null; holding the pointer keeps the
  /// generation (and everything its queries touch) alive.
  std::shared_ptr<const shard::ShardedDatabase> snapshot() const;

  /// Current corpus epoch (Σ per-shard durable sequence numbers).
  uint64_t epoch() const;

  /// Documents across all shards.
  size_t document_count() const;

  /// Checkpoints every shard: postings rebuilt as fresh store
  /// generations, WALs truncated. Queries keep running throughout.
  util::Status Checkpoint();

  /// Crash simulation: every shard drops its unflushed buffers and the
  /// corpus stops accepting mutations. What fsync made durable stays.
  void Abandon();

  struct ShardStatus {
    size_t documents = 0;
    uint64_t last_seq = 0;
    uint64_t wal_bytes = 0;
    uint64_t vlog_bytes = 0;
    uint64_t generation = 0;
    bool poisoned = false;
  };
  std::vector<ShardStatus> ShardStatuses() const;

  const Options& options() const { return options_; }
  const std::shared_ptr<service::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  explicit MutableCorpus(Options options,
                         std::shared_ptr<service::MetricsRegistry> metrics);

  std::string ConfigString() const;

  /// Builds and publishes a generation. `mutated_shard` < num_shards
  /// rebuilds only that shard's engine state reusing the rest from the
  /// previous generation; SIZE_MAX (first open) builds all of them.
  util::Status PublishGeneration(size_t mutated_shard)
      REQUIRES(ingest_mu_);

  /// Builds one reader-side Shard from the durable shard's current
  /// state (tree snapshot + store view limited to the snapshot size).
  util::Result<std::shared_ptr<shard::ShardedDatabase::Shard>> BuildShardView(
      size_t shard_index) REQUIRES(ingest_mu_);

  /// Seals the view of shard `shard_index` in every still-live
  /// generation by preloading its posting cache (removals rewrite
  /// postings in place; see StoredLabelIndex::Preload).
  void PreloadLiveGenerations(size_t shard_index)
      REQUIRES(ingest_mu_);

  const Options options_;
  std::shared_ptr<service::MetricsRegistry> metrics_;

  /// Serializes mutations and guards all durable state.
  mutable util::Mutex ingest_mu_;
  std::vector<std::unique_ptr<DurableShard>> shards_ GUARDED_BY(ingest_mu_);
  doc::NodeId next_global_ GUARDED_BY(ingest_mu_) = 1;  // super-root is 0
  std::vector<std::weak_ptr<const shard::ShardedDatabase>> live_
      GUARDED_BY(ingest_mu_);
  bool abandoned_ GUARDED_BY(ingest_mu_) = false;
  /// Set when a generation publish failed after a durable apply (the
  /// mutation was acked anyway — see AddDocument). The read snapshot is
  /// then stale for the failed shard, so the next publish rebuilds every
  /// shard instead of copy-on-write sharing from the stale generation.
  bool republish_all_ GUARDED_BY(ingest_mu_) = false;

  /// Publication point: ingest writes under both mutexes, readers take
  /// only this one.
  mutable util::Mutex snap_mu_;
  std::shared_ptr<const shard::ShardedDatabase> current_ GUARDED_BY(snap_mu_);

  service::Counter* docs_added_ = nullptr;
  service::Counter* docs_removed_ = nullptr;
  service::Counter* ingest_rejected_ = nullptr;
  service::Counter* generations_published_ = nullptr;
  service::Gauge* epoch_gauge_ = nullptr;
  service::Gauge* documents_gauge_ = nullptr;
  service::LatencyHistogram* ingest_latency_us_ = nullptr;
};

}  // namespace approxql::ingest

#endif  // APPROXQL_INGEST_MUTABLE_CORPUS_H_
