// A mutable sharded corpus: N DurableShards behind a serialized ingest
// path, published to readers as immutable ShardedDatabase generations.
//
// Readers call snapshot() and run queries against the returned
// generation for as long as they like; every accepted mutation builds a
// new generation copy-on-write (only the mutated shards' engine state
// is rebuilt — unmutated shards are shared by pointer) and swaps it in.
// Snapshot isolation is enforced by the StoredLabelIndex node limit on
// the read side: postings appended by later documents are invisible to
// older generations. Removals rewrite postings in place, so before a
// remove every still-live generation's view of the affected shard is
// preloaded into its cache and sealed.
//
// Write path (group commit): concurrent AddDocument calls join a writer
// queue. The writer at the front becomes the batch leader: it takes the
// ingest lock, drains everything queued behind it, applies each add as
// a buffered (un-synced) WAL append, then issues ONE fsync per touched
// shard and ONE generation publish for the whole batch — the LevelDB
// writer-queue pattern. Under a single writer this degenerates to the
// old apply+fsync-per-document path with no added latency; under K
// concurrent writers the fsync cost amortizes across the batch
// (`ingest_group_commit_batch` histogram tracks batch sizes).
//
// Placement: a new document goes to the shard with the fewest documents
// (ties to the lowest index). The rule is recomputable from recovered
// state alone, and answers are placement-independent (the partition-
// equivalence contract), so recovery does not need to remember any
// arrival ordering beyond the global ids themselves. AddDocumentAt
// bypasses id assignment for cluster serving: the router allocates
// cluster-wide root ids and each shard server's corpus accepts them
// verbatim (gaps are fine — other servers own the intervening ranges).
//
// Epoch: the sum of the shards' durable WAL sequence numbers. Every
// acknowledged mutation moves it; it salts the generation's layout
// fingerprint, so result caches keyed by fingerprint never cross
// corpus states. Checkpoints never move the epoch (WAL truncation
// preserves the sequence numbering), so a manifest slice taken at
// epoch E stays valid across any number of checkpoints.
#ifndef APPROXQL_INGEST_MUTABLE_CORPUS_H_
#define APPROXQL_INGEST_MUTABLE_CORPUS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "ingest/durable_shard.h"
#include "service/metrics.h"
#include "shard/sharded_database.h"
#include "storage/kv_factory.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::ingest {

class MutableCorpus {
 public:
  struct Options {
    std::string data_dir;
    size_t num_shards = 1;
    storage::StoreKind store_kind = storage::StoreKind::kMem;
    cost::CostModel model;
    size_t inline_threshold = storage::kDefaultInlineThreshold;

    // Runtime tuning below — deliberately NOT part of corpus.meta, so a
    // directory can be reopened with different knobs.

    /// Group commit: once a writer becomes batch leader it waits this
    /// long for followers to queue up before draining the batch. 0 (the
    /// default) never waits — concurrent writers still batch naturally
    /// because followers accumulate while the leader fsyncs.
    uint32_t group_commit_window_us = 0;
    /// Auto-checkpoint thresholds (0 disables each). When any shard
    /// exceeds one after a publish, a background thread checkpoints it,
    /// bounding crash-recovery replay (records/bytes) and value-log
    /// garbage without blocking the ingest path.
    uint64_t checkpoint_wal_bytes = 0;
    uint64_t checkpoint_wal_records = 0;
    uint64_t checkpoint_vlog_garbage_bytes = 0;
  };

  struct OpenStats {
    size_t recovered_documents = 0;
    size_t replayed_records = 0;
    bool any_tail_truncated = false;
    bool any_store_rebuilt = false;
  };

  /// Opens (or creates) the corpus under `data_dir`, recovering every
  /// shard (in parallel) and publishing the first generation. A corpus
  /// directory remembers its configuration (corpus.meta) and refuses to
  /// open under a different one. `metrics` may be shared with a serving
  /// QueryService; pass nullptr for a private registry.
  static util::Result<std::unique_ptr<MutableCorpus>> Open(
      Options options,
      std::shared_ptr<service::MetricsRegistry> metrics = nullptr,
      OpenStats* stats_out = nullptr);

  ~MutableCorpus();
  MutableCorpus(const MutableCorpus&) = delete;
  MutableCorpus& operator=(const MutableCorpus&) = delete;

  struct IngestResult {
    uint64_t seq = 0;       // durable sequence number on the owning shard
    uint64_t epoch = 0;     // corpus epoch after the mutation
    doc::NodeId doc_root = 0;  // the document's global root id
    uint32_t shard_index = 0;
    uint32_t length = 0;    // nodes in the document subtree
  };

  /// Ingests one XML document. Returns only after the mutation is
  /// durable (WAL synced); normally the new generation is also visible
  /// to snapshot() by then. If publishing the generation fails after
  /// the durable apply, the mutation is still acknowledged (a non-OK
  /// status always means "did not happen", so callers may safely
  /// resend on error) and the snapshot lags until the next successful
  /// publish — compare snapshot()->epoch() with the returned epoch to
  /// tell. Safe to call concurrently with queries; concurrent ingest
  /// calls join one group-commit batch (see file comment).
  util::Result<IngestResult> AddDocument(std::string_view xml);

  /// Ingests one document under a caller-assigned global root id
  /// (cluster routers allocate cluster-wide ids; this corpus is one
  /// cluster shard and must not invent its own). `doc_root` must be
  /// beyond every id this corpus has allocated — ids never regress —
  /// but gaps are fine and become permanent holes. InvalidArgument if
  /// the id is 0 (the super-root) or already allocated.
  util::Result<IngestResult> AddDocumentAt(std::string_view xml,
                                           doc::NodeId doc_root);

  /// Removes the document whose global root id is `doc_root` (as
  /// returned by AddDocument, or ShardedDatabase::DocRootOf on an
  /// answer). The id stays a permanent hole in the global id space.
  util::Result<IngestResult> RemoveDocument(doc::NodeId doc_root);

  /// One accepted mutation as seen by a manifest-sync subscriber.
  /// `span` is the document's placement on its internal shard
  /// (global_start = corpus-global root id, local_start = that shard's
  /// local id); `prev_epoch` -> `epoch` is the corpus epoch step the
  /// mutation performed, so consecutive mutations chain.
  struct Mutation {
    bool is_add = true;
    uint32_t shard_index = 0;
    shard::DocSpan span;
    uint64_t prev_epoch = 0;
    uint64_t epoch = 0;
  };
  /// Fired after every successful generation publish with the chain of
  /// mutations that generation adds over the previous one. Invoked on
  /// the ingest path WITH the ingest lock held: the listener must not
  /// call back into the corpus and must be quick (hand off to a queue).
  /// A failed publish fires nothing — subscribers see an epoch gap on
  /// the next event and fall back to a full slice fetch.
  struct PublishEvent {
    uint64_t epoch = 0;  // the published generation's epoch
    std::vector<Mutation> mutations;
  };
  using PublishListener = std::function<void(const PublishEvent&)>;
  void SetPublishListener(PublishListener listener);

  /// The current generation. Never null; holding the pointer keeps the
  /// generation (and everything its queries touch) alive.
  std::shared_ptr<const shard::ShardedDatabase> snapshot() const;

  /// Current corpus epoch (Σ per-shard durable sequence numbers).
  uint64_t epoch() const;

  /// Documents across all shards.
  size_t document_count() const;

  /// Checkpoints every shard: postings rebuilt as fresh store
  /// generations, WALs truncated. Queries keep running throughout.
  util::Status Checkpoint();

  /// Crash simulation: every shard drops its unflushed buffers and the
  /// corpus stops accepting mutations. What fsync made durable stays.
  void Abandon();

  struct ShardStatus {
    size_t documents = 0;
    uint64_t last_seq = 0;
    uint64_t wal_bytes = 0;
    uint64_t wal_records = 0;
    uint64_t vlog_bytes = 0;
    uint64_t vlog_garbage_bytes = 0;
    uint64_t generation = 0;
    bool poisoned = false;
  };
  std::vector<ShardStatus> ShardStatuses() const;

  const Options& options() const { return options_; }
  const std::shared_ptr<service::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  explicit MutableCorpus(Options options,
                         std::shared_ptr<service::MetricsRegistry> metrics);

  std::string ConfigString() const;

  /// One writer waiting in the group-commit queue. Owned by the
  /// writer's stack frame; the leader fills `result` and flips `done`
  /// under queue_mu_ (the flag is the publication point — `result` is
  /// only read after observing done == true).
  struct PendingAdd {
    std::string_view xml;
    doc::NodeId assigned_root = 0;  // 0 = corpus places and assigns
    bool done = false;
    util::Result<IngestResult> result =
        util::Status::Internal("batch member never processed");
  };

  /// Joins the writer queue; whoever reaches the front leads the batch.
  util::Result<IngestResult> EnqueueAdd(std::string_view xml,
                                        doc::NodeId assigned_root);
  /// Leader path: drains the queue under ingest_mu_, commits the batch,
  /// completes every member.
  void LeadCommit();
  /// Applies + logs every batch member, then one fsync per touched
  /// shard and one publish. Fills each member's result.
  void CommitBatch(const std::vector<PendingAdd*>& batch)
      REQUIRES(ingest_mu_);

  /// Builds and publishes a generation. `mutated[i]` rebuilds shard i's
  /// engine state; others are shared from the previous generation
  /// (subject to republish_all_). nullptr (first open) builds all.
  util::Status PublishShards(const std::vector<bool>* mutated)
      REQUIRES(ingest_mu_);
  util::Status PublishGeneration(size_t mutated_shard)
      REQUIRES(ingest_mu_);

  /// Builds one reader-side Shard from the durable shard's current
  /// state (tree snapshot + store view limited to the snapshot size).
  util::Result<std::shared_ptr<shard::ShardedDatabase::Shard>> BuildShardView(
      size_t shard_index) REQUIRES(ingest_mu_);

  /// Seals the view of shard `shard_index` in every still-live
  /// generation by preloading its posting cache (removals rewrite
  /// postings in place; see StoredLabelIndex::Preload).
  void PreloadLiveGenerations(size_t shard_index)
      REQUIRES(ingest_mu_);

  uint64_t DurableEpoch() const REQUIRES(ingest_mu_);
  /// Fires the publish listener (if any) for a successful publish.
  void NotifyPublish(uint64_t epoch, std::vector<Mutation> mutations)
      REQUIRES(ingest_mu_);

  /// Auto-checkpoint support: wakes the background thread when a shard
  /// crosses a threshold.
  bool ShardOverThreshold(const DurableShard& shard) const;
  void MaybeKickCheckpointer() REQUIRES(ingest_mu_);
  void CheckpointLoop();

  const Options options_;
  std::shared_ptr<service::MetricsRegistry> metrics_;

  /// Group-commit writer queue. Ordering: ingest_mu_ is acquired before
  /// queue_mu_ (the leader drains the queue while holding the ingest
  /// lock); waiters hold only queue_mu_.
  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::deque<PendingAdd*> add_queue_ GUARDED_BY(queue_mu_);

  /// Serializes mutations and guards all durable state.
  mutable util::Mutex ingest_mu_;
  std::vector<std::unique_ptr<DurableShard>> shards_ GUARDED_BY(ingest_mu_);
  doc::NodeId next_global_ GUARDED_BY(ingest_mu_) = 1;  // super-root is 0
  std::vector<std::weak_ptr<const shard::ShardedDatabase>> live_
      GUARDED_BY(ingest_mu_);
  bool abandoned_ GUARDED_BY(ingest_mu_) = false;
  /// Set when a generation publish failed after a durable apply (the
  /// mutation was acked anyway — see AddDocument). The read snapshot is
  /// then stale for the failed shard, so the next publish rebuilds every
  /// shard instead of copy-on-write sharing from the stale generation.
  bool republish_all_ GUARDED_BY(ingest_mu_) = false;
  PublishListener listener_ GUARDED_BY(ingest_mu_);

  /// Publication point: ingest writes under both mutexes, readers take
  /// only this one.
  mutable util::Mutex snap_mu_;
  std::shared_ptr<const shard::ShardedDatabase> current_ GUARDED_BY(snap_mu_);

  /// Background checkpointer handshake. Ordering: ingest_mu_ before
  /// ckpt_mu_ on the kick path; the loop never holds ckpt_mu_ while
  /// taking ingest_mu_.
  util::Mutex ckpt_mu_;
  util::CondVar ckpt_cv_;
  bool ckpt_stop_ GUARDED_BY(ckpt_mu_) = false;
  bool ckpt_kick_ GUARDED_BY(ckpt_mu_) = false;
  std::thread ckpt_thread_;  // started by Open when a threshold is set

  service::Counter* docs_added_ = nullptr;
  service::Counter* docs_removed_ = nullptr;
  service::Counter* ingest_rejected_ = nullptr;
  service::Counter* generations_published_ = nullptr;
  service::Counter* auto_checkpoints_ = nullptr;
  service::Gauge* epoch_gauge_ = nullptr;
  service::Gauge* documents_gauge_ = nullptr;
  service::Gauge* vlog_garbage_gauge_ = nullptr;
  service::LatencyHistogram* ingest_latency_us_ = nullptr;
  service::LatencyHistogram* group_commit_batch_ = nullptr;
};

}  // namespace approxql::ingest

#endif  // APPROXQL_INGEST_MUTABLE_CORPUS_H_
