// One shard's durable mutable state: a write-ahead log fronting the
// shard's posting store, plus checkpointed snapshots of the data tree.
//
// Write path (AddDocument/RemoveDocument): apply the mutation to the
// in-memory builder and the posting store first, then append a WAL
// record carrying the post-apply facts (node placement, value-log size)
// and fsync it. Only a synced record is acknowledged, so after a crash
// the recovered state always contains every acknowledged document and
// never a partially applied one: un-logged store mutations are masked
// by idempotent replay (postings are truncated back to the record's
// node range before re-appending) and by the snapshot node limit on the
// read side.
//
// Checkpoint protocol (LevelDB-style CURRENT generations):
//   1. rebuild kv + value log FRESH as generation G+1 from the current
//      tree (deterministic sorted persist — doubles as vlog compaction),
//      fsync them;
//   2. write shard<i>-<G+1>.snap (config, applied seq, vlog size,
//      serialized tree, doc spans), fsync;
//   3. atomically publish shard<i>.CURRENT -> G+1 (tmp + rename): the
//      single commit point;
//   4. truncate the WAL (preserving the sequence numbering) and delete
//      generation G's files.
// A crash anywhere leaves either G or G+1 fully intact.
//
// Recovery: read CURRENT -> load that generation's snapshot -> truncate
// the value log back to the checkpointed size -> replay WAL records with
// seq > applied_seq, verifying that replay reproduces the recorded
// value-log layout byte-for-byte. A torn WAL tail (or any gap in the
// record sequence) ends replay cleanly at the last valid record. If the
// generation's kv file is unreadable (torn pages past the checkpoint),
// the store is rebuilt from the snapshot tree instead — the snapshot +
// WAL together carry everything.
#ifndef APPROXQL_INGEST_DURABLE_SHARD_H_
#define APPROXQL_INGEST_DURABLE_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "shard/sharded_database.h"
#include "storage/bptree.h"
#include "storage/kv_factory.h"
#include "storage/spilling_store.h"
#include "storage/synchronized_store.h"
#include "storage/vlog/value_log.h"
#include "storage/wal/wal.h"
#include "xml/xml_dom.h"

namespace approxql::ingest {

/// WAL record types (storage::WalRecord::type).
inline constexpr uint32_t kWalAddDocument = 1;
inline constexpr uint32_t kWalRemoveDocument = 2;

class DurableShard {
 public:
  struct Options {
    std::string data_dir;
    size_t shard_index = 0;
    storage::StoreKind store_kind = storage::StoreKind::kMem;
    cost::CostModel model;
    size_t inline_threshold = storage::kDefaultInlineThreshold;
  };

  struct OpenStats {
    size_t recovered_documents = 0;
    size_t replayed_records = 0;
    bool wal_tail_truncated = false;
    bool store_rebuilt = false;  // kv fallback path taken
  };

  /// Opens (or creates) the shard under `data_dir`, running recovery.
  /// Fails on a config mismatch with what the files were written under.
  static util::Result<std::unique_ptr<DurableShard>> Open(
      Options options, OpenStats* stats_out = nullptr);

  ~DurableShard();
  DurableShard(const DurableShard&) = delete;
  DurableShard& operator=(const DurableShard&) = delete;

  struct AddResult {
    uint64_t seq = 0;
    shard::DocSpan span;
  };

  /// Appends one document (assigned `global_start` by the corpus),
  /// durably: applied, logged, synced before returning. InvalidArgument
  /// (malformed XML) leaves the shard untouched; any later failure
  /// poisons the shard (see poisoned()).
  util::Result<AddResult> AddDocument(std::string_view xml,
                                      doc::NodeId global_start);

  /// Group-commit half of AddDocument: applies and appends the WAL
  /// record but does NOT sync — the mutation is not durable (and must
  /// not be acknowledged) until a following SyncWal() succeeds. The
  /// corpus batches several of these into one fsync.
  util::Result<AddResult> AddDocumentBuffered(std::string_view xml,
                                              doc::NodeId global_start);

  /// Fsync barrier covering every buffered append (see
  /// storage::WriteAheadLog::Sync). Failure poisons the shard.
  util::Status SyncWal();

  /// Removes the document whose global root is `global_start`. The
  /// shard's tree is rebuilt without it (remaining documents keep their
  /// global ids — holes are permanent) and every posting is rewritten.
  /// Callers MUST preload any live snapshot of this shard first: the
  /// rewrite renumbers local node ids in place.
  util::Result<uint64_t> RemoveDocument(doc::NodeId global_start);

  /// A finalized copy of the current tree (the corpus turns this into
  /// the next engine::Database generation).
  util::Result<doc::DataTree> SnapshotTree() const;

  /// Rebuilds the store as a fresh generation and truncates the WAL.
  util::Status Checkpoint();

  /// Crash simulation: drops every buffer without flushing and renders
  /// the shard unusable. What fsync made durable stays; nothing else.
  void Abandon();

  /// Set when a post-parse apply step failed: the persistent state may
  /// be mid-mutation, so further ingest is rejected (queries continue
  /// on their snapshots; recovery from the WAL heals the store).
  bool poisoned() const { return poisoned_; }

  /// Durable sequence number of the last acknowledged mutation — this
  /// shard's epoch contribution.
  uint64_t last_seq() const { return wal_->last_seq(); }

  const std::vector<shard::DocSpan>& spans() const { return spans_; }
  size_t node_count() const { return builder_.node_count(); }
  const std::shared_ptr<storage::SynchronizedKvStore>& store() const {
    return store_;
  }
  uint64_t wal_size_bytes() const { return wal_->size_bytes(); }
  /// Records appended since the last checkpoint (what replay would cost
  /// after a crash right now) — the auto-checkpoint trigger's unit.
  uint64_t wal_records() const { return wal_->last_seq() - wal_->base_seq(); }
  uint64_t vlog_size() const;
  storage::SpillingStore::Stats spill_stats() const;
  uint64_t generation() const { return gen_; }

 private:
  /// The concrete store stack of one generation. `store` is the
  /// swappable unit; the raw pointers alias into it (disk mode only).
  struct InnerStore {
    std::unique_ptr<storage::KvStore> store;
    storage::DiskKvStore* kv = nullptr;
    storage::ValueLog* vlog = nullptr;
    storage::SpillingStore* spilling = nullptr;
  };

  struct SnapshotFile {
    std::string config;
    uint64_t applied_seq = 0;
    uint64_t vlog_size = 0;
    doc::DataTree tree;
    std::vector<shard::DocSpan> spans;
  };

  explicit DurableShard(Options options);

  std::string FilePath(std::string_view suffix) const;
  std::string GenPath(uint64_t gen, std::string_view ext) const;
  std::string ConfigString() const;

  util::Result<InnerStore> OpenInner(uint64_t gen, bool start_fresh);
  util::Status PersistAllPostings(storage::KvStore* store) const;

  /// Apply steps shared by the live path and WAL replay. Both mutate
  /// builder_/spans_ and the store; neither touches the WAL.
  util::Status ApplyParsedAdd(const xml::XmlElement& root,
                              doc::NodeId global_start, shard::DocSpan* out);
  util::Status ApplyRemove(doc::NodeId global_start);

  util::Status WriteSnapshotFile(uint64_t gen, uint64_t applied_seq,
                                 uint64_t vlog_size_value) const;
  static util::Result<SnapshotFile> ReadSnapshotFile(
      const std::string& path, const cost::CostModel& model);
  util::Status WriteCurrent(uint64_t gen) const;
  util::Result<uint64_t> ReadCurrent() const;  // NotFound if absent

  /// One recovery attempt; `force_rebuild` discards the generation's kv
  /// and value log and rebuilds them from the snapshot tree.
  util::Status Recover(bool have_snapshot, const SnapshotFile& snap,
                       const std::vector<storage::WalRecord>& records,
                       bool force_rebuild, OpenStats* stats_out);

  /// Corruption if any stored posting references a node id beyond the
  /// recovered tree — entries a bounded page cache may have flushed from
  /// an un-logged (never-acked) apply, for labels replay never touched.
  util::Status VerifyNoStalePostings() const;

  void DeleteStaleGenerations() const;

  const Options options_;
  const std::string stem_;  // "shard<i>"

  doc::DataTreeBuilder builder_;
  std::vector<shard::DocSpan> spans_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::shared_ptr<storage::SynchronizedKvStore> store_;
  // Aliases into the SynchronizedKvStore's current inner store; null in
  // mem mode. Only touched from the (corpus-serialized) ingest path.
  storage::DiskKvStore* kv_ = nullptr;
  storage::ValueLog* vlog_ = nullptr;
  storage::SpillingStore* spilling_ = nullptr;
  uint64_t gen_ = 0;
  /// True only once Open finished successfully. The destructor must not
  /// checkpoint a partially recovered shard: the snapshot would be
  /// stamped with the WAL's last_seq and the WAL truncated, silently
  /// dropping acked records that were never applied.
  bool recovered_ = false;
  bool poisoned_ = false;
  bool abandoned_ = false;
};

}  // namespace approxql::ingest

#endif  // APPROXQL_INGEST_DURABLE_SHARD_H_
