#include "ingest/mutable_corpus.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "engine/database.h"
#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/varint.h"

namespace approxql::ingest {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kPostingPrefix = "ix#";
constexpr uint32_t kMetaMagic = 0x54454d41;  // "AMET"

Status WriteMetaFile(const std::string& path, std::string_view config) {
  std::string out;
  util::PutVarint32(&out, kMetaMagic);
  util::PutVarint64(&out, config.size());
  out.append(config);
  storage::PutFixed32(&out, util::Crc32c(out));

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp);
  if (std::fwrite(out.data(), 1, out.size(), file) != out.size() ||
      std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
    std::fclose(file);
    return Status::IoError(tmp + ": write failed");
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return storage::SyncParentDir(path);
}

Result<std::string> ReadMetaFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound(path + ": cannot open");
  std::string data;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError(path + ": read failed");
  if (data.size() < 4) return Status::Corruption(path + ": truncated");
  const std::string_view body(data.data(), data.size() - 4);
  if (storage::GetFixed32(data.data() + body.size()) != util::Crc32c(body)) {
    return Status::Corruption(path + ": CRC mismatch");
  }
  util::VarintReader reader(body);
  uint32_t magic = 0;
  uint64_t config_len = 0;
  std::string_view config;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  RETURN_IF_ERROR(reader.GetVarint64(&config_len));
  RETURN_IF_ERROR(reader.GetBytes(config_len, &config));
  if (magic != kMetaMagic || !reader.empty()) {
    return Status::Corruption(path + ": malformed");
  }
  return std::string(config);
}

}  // namespace

MutableCorpus::MutableCorpus(Options options,
                             std::shared_ptr<service::MetricsRegistry> metrics)
    : options_(std::move(options)), metrics_(std::move(metrics)) {
  docs_added_ = metrics_->RegisterCounter("ingest_docs_added");
  docs_removed_ = metrics_->RegisterCounter("ingest_docs_removed");
  ingest_rejected_ = metrics_->RegisterCounter("ingest_rejected");
  generations_published_ =
      metrics_->RegisterCounter("ingest_generations_published");
  auto_checkpoints_ = metrics_->RegisterCounter("ingest_auto_checkpoints");
  epoch_gauge_ = metrics_->RegisterGauge("ingest_epoch");
  documents_gauge_ = metrics_->RegisterGauge("ingest_documents");
  vlog_garbage_gauge_ = metrics_->RegisterGauge("vlog_garbage_bytes");
  ingest_latency_us_ = metrics_->RegisterHistogram("ingest_latency_us");
  group_commit_batch_ =
      metrics_->RegisterHistogram("ingest_group_commit_batch");
}

MutableCorpus::~MutableCorpus() {
  if (ckpt_thread_.joinable()) {
    {
      util::MutexLock lock(&ckpt_mu_);
      ckpt_stop_ = true;
    }
    ckpt_cv_.NotifyAll();
    ckpt_thread_.join();
  }
}

std::string MutableCorpus::ConfigString() const {
  return "shards=" + std::to_string(options_.num_shards) +
         ";store=" + storage::StoreKindName(options_.store_kind) +
         ";threshold=" + std::to_string(options_.inline_threshold) +
         ";model=" + options_.model.ToConfigString();
}

Result<std::unique_ptr<MutableCorpus>> MutableCorpus::Open(
    Options options, std::shared_ptr<service::MetricsRegistry> metrics,
    OpenStats* stats_out) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + options.data_dir + ": " +
                           ec.message());
  }
  if (metrics == nullptr) {
    metrics = std::make_shared<service::MetricsRegistry>();
  }
  std::unique_ptr<MutableCorpus> corpus(
      new MutableCorpus(std::move(options), std::move(metrics)));

  const std::string meta_path = corpus->options_.data_dir + "/corpus.meta";
  auto stored = ReadMetaFile(meta_path);
  if (stored.ok()) {
    if (*stored != corpus->ConfigString()) {
      return Status::Corruption("corpus.meta mismatch: directory was created "
                                "with \"" +
                                *stored + "\", reopened with \"" +
                                corpus->ConfigString() + "\"");
    }
  } else if (stored.status().IsNotFound()) {
    RETURN_IF_ERROR(WriteMetaFile(meta_path, corpus->ConfigString()));
  } else {
    return stored.status();
  }

  // Recover all shards in parallel — WAL replay re-parses every logged
  // document, so recovery of a large corpus is CPU-bound.
  const size_t n = corpus->options_.num_shards;
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::unique_ptr<DurableShard>> opened(n);
  std::vector<DurableShard::OpenStats> shard_stats(n);
  {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        DurableShard::Options shard_options;
        shard_options.data_dir = corpus->options_.data_dir;
        shard_options.shard_index = i;
        shard_options.store_kind = corpus->options_.store_kind;
        shard_options.model = corpus->options_.model;
        shard_options.inline_threshold = corpus->options_.inline_threshold;
        auto result =
            DurableShard::Open(std::move(shard_options), &shard_stats[i]);
        if (result.ok()) {
          opened[i] = std::move(result).value();
        } else {
          statuses[i] = result.status();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (size_t i = 0; i < n; ++i) RETURN_IF_ERROR(statuses[i]);

  {
    util::MutexLock lock(&corpus->ingest_mu_);
    corpus->shards_ = std::move(opened);
    for (const auto& shard : corpus->shards_) {
      for (const shard::DocSpan& span : shard->spans()) {
        corpus->next_global_ = std::max(
            corpus->next_global_, span.global_start + span.length);
      }
    }
    if (stats_out != nullptr) {
      *stats_out = OpenStats();
      for (const DurableShard::OpenStats& s : shard_stats) {
        stats_out->recovered_documents += s.recovered_documents;
        stats_out->replayed_records += s.replayed_records;
        stats_out->any_tail_truncated |= s.wal_tail_truncated;
        stats_out->any_store_rebuilt |= s.store_rebuilt;
      }
    }
    RETURN_IF_ERROR(corpus->PublishGeneration(SIZE_MAX));
  }
  if (corpus->options_.checkpoint_wal_bytes > 0 ||
      corpus->options_.checkpoint_wal_records > 0 ||
      corpus->options_.checkpoint_vlog_garbage_bytes > 0) {
    corpus->ckpt_thread_ =
        std::thread([raw = corpus.get()] { raw->CheckpointLoop(); });
  }
  return corpus;
}

Result<std::shared_ptr<shard::ShardedDatabase::Shard>>
MutableCorpus::BuildShardView(size_t shard_index) {
  DurableShard& durable = *shards_[shard_index];
  ASSIGN_OR_RETURN(doc::DataTree tree, durable.SnapshotTree());
  const doc::NodeId node_limit = static_cast<doc::NodeId>(tree.size());
  ASSIGN_OR_RETURN(engine::Database db, engine::Database::FromDataTree(
                                            std::move(tree), options_.model));
  auto shard =
      std::make_shared<shard::ShardedDatabase::Shard>(std::move(db));
  shard->store = durable.store();
  // The node limit hides postings appended by documents ingested after
  // this snapshot — the store is shared with future generations.
  shard->postings = std::make_unique<index::StoredLabelIndex>(
      shard->store.get(), std::string(kPostingPrefix), node_limit);
  shard->spans = durable.spans();
  return shard;
}

Status MutableCorpus::PublishGeneration(size_t mutated_shard) {
  if (mutated_shard == SIZE_MAX) return PublishShards(nullptr);
  std::vector<bool> mutated(shards_.size(), false);
  mutated[mutated_shard] = true;
  return PublishShards(&mutated);
}

Status MutableCorpus::PublishShards(const std::vector<bool>* mutated) {
  // A previously failed publish left the current generation stale for
  // its shard; sharing unmutated shards from it would bake the staleness
  // into every later generation.
  const bool all = mutated == nullptr || republish_all_;
  std::shared_ptr<const shard::ShardedDatabase> previous;
  {
    util::MutexLock lock(&snap_mu_);
    previous = current_;
  }
  std::vector<std::shared_ptr<shard::ShardedDatabase::Shard>> shards;
  shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // A poisoned shard's builder may hold applies that were never made
    // durable; keep serving its last good view rather than publishing
    // phantom documents.
    const bool rebuild = (all || (*mutated)[i]) && !shards_[i]->poisoned();
    if (previous != nullptr && !rebuild) {
      shards.push_back(previous->shards_[i]);
    } else {
      ASSIGN_OR_RETURN(std::shared_ptr<shard::ShardedDatabase::Shard> shard,
                       BuildShardView(i));
      shards.push_back(std::move(shard));
    }
  }
  const uint64_t epoch = DurableEpoch();
  ASSIGN_OR_RETURN(shard::ShardedDatabase assembled,
                   shard::ShardedDatabase::AssembleFromShards(
                       std::move(shards), options_.model, metrics_, epoch));
  auto generation = std::make_shared<const shard::ShardedDatabase>(
      std::move(assembled));

  // Compact the live-generation list while registering the new one.
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [](const auto& weak) { return weak.expired(); }),
              live_.end());
  live_.push_back(generation);
  {
    util::MutexLock lock(&snap_mu_);
    current_ = std::move(generation);
  }
  republish_all_ = false;
  generations_published_->Increment();
  epoch_gauge_->Set(static_cast<int64_t>(epoch));
  size_t documents = 0;
  uint64_t garbage = 0;
  for (const auto& shard : shards_) {
    documents += shard->spans().size();
    garbage += shard->spill_stats().garbage_bytes;
  }
  documents_gauge_->Set(static_cast<int64_t>(documents));
  vlog_garbage_gauge_->Set(static_cast<int64_t>(garbage));
  return Status::OK();
}

uint64_t MutableCorpus::DurableEpoch() const {
  uint64_t epoch = 0;
  for (const auto& shard : shards_) epoch += shard->last_seq();
  return epoch;
}

void MutableCorpus::NotifyPublish(uint64_t epoch,
                                  std::vector<Mutation> mutations) {
  if (listener_ == nullptr || mutations.empty()) return;
  PublishEvent event;
  event.epoch = epoch;
  event.mutations = std::move(mutations);
  listener_(event);
}

void MutableCorpus::SetPublishListener(PublishListener listener) {
  util::MutexLock lock(&ingest_mu_);
  listener_ = std::move(listener);
}

void MutableCorpus::PreloadLiveGenerations(size_t shard_index) {
  std::set<shard::ShardedDatabase::Shard*> sealed;
  for (const auto& weak : live_) {
    std::shared_ptr<const shard::ShardedDatabase> generation = weak.lock();
    if (generation == nullptr) continue;
    shard::ShardedDatabase::Shard* shard =
        generation->shards_[shard_index].get();
    if (!sealed.insert(shard).second) continue;  // shared across generations
    shard->postings->Preload(shard->db.label_index());
  }
}

Result<MutableCorpus::IngestResult> MutableCorpus::AddDocument(
    std::string_view xml) {
  return EnqueueAdd(xml, /*assigned_root=*/0);
}

Result<MutableCorpus::IngestResult> MutableCorpus::AddDocumentAt(
    std::string_view xml, doc::NodeId doc_root) {
  if (doc_root == 0) {
    return Status::InvalidArgument("doc root 0 is the super-root");
  }
  return EnqueueAdd(xml, doc_root);
}

Result<MutableCorpus::IngestResult> MutableCorpus::EnqueueAdd(
    std::string_view xml, doc::NodeId assigned_root) {
  util::WallTimer timer;
  PendingAdd pending;
  pending.xml = xml;
  pending.assigned_root = assigned_root;
  {
    util::MutexLock lock(&queue_mu_);
    add_queue_.push_back(&pending);
    while (!pending.done && add_queue_.front() != &pending) {
      queue_cv_.Wait(&queue_mu_);
    }
    if (pending.done) {
      // A leader ahead of us committed our add as part of its batch.
      ingest_latency_us_->Record(
          static_cast<uint64_t>(timer.ElapsedMicros()));
      return std::move(pending.result);
    }
  }
  // We reached the front undone: lead a batch of everything queued.
  LeadCommit();
  ingest_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  return std::move(pending.result);
}

void MutableCorpus::LeadCommit() {
  util::MutexLock ingest(&ingest_mu_);
  if (options_.group_commit_window_us > 0) {
    // Bounded wait for more writers to queue up behind the leader. Even
    // at 0, followers that arrive while a previous leader fsyncs are
    // batched — the window only adds latency to buy bigger batches.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_commit_window_us));
  }
  std::vector<PendingAdd*> batch;
  {
    util::MutexLock lock(&queue_mu_);
    batch.assign(add_queue_.begin(), add_queue_.end());
  }
  CommitBatch(batch);
  {
    util::MutexLock lock(&queue_mu_);
    // The batch is exactly the queue's prefix: writers only append, and
    // nobody else removes.
    add_queue_.erase(add_queue_.begin(), add_queue_.begin() + batch.size());
    for (PendingAdd* member : batch) member->done = true;
    queue_cv_.NotifyAll();
  }
}

void MutableCorpus::CommitBatch(const std::vector<PendingAdd*>& batch) {
  group_commit_batch_->Record(static_cast<uint64_t>(batch.size()));
  if (abandoned_) {
    for (PendingAdd* member : batch) {
      member->result = Status::Unavailable("corpus abandoned; ingest rejected");
    }
    return;
  }

  struct Applied {
    PendingAdd* member = nullptr;
    size_t shard = 0;
    DurableShard::AddResult add;
    uint64_t epoch_after = 0;
  };
  std::vector<Applied> applied;
  applied.reserve(batch.size());
  std::vector<Mutation> mutations;
  mutations.reserve(batch.size());
  std::vector<bool> touched(shards_.size(), false);
  uint64_t epoch = DurableEpoch();

  for (PendingAdd* member : batch) {
    // Fewest documents, ties to the lowest index: recomputable from
    // recovered state, so placement survives crashes without a log of
    // its own.
    size_t target = 0;
    for (size_t i = 1; i < shards_.size(); ++i) {
      if (shards_[i]->spans().size() < shards_[target]->spans().size()) {
        target = i;
      }
    }
    doc::NodeId global_start = next_global_;
    if (member->assigned_root != 0) {
      if (member->assigned_root < next_global_) {
        ingest_rejected_->Increment();
        member->result = Status::InvalidArgument(
            "assigned doc root " + std::to_string(member->assigned_root) +
            " is not beyond this corpus's allocated ids (next unassigned: " +
            std::to_string(next_global_) + ")");
        continue;
      }
      global_start = member->assigned_root;
    }
    auto added = shards_[target]->AddDocumentBuffered(member->xml,
                                                      global_start);
    if (!added.ok()) {
      ingest_rejected_->Increment();
      member->result = added.status();
      continue;
    }
    next_global_ = global_start + added->span.length;
    touched[target] = true;
    Mutation mutation;
    mutation.is_add = true;
    mutation.shard_index = static_cast<uint32_t>(target);
    mutation.span = added->span;
    mutation.prev_epoch = epoch;
    epoch += 1;  // the WAL append advanced the shard's sequence by one
    mutation.epoch = epoch;
    mutations.push_back(mutation);
    applied.push_back({member, target, *added, epoch});
  }

  // The group-commit point: one fsync per touched shard covers every
  // buffered append above.
  std::vector<Status> synced(shards_.size(), Status::OK());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (touched[i]) synced[i] = shards_[i]->SyncWal();
  }
  for (const Applied& entry : applied) {
    if (!synced[entry.shard].ok()) {
      // Not durable: the shard is now poisoned and its buffered appends
      // must not be acknowledged (or published — see PublishShards).
      ingest_rejected_->Increment();
      entry.member->result = synced[entry.shard];
      continue;
    }
    IngestResult result;
    result.seq = entry.add.seq;
    result.epoch = entry.epoch_after;
    result.doc_root = entry.add.span.global_start;
    result.shard_index = static_cast<uint32_t>(entry.shard);
    result.length = entry.add.span.length;
    entry.member->result = std::move(result);
    docs_added_->Increment();
  }
  // Mutations on a sync-failed shard never became durable; drop them
  // from the publish event (subscribers see the epoch gap and fetch).
  mutations.erase(std::remove_if(mutations.begin(), mutations.end(),
                                 [&](const Mutation& m) {
                                   return !synced[m.shard_index].ok();
                                 }),
                  mutations.end());
  if (mutations.empty()) return;  // nothing durable; snapshot unchanged

  Status published = PublishShards(&touched);
  if (!published.ok()) {
    // The documents are already durable (WAL appended + fsynced). A
    // non-OK ack would break the WireIngestAck contract — the client
    // would resend and duplicate the document — so ack anyway; the
    // snapshot stays stale until the next publish succeeds (and
    // rebuilds every shard).
    republish_all_ = true;
    APPROXQL_LOG(Error) << "generation publish failed after durable add: "
                        << published.message();
  } else {
    NotifyPublish(DurableEpoch(), std::move(mutations));
  }
  MaybeKickCheckpointer();
}

Result<MutableCorpus::IngestResult> MutableCorpus::RemoveDocument(
    doc::NodeId doc_root) {
  util::WallTimer timer;
  util::MutexLock lock(&ingest_mu_);
  if (abandoned_) {
    return Status::Unavailable("corpus abandoned; ingest rejected");
  }
  size_t target = shards_.size();
  shard::DocSpan removed_span;
  for (size_t i = 0; i < shards_.size() && target == shards_.size(); ++i) {
    for (const shard::DocSpan& span : shards_[i]->spans()) {
      if (span.global_start == doc_root) {
        target = i;
        removed_span = span;  // pre-removal placement, for the event
        break;
      }
    }
  }
  if (target == shards_.size()) {
    return Status::NotFound("no document with global root " +
                            std::to_string(doc_root));
  }
  // The remove rewrites the shard's postings in place; live snapshots
  // must stop reading the store for this shard first.
  PreloadLiveGenerations(target);
  const uint64_t epoch_before = DurableEpoch();
  auto removed = shards_[target]->RemoveDocument(doc_root);
  if (!removed.ok()) {
    ingest_rejected_->Increment();
    return removed.status();
  }
  Status published = PublishGeneration(target);
  if (!published.ok()) {
    // As in AddDocument: the remove is durable, so it must be acked.
    republish_all_ = true;
    APPROXQL_LOG(Error) << "generation publish failed after durable remove: "
                        << published.message();
  }
  docs_removed_->Increment();
  ingest_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));

  IngestResult result;
  result.seq = *removed;
  // The durable epoch, not the gauge: on a failed publish the gauge
  // still holds the pre-mutation value.
  result.epoch = DurableEpoch();
  result.doc_root = doc_root;
  result.shard_index = static_cast<uint32_t>(target);
  result.length = removed_span.length;
  if (published.ok()) {
    Mutation mutation;
    mutation.is_add = false;
    mutation.shard_index = static_cast<uint32_t>(target);
    mutation.span = removed_span;
    mutation.prev_epoch = epoch_before;
    mutation.epoch = result.epoch;
    NotifyPublish(result.epoch, {mutation});
  }
  MaybeKickCheckpointer();
  return result;
}

std::shared_ptr<const shard::ShardedDatabase> MutableCorpus::snapshot() const {
  util::MutexLock lock(&snap_mu_);
  return current_;
}

uint64_t MutableCorpus::epoch() const { return snapshot()->epoch(); }

size_t MutableCorpus::document_count() const {
  util::MutexLock lock(&ingest_mu_);
  size_t documents = 0;
  for (const auto& shard : shards_) documents += shard->spans().size();
  return documents;
}

Status MutableCorpus::Checkpoint() {
  util::MutexLock lock(&ingest_mu_);
  if (abandoned_) {
    return Status::Unavailable("corpus abandoned; checkpoint rejected");
  }
  for (const auto& shard : shards_) {
    RETURN_IF_ERROR(shard->Checkpoint());
  }
  return Status::OK();
}

void MutableCorpus::Abandon() {
  util::MutexLock lock(&ingest_mu_);
  abandoned_ = true;
  for (const auto& shard : shards_) shard->Abandon();
}

std::vector<MutableCorpus::ShardStatus> MutableCorpus::ShardStatuses() const {
  util::MutexLock lock(&ingest_mu_);
  std::vector<ShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStatus status;
    status.documents = shard->spans().size();
    status.last_seq = shard->last_seq();
    status.wal_bytes = shard->wal_size_bytes();
    status.wal_records = shard->wal_records();
    status.vlog_bytes = shard->vlog_size();
    status.vlog_garbage_bytes = shard->spill_stats().garbage_bytes;
    status.generation = shard->generation();
    status.poisoned = shard->poisoned();
    statuses.push_back(status);
  }
  return statuses;
}

bool MutableCorpus::ShardOverThreshold(const DurableShard& shard) const {
  if (shard.poisoned()) return false;
  if (options_.checkpoint_wal_bytes > 0 &&
      shard.wal_size_bytes() > options_.checkpoint_wal_bytes) {
    return true;
  }
  if (options_.checkpoint_wal_records > 0 &&
      shard.wal_records() > options_.checkpoint_wal_records) {
    return true;
  }
  if (options_.checkpoint_vlog_garbage_bytes > 0 &&
      shard.spill_stats().garbage_bytes >
          options_.checkpoint_vlog_garbage_bytes) {
    return true;
  }
  return false;
}

void MutableCorpus::MaybeKickCheckpointer() {
  if (!ckpt_thread_.joinable()) return;  // no thresholds configured
  bool over = false;
  for (const auto& shard : shards_) {
    if (ShardOverThreshold(*shard)) {
      over = true;
      break;
    }
  }
  if (!over) return;
  {
    util::MutexLock lock(&ckpt_mu_);
    ckpt_kick_ = true;
  }
  ckpt_cv_.NotifyOne();
}

void MutableCorpus::CheckpointLoop() {
  for (;;) {
    {
      util::MutexLock lock(&ckpt_mu_);
      while (!ckpt_stop_ && !ckpt_kick_) ckpt_cv_.Wait(&ckpt_mu_);
      if (ckpt_stop_) return;
      ckpt_kick_ = false;
    }
    // Re-check thresholds under the ingest lock: the kick raced ongoing
    // ingest, and a shard may have been checkpointed meanwhile.
    util::MutexLock ingest(&ingest_mu_);
    if (abandoned_) continue;
    for (const auto& shard : shards_) {
      if (!ShardOverThreshold(*shard)) continue;
      Status checkpointed = shard->Checkpoint();
      if (checkpointed.ok()) {
        auto_checkpoints_->Increment();
      } else {
        APPROXQL_LOG(Warning)
            << "auto-checkpoint failed: " << checkpointed.message();
      }
    }
  }
}

}  // namespace approxql::ingest
