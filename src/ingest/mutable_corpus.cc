#include "ingest/mutable_corpus.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "engine/database.h"
#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/varint.h"

namespace approxql::ingest {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kPostingPrefix = "ix#";
constexpr uint32_t kMetaMagic = 0x54454d41;  // "AMET"

Status WriteMetaFile(const std::string& path, std::string_view config) {
  std::string out;
  util::PutVarint32(&out, kMetaMagic);
  util::PutVarint64(&out, config.size());
  out.append(config);
  storage::PutFixed32(&out, util::Crc32c(out));

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp);
  if (std::fwrite(out.data(), 1, out.size(), file) != out.size() ||
      std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
    std::fclose(file);
    return Status::IoError(tmp + ": write failed");
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return storage::SyncParentDir(path);
}

Result<std::string> ReadMetaFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound(path + ": cannot open");
  std::string data;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError(path + ": read failed");
  if (data.size() < 4) return Status::Corruption(path + ": truncated");
  const std::string_view body(data.data(), data.size() - 4);
  if (storage::GetFixed32(data.data() + body.size()) != util::Crc32c(body)) {
    return Status::Corruption(path + ": CRC mismatch");
  }
  util::VarintReader reader(body);
  uint32_t magic = 0;
  uint64_t config_len = 0;
  std::string_view config;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  RETURN_IF_ERROR(reader.GetVarint64(&config_len));
  RETURN_IF_ERROR(reader.GetBytes(config_len, &config));
  if (magic != kMetaMagic || !reader.empty()) {
    return Status::Corruption(path + ": malformed");
  }
  return std::string(config);
}

}  // namespace

MutableCorpus::MutableCorpus(Options options,
                             std::shared_ptr<service::MetricsRegistry> metrics)
    : options_(std::move(options)), metrics_(std::move(metrics)) {
  docs_added_ = metrics_->RegisterCounter("ingest_docs_added");
  docs_removed_ = metrics_->RegisterCounter("ingest_docs_removed");
  ingest_rejected_ = metrics_->RegisterCounter("ingest_rejected");
  generations_published_ =
      metrics_->RegisterCounter("ingest_generations_published");
  epoch_gauge_ = metrics_->RegisterGauge("ingest_epoch");
  documents_gauge_ = metrics_->RegisterGauge("ingest_documents");
  ingest_latency_us_ = metrics_->RegisterHistogram("ingest_latency_us");
}

std::string MutableCorpus::ConfigString() const {
  return "shards=" + std::to_string(options_.num_shards) +
         ";store=" + storage::StoreKindName(options_.store_kind) +
         ";threshold=" + std::to_string(options_.inline_threshold) +
         ";model=" + options_.model.ToConfigString();
}

Result<std::unique_ptr<MutableCorpus>> MutableCorpus::Open(
    Options options, std::shared_ptr<service::MetricsRegistry> metrics,
    OpenStats* stats_out) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + options.data_dir + ": " +
                           ec.message());
  }
  if (metrics == nullptr) {
    metrics = std::make_shared<service::MetricsRegistry>();
  }
  std::unique_ptr<MutableCorpus> corpus(
      new MutableCorpus(std::move(options), std::move(metrics)));

  const std::string meta_path = corpus->options_.data_dir + "/corpus.meta";
  auto stored = ReadMetaFile(meta_path);
  if (stored.ok()) {
    if (*stored != corpus->ConfigString()) {
      return Status::Corruption("corpus.meta mismatch: directory was created "
                                "with \"" +
                                *stored + "\", reopened with \"" +
                                corpus->ConfigString() + "\"");
    }
  } else if (stored.status().IsNotFound()) {
    RETURN_IF_ERROR(WriteMetaFile(meta_path, corpus->ConfigString()));
  } else {
    return stored.status();
  }

  // Recover all shards in parallel — WAL replay re-parses every logged
  // document, so recovery of a large corpus is CPU-bound.
  const size_t n = corpus->options_.num_shards;
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::unique_ptr<DurableShard>> opened(n);
  std::vector<DurableShard::OpenStats> shard_stats(n);
  {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        DurableShard::Options shard_options;
        shard_options.data_dir = corpus->options_.data_dir;
        shard_options.shard_index = i;
        shard_options.store_kind = corpus->options_.store_kind;
        shard_options.model = corpus->options_.model;
        shard_options.inline_threshold = corpus->options_.inline_threshold;
        auto result =
            DurableShard::Open(std::move(shard_options), &shard_stats[i]);
        if (result.ok()) {
          opened[i] = std::move(result).value();
        } else {
          statuses[i] = result.status();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (size_t i = 0; i < n; ++i) RETURN_IF_ERROR(statuses[i]);

  util::MutexLock lock(&corpus->ingest_mu_);
  corpus->shards_ = std::move(opened);
  for (const auto& shard : corpus->shards_) {
    for (const shard::DocSpan& span : shard->spans()) {
      corpus->next_global_ = std::max(
          corpus->next_global_, span.global_start + span.length);
    }
  }
  if (stats_out != nullptr) {
    *stats_out = OpenStats();
    for (const DurableShard::OpenStats& s : shard_stats) {
      stats_out->recovered_documents += s.recovered_documents;
      stats_out->replayed_records += s.replayed_records;
      stats_out->any_tail_truncated |= s.wal_tail_truncated;
      stats_out->any_store_rebuilt |= s.store_rebuilt;
    }
  }
  RETURN_IF_ERROR(corpus->PublishGeneration(SIZE_MAX));
  return corpus;
}

Result<std::shared_ptr<shard::ShardedDatabase::Shard>>
MutableCorpus::BuildShardView(size_t shard_index) {
  DurableShard& durable = *shards_[shard_index];
  ASSIGN_OR_RETURN(doc::DataTree tree, durable.SnapshotTree());
  const doc::NodeId node_limit = static_cast<doc::NodeId>(tree.size());
  ASSIGN_OR_RETURN(engine::Database db, engine::Database::FromDataTree(
                                            std::move(tree), options_.model));
  auto shard =
      std::make_shared<shard::ShardedDatabase::Shard>(std::move(db));
  shard->store = durable.store();
  // The node limit hides postings appended by documents ingested after
  // this snapshot — the store is shared with future generations.
  shard->postings = std::make_unique<index::StoredLabelIndex>(
      shard->store.get(), std::string(kPostingPrefix), node_limit);
  shard->spans = durable.spans();
  return shard;
}

Status MutableCorpus::PublishGeneration(size_t mutated_shard) {
  // A previously failed publish left the current generation stale for
  // its shard; sharing unmutated shards from it would bake the staleness
  // into every later generation.
  if (republish_all_) mutated_shard = SIZE_MAX;
  std::shared_ptr<const shard::ShardedDatabase> previous;
  {
    util::MutexLock lock(&snap_mu_);
    previous = current_;
  }
  std::vector<std::shared_ptr<shard::ShardedDatabase::Shard>> shards;
  shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (previous != nullptr && mutated_shard != SIZE_MAX &&
        i != mutated_shard) {
      shards.push_back(previous->shards_[i]);
    } else {
      ASSIGN_OR_RETURN(std::shared_ptr<shard::ShardedDatabase::Shard> shard,
                       BuildShardView(i));
      shards.push_back(std::move(shard));
    }
  }
  uint64_t epoch = 0;
  for (const auto& shard : shards_) epoch += shard->last_seq();
  ASSIGN_OR_RETURN(shard::ShardedDatabase assembled,
                   shard::ShardedDatabase::AssembleFromShards(
                       std::move(shards), options_.model, metrics_, epoch));
  auto generation = std::make_shared<const shard::ShardedDatabase>(
      std::move(assembled));

  // Compact the live-generation list while registering the new one.
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [](const auto& weak) { return weak.expired(); }),
              live_.end());
  live_.push_back(generation);
  {
    util::MutexLock lock(&snap_mu_);
    current_ = std::move(generation);
  }
  republish_all_ = false;
  generations_published_->Increment();
  epoch_gauge_->Set(static_cast<int64_t>(epoch));
  size_t documents = 0;
  for (const auto& shard : shards_) documents += shard->spans().size();
  documents_gauge_->Set(static_cast<int64_t>(documents));
  return Status::OK();
}

void MutableCorpus::PreloadLiveGenerations(size_t shard_index) {
  std::set<shard::ShardedDatabase::Shard*> sealed;
  for (const auto& weak : live_) {
    std::shared_ptr<const shard::ShardedDatabase> generation = weak.lock();
    if (generation == nullptr) continue;
    shard::ShardedDatabase::Shard* shard =
        generation->shards_[shard_index].get();
    if (!sealed.insert(shard).second) continue;  // shared across generations
    shard->postings->Preload(shard->db.label_index());
  }
}

Result<MutableCorpus::IngestResult> MutableCorpus::AddDocument(
    std::string_view xml) {
  util::WallTimer timer;
  util::MutexLock lock(&ingest_mu_);
  if (abandoned_) {
    return Status::Unavailable("corpus abandoned; ingest rejected");
  }
  // Fewest documents, ties to the lowest index: recomputable from
  // recovered state, so placement survives crashes without a log of its
  // own.
  size_t target = 0;
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (shards_[i]->spans().size() < shards_[target]->spans().size()) {
      target = i;
    }
  }
  const doc::NodeId global_start = next_global_;
  auto added = shards_[target]->AddDocument(xml, global_start);
  if (!added.ok()) {
    ingest_rejected_->Increment();
    return added.status();
  }
  next_global_ = global_start + added->span.length;
  Status published = PublishGeneration(target);
  if (!published.ok()) {
    // The document is already durable (WAL appended + fsynced). A non-OK
    // ack would break the WireIngestAck contract — the client would
    // resend and duplicate the document — so ack it; the snapshot stays
    // stale until the next publish succeeds (and rebuilds every shard).
    republish_all_ = true;
    APPROXQL_LOG(Error) << "generation publish failed after durable add: "
                        << published.message();
  }
  docs_added_->Increment();
  ingest_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));

  IngestResult result;
  result.seq = added->seq;
  // The durable epoch, not the gauge: on a failed publish the gauge
  // still holds the pre-mutation value.
  uint64_t epoch = 0;
  for (const auto& shard : shards_) epoch += shard->last_seq();
  result.epoch = epoch;
  result.doc_root = global_start;
  result.shard_index = static_cast<uint32_t>(target);
  result.length = added->span.length;
  return result;
}

Result<MutableCorpus::IngestResult> MutableCorpus::RemoveDocument(
    doc::NodeId doc_root) {
  util::WallTimer timer;
  util::MutexLock lock(&ingest_mu_);
  if (abandoned_) {
    return Status::Unavailable("corpus abandoned; ingest rejected");
  }
  size_t target = shards_.size();
  uint32_t length = 0;
  for (size_t i = 0; i < shards_.size() && target == shards_.size(); ++i) {
    for (const shard::DocSpan& span : shards_[i]->spans()) {
      if (span.global_start == doc_root) {
        target = i;
        length = span.length;
        break;
      }
    }
  }
  if (target == shards_.size()) {
    return Status::NotFound("no document with global root " +
                            std::to_string(doc_root));
  }
  // The remove rewrites the shard's postings in place; live snapshots
  // must stop reading the store for this shard first.
  PreloadLiveGenerations(target);
  auto removed = shards_[target]->RemoveDocument(doc_root);
  if (!removed.ok()) {
    ingest_rejected_->Increment();
    return removed.status();
  }
  Status published = PublishGeneration(target);
  if (!published.ok()) {
    // As in AddDocument: the remove is durable, so it must be acked.
    republish_all_ = true;
    APPROXQL_LOG(Error) << "generation publish failed after durable remove: "
                        << published.message();
  }
  docs_removed_->Increment();
  ingest_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));

  IngestResult result;
  result.seq = *removed;
  uint64_t epoch = 0;
  for (const auto& shard : shards_) epoch += shard->last_seq();
  result.epoch = epoch;
  result.doc_root = doc_root;
  result.shard_index = static_cast<uint32_t>(target);
  result.length = length;
  return result;
}

std::shared_ptr<const shard::ShardedDatabase> MutableCorpus::snapshot() const {
  util::MutexLock lock(&snap_mu_);
  return current_;
}

uint64_t MutableCorpus::epoch() const { return snapshot()->epoch(); }

size_t MutableCorpus::document_count() const {
  util::MutexLock lock(&ingest_mu_);
  size_t documents = 0;
  for (const auto& shard : shards_) documents += shard->spans().size();
  return documents;
}

Status MutableCorpus::Checkpoint() {
  util::MutexLock lock(&ingest_mu_);
  if (abandoned_) {
    return Status::Unavailable("corpus abandoned; checkpoint rejected");
  }
  for (const auto& shard : shards_) {
    RETURN_IF_ERROR(shard->Checkpoint());
  }
  return Status::OK();
}

void MutableCorpus::Abandon() {
  util::MutexLock lock(&ingest_mu_);
  abandoned_ = true;
  for (const auto& shard : shards_) shard->Abandon();
}

std::vector<MutableCorpus::ShardStatus> MutableCorpus::ShardStatuses() const {
  util::MutexLock lock(&ingest_mu_);
  std::vector<ShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStatus status;
    status.documents = shard->spans().size();
    status.last_seq = shard->last_seq();
    status.wal_bytes = shard->wal_size_bytes();
    status.vlog_bytes = shard->vlog_size();
    status.generation = shard->generation();
    status.poisoned = shard->poisoned();
    statuses.push_back(status);
  }
  return statuses;
}

}  // namespace approxql::ingest
