#include "ingest/durable_shard.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "index/label_index.h"
#include "storage/mem_kv_store.h"
#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/varint.h"

namespace approxql::ingest {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kPostingPrefix = "ix#";
constexpr uint32_t kSnapMagic = 0x4e535141;  // "AQSN"
constexpr uint32_t kSnapVersion = 1;
constexpr uint32_t kCurrentMagic = 0x52554341;  // "ACUR"

std::string PostingKey(NodeType type, doc::LabelId label) {
  std::string key(kPostingPrefix);
  key.push_back(type == NodeType::kStruct ? 's' : 't');
  util::PutVarint32(&key, label);
  return key;
}

Status WriteFileDurably(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size() ||
      std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
    std::fclose(file);
    return Status::IoError(tmp + ": write failed");
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return storage::SyncParentDir(path);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound(path + ": cannot open");
  std::string data;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError(path + ": read failed");
  return data;
}

}  // namespace

DurableShard::DurableShard(Options options)
    : options_(std::move(options)),
      stem_("shard" + std::to_string(options_.shard_index)) {}

DurableShard::~DurableShard() {
  if (!recovered_ || abandoned_ || poisoned_ || wal_ == nullptr) return;
  // Clean shutdown = checkpoint: the next open loads the snapshot and
  // replays nothing, and the B+tree's own destructor flush can never
  // produce a layout that diverges from the checkpoint image.
  Status status = Checkpoint();
  if (!status.ok()) {
    APPROXQL_LOG(Error) << stem_
                        << ": shutdown checkpoint failed: " << status.message();
  }
}

std::string DurableShard::FilePath(std::string_view suffix) const {
  return options_.data_dir + "/" + stem_ + std::string(suffix);
}

std::string DurableShard::GenPath(uint64_t gen, std::string_view ext) const {
  return options_.data_dir + "/" + stem_ + "-" + std::to_string(gen) +
         std::string(ext);
}

std::string DurableShard::ConfigString() const {
  return "shard=" + std::to_string(options_.shard_index) +
         ";store=" + storage::StoreKindName(options_.store_kind) +
         ";threshold=" + std::to_string(options_.inline_threshold) +
         ";model=" + options_.model.ToConfigString();
}

uint64_t DurableShard::vlog_size() const {
  return vlog_ != nullptr ? vlog_->size() : 0;
}

storage::SpillingStore::Stats DurableShard::spill_stats() const {
  return spilling_ != nullptr ? spilling_->stats()
                              : storage::SpillingStore::Stats{};
}

Result<DurableShard::InnerStore> DurableShard::OpenInner(uint64_t gen,
                                                         bool start_fresh) {
  InnerStore inner;
  if (options_.store_kind == storage::StoreKind::kMem) {
    inner.store = std::make_unique<storage::MemKvStore>();
    return inner;
  }
  const std::string kv_path = GenPath(gen, ".kv");
  const std::string vlog_path = GenPath(gen, ".vlog");
  if (start_fresh) {
    std::remove(kv_path.c_str());
    std::remove(vlog_path.c_str());
  }
  ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskKvStore> kv,
                   storage::DiskKvStore::Open(kv_path,
                                              /*create_if_missing=*/true));
  ASSIGN_OR_RETURN(std::unique_ptr<storage::ValueLog> vlog,
                   storage::ValueLog::Open(vlog_path));
  inner.kv = kv.get();
  inner.vlog = vlog.get();
  auto spilling = std::make_unique<storage::SpillingStore>(
      std::move(kv), std::move(vlog), options_.inline_threshold);
  inner.spilling = spilling.get();
  inner.store = std::move(spilling);
  return inner;
}

Status DurableShard::PersistAllPostings(storage::KvStore* store) const {
  ASSIGN_OR_RETURN(doc::DataTree tree, builder_.Snapshot(options_.model));
  index::LabelIndex index = index::LabelIndex::BuildFromTree(tree);
  return index.PersistTo(store, kPostingPrefix);
}

Status DurableShard::ApplyParsedAdd(const xml::XmlElement& root,
                                    doc::NodeId global_start,
                                    shard::DocSpan* out) {
  const doc::NodeId local_start =
      static_cast<doc::NodeId>(builder_.node_count());
  builder_.AddDocument(root);
  const doc::NodeId local_end = static_cast<doc::NodeId>(builder_.node_count());

  // Group the new nodes' ids by (type, label). std::map gives a
  // deterministic Put order — required for the replay-reproducible
  // value-log layout.
  const doc::DataTree& pending = builder_.pending();
  std::map<std::pair<int, doc::LabelId>, index::Posting> appended;
  for (doc::NodeId id = local_start; id < local_end; ++id) {
    const doc::DataNode& n = pending.node(id);
    appended[{static_cast<int>(n.type), n.label}].push_back(id);
  }
  for (const auto& [key, ids] : appended) {
    const NodeType type = static_cast<NodeType>(key.first);
    const std::string store_key = PostingKey(type, key.second);
    index::Posting posting;
    auto existing = store_->Get(store_key);
    if (existing.ok()) {
      ASSIGN_OR_RETURN(posting, index::DeserializePosting(*existing));
      // Idempotent replay: a crashed, never-acknowledged apply may have
      // left entries in this doc's id range; drop them before appending.
      auto cut = std::lower_bound(posting.begin(), posting.end(), local_start);
      posting.erase(cut, posting.end());
    } else if (!existing.status().IsNotFound()) {
      return existing.status();
    }
    posting.insert(posting.end(), ids.begin(), ids.end());
    std::string value;
    index::SerializePosting(posting, &value);
    RETURN_IF_ERROR(store_->Put(store_key, value));
  }

  out->local_start = local_start;
  out->global_start = global_start;
  out->length = local_end - local_start;
  spans_.push_back(*out);
  return Status::OK();
}

Status DurableShard::ApplyRemove(doc::NodeId global_start) {
  auto it = std::find_if(spans_.begin(), spans_.end(),
                         [global_start](const shard::DocSpan& span) {
                           return span.global_start == global_start;
                         });
  if (it == spans_.end()) {
    return Status::NotFound("no document with global root " +
                            std::to_string(global_start));
  }
  ASSIGN_OR_RETURN(doc::DataTree old_tree, builder_.Snapshot(options_.model));

  doc::DataTreeBuilder rebuilt;
  std::vector<shard::DocSpan> new_spans;
  new_spans.reserve(spans_.size() - 1);
  for (const shard::DocSpan& span : spans_) {
    if (span.global_start == global_start) continue;
    shard::DocSpan moved = span;
    moved.local_start = static_cast<doc::NodeId>(rebuilt.node_count());
    rebuilt.AppendSubtree(old_tree, span.local_start);
    new_spans.push_back(moved);
  }

  ASSIGN_OR_RETURN(doc::DataTree new_tree, rebuilt.Snapshot(options_.model));
  index::LabelIndex new_index = index::LabelIndex::BuildFromTree(new_tree);
  RETURN_IF_ERROR(new_index.PersistTo(store_.get(), kPostingPrefix));
  // Labels with no surviving occurrence keep a stale key otherwise.
  index::LabelIndex old_index = index::LabelIndex::BuildFromTree(old_tree);
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    for (const auto& [label, posting] : old_index.postings(type)) {
      if (new_index.Fetch(type, label) == nullptr) {
        RETURN_IF_ERROR(store_->Delete(PostingKey(type, label)));
      }
    }
  }

  builder_ = std::move(rebuilt);
  spans_ = std::move(new_spans);
  return Status::OK();
}

Result<DurableShard::AddResult> DurableShard::AddDocumentBuffered(
    std::string_view xml, doc::NodeId global_start) {
  if (poisoned_) {
    return Status::Unavailable(stem_ + " is poisoned; ingest rejected");
  }
  // DOM pre-parse: a malformed document is rejected before any state is
  // touched (the streaming parser would leave a partial subtree).
  auto parsed = xml::ParseXmlDocument(xml);
  if (!parsed.ok()) {
    return Status::InvalidArgument("ingest rejected: " +
                                   parsed.status().message());
  }

  AddResult result;
  Status applied = ApplyParsedAdd(*parsed->root, global_start, &result.span);
  if (!applied.ok()) {
    poisoned_ = true;
    return applied;
  }
  std::string body;
  util::PutVarint32(&body, global_start);
  util::PutVarint32(&body, result.span.local_start);
  util::PutVarint32(&body, result.span.length);
  util::PutVarint64(&body, vlog_size());
  util::PutVarint64(&body, xml.size());
  body.append(xml);
  auto seq = wal_->Append(kWalAddDocument, body);
  if (!seq.ok()) {
    poisoned_ = true;
    return seq.status();
  }
  result.seq = *seq;
  return result;
}

Status DurableShard::SyncWal() {
  if (poisoned_) {
    return Status::Unavailable(stem_ + " is poisoned; sync rejected");
  }
  Status synced = wal_->Sync();
  if (!synced.ok()) poisoned_ = true;
  return synced;
}

Result<DurableShard::AddResult> DurableShard::AddDocument(
    std::string_view xml, doc::NodeId global_start) {
  ASSIGN_OR_RETURN(AddResult result, AddDocumentBuffered(xml, global_start));
  RETURN_IF_ERROR(SyncWal());
  return result;
}

Result<uint64_t> DurableShard::RemoveDocument(doc::NodeId global_start) {
  if (poisoned_) {
    return Status::Unavailable(stem_ + " is poisoned; ingest rejected");
  }
  Status applied = ApplyRemove(global_start);
  if (!applied.ok()) {
    if (applied.IsNotFound()) return applied;  // nothing was touched
    poisoned_ = true;
    return applied;
  }
  std::string body;
  util::PutVarint32(&body, global_start);
  util::PutVarint64(&body, vlog_size());
  auto seq = wal_->Append(kWalRemoveDocument, body);
  if (!seq.ok()) {
    poisoned_ = true;
    return seq.status();
  }
  Status synced = wal_->Sync();
  if (!synced.ok()) {
    poisoned_ = true;
    return synced;
  }
  return *seq;
}

Result<doc::DataTree> DurableShard::SnapshotTree() const {
  return builder_.Snapshot(options_.model);
}

Status DurableShard::WriteSnapshotFile(uint64_t gen, uint64_t applied_seq,
                                       uint64_t vlog_size_value) const {
  ASSIGN_OR_RETURN(doc::DataTree tree, builder_.Snapshot(options_.model));
  std::string out;
  util::PutVarint32(&out, kSnapMagic);
  util::PutVarint32(&out, kSnapVersion);
  const std::string config = ConfigString();
  util::PutVarint64(&out, config.size());
  out.append(config);
  util::PutVarint64(&out, applied_seq);
  util::PutVarint64(&out, vlog_size_value);
  std::string tree_bytes;
  tree.Serialize(&tree_bytes);
  util::PutVarint64(&out, tree_bytes.size());
  out.append(tree_bytes);
  util::PutVarint64(&out, spans_.size());
  for (const shard::DocSpan& span : spans_) {
    util::PutVarint32(&out, span.local_start);
    util::PutVarint32(&out, span.global_start);
    util::PutVarint32(&out, span.length);
  }
  storage::PutFixed32(&out, util::Crc32c(out));
  return WriteFileDurably(GenPath(gen, ".snap"), out);
}

Result<DurableShard::SnapshotFile> DurableShard::ReadSnapshotFile(
    const std::string& path, const cost::CostModel& model) {
  ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (data.size() < 4) return Status::Corruption(path + ": truncated");
  const std::string_view body(data.data(), data.size() - 4);
  if (storage::GetFixed32(data.data() + body.size()) != util::Crc32c(body)) {
    return Status::Corruption(path + ": CRC mismatch");
  }
  util::VarintReader reader(body);
  uint32_t magic = 0;
  uint32_t version = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  RETURN_IF_ERROR(reader.GetVarint32(&version));
  if (magic != kSnapMagic) return Status::Corruption(path + ": bad magic");
  if (version != kSnapVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  SnapshotFile snap;
  uint64_t config_len = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&config_len));
  std::string_view config;
  RETURN_IF_ERROR(reader.GetBytes(config_len, &config));
  snap.config = std::string(config);
  RETURN_IF_ERROR(reader.GetVarint64(&snap.applied_seq));
  RETURN_IF_ERROR(reader.GetVarint64(&snap.vlog_size));
  uint64_t tree_len = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&tree_len));
  std::string_view tree_bytes;
  RETURN_IF_ERROR(reader.GetBytes(tree_len, &tree_bytes));
  ASSIGN_OR_RETURN(snap.tree, doc::DataTree::Deserialize(tree_bytes, model));
  uint64_t span_count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&span_count));
  if (span_count > reader.remaining()) {
    return Status::Corruption(path + ": span count overruns file");
  }
  snap.spans.reserve(span_count);
  for (uint64_t i = 0; i < span_count; ++i) {
    shard::DocSpan span;
    RETURN_IF_ERROR(reader.GetVarint32(&span.local_start));
    RETURN_IF_ERROR(reader.GetVarint32(&span.global_start));
    RETURN_IF_ERROR(reader.GetVarint32(&span.length));
    snap.spans.push_back(span);
  }
  if (!reader.empty()) {
    return Status::Corruption(path + ": trailing bytes");
  }
  return snap;
}

Status DurableShard::WriteCurrent(uint64_t gen) const {
  std::string out;
  util::PutVarint32(&out, kCurrentMagic);
  util::PutVarint64(&out, gen);
  storage::PutFixed32(&out, util::Crc32c(out));
  return WriteFileDurably(FilePath(".CURRENT"), out);
}

Result<uint64_t> DurableShard::ReadCurrent() const {
  ASSIGN_OR_RETURN(std::string data, ReadWholeFile(FilePath(".CURRENT")));
  if (data.size() < 4) return Status::Corruption("CURRENT truncated");
  const std::string_view body(data.data(), data.size() - 4);
  if (storage::GetFixed32(data.data() + body.size()) != util::Crc32c(body)) {
    return Status::Corruption("CURRENT CRC mismatch");
  }
  util::VarintReader reader(body);
  uint32_t magic = 0;
  uint64_t gen = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  RETURN_IF_ERROR(reader.GetVarint64(&gen));
  if (magic != kCurrentMagic || !reader.empty()) {
    return Status::Corruption("CURRENT malformed");
  }
  return gen;
}

void DurableShard::DeleteStaleGenerations() const {
  // Generation files other than gen_ are leftovers of a checkpoint that
  // crashed between publishing CURRENT and deleting the old files (or
  // before publishing). Either way they are dead.
  std::error_code ec;
  const std::string prefix = stem_ + "-";
  const std::string keep = stem_ + "-" + std::to_string(gen_);
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.data_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string bare = name.substr(0, name.rfind('.'));
    if (bare != keep) std::filesystem::remove(entry.path(), ec);
  }
}

Status DurableShard::Recover(bool have_snapshot, const SnapshotFile& snap,
                             const std::vector<storage::WalRecord>& records,
                             bool force_rebuild, OpenStats* stats_out) {
  uint64_t applied_seq = 0;
  uint64_t base_vlog_size = 0;
  if (have_snapshot) {
    builder_ = doc::DataTreeBuilder::FromTree(snap.tree);
    spans_ = snap.spans;
    applied_seq = snap.applied_seq;
    base_vlog_size = snap.vlog_size;
  } else {
    builder_ = doc::DataTreeBuilder();
    spans_.clear();
  }

  // Mem stores hold nothing across restarts; they are always rebuilt
  // from the snapshot tree.
  const bool rebuild =
      force_rebuild || options_.store_kind == storage::StoreKind::kMem;
  ASSIGN_OR_RETURN(InnerStore inner, OpenInner(gen_, rebuild));
  if (inner.vlog != nullptr && !rebuild) {
    const uint64_t floor = std::max(base_vlog_size,
                                    storage::ValueLog::HeaderSize());
    if (floor > inner.vlog->size()) {
      return Status::Corruption(stem_ +
                                ": value log shorter than checkpoint");
    }
    // Discard the never-checkpointed tail; replay re-appends it at
    // byte-identical offsets.
    RETURN_IF_ERROR(inner.vlog->TruncateTo(floor));
  }
  kv_ = inner.kv;
  vlog_ = inner.vlog;
  spilling_ = inner.spilling;
  store_ = std::make_shared<storage::SynchronizedKvStore>(
      std::move(inner.store));
  if (rebuild && have_snapshot) {
    // Deterministic persist: rebuilding from the tree reproduces the
    // exact checkpoint layout, so the vlog size must land on the
    // checkpointed value (disk mode).
    RETURN_IF_ERROR(PersistAllPostings(store_.get()));
    if (vlog_ != nullptr && options_.store_kind == storage::StoreKind::kDisk &&
        vlog_->size() != std::max(base_vlog_size,
                                  storage::ValueLog::HeaderSize())) {
      return Status::Corruption(stem_ +
                                ": rebuilt value log diverges from snapshot");
    }
  }

  size_t replayed = 0;
  for (const storage::WalRecord& record : records) {
    if (record.seq <= applied_seq) continue;  // covered by the checkpoint
    util::VarintReader reader(record.payload);
    if (record.type == kWalAddDocument) {
      uint32_t global_start = 0;
      uint32_t local_start = 0;
      uint32_t length = 0;
      uint64_t vlog_after = 0;
      uint64_t xml_len = 0;
      std::string_view xml;
      RETURN_IF_ERROR(reader.GetVarint32(&global_start));
      RETURN_IF_ERROR(reader.GetVarint32(&local_start));
      RETURN_IF_ERROR(reader.GetVarint32(&length));
      RETURN_IF_ERROR(reader.GetVarint64(&vlog_after));
      RETURN_IF_ERROR(reader.GetVarint64(&xml_len));
      RETURN_IF_ERROR(reader.GetBytes(xml_len, &xml));
      if (local_start != builder_.node_count()) {
        return Status::Corruption(stem_ + ": replay placement mismatch at seq " +
                                  std::to_string(record.seq));
      }
      ASSIGN_OR_RETURN(xml::XmlDocument parsed, xml::ParseXmlDocument(xml));
      shard::DocSpan span;
      RETURN_IF_ERROR(ApplyParsedAdd(*parsed.root, global_start, &span));
      if (span.length != length) {
        return Status::Corruption(stem_ + ": replay length mismatch at seq " +
                                  std::to_string(record.seq));
      }
      if (options_.store_kind == storage::StoreKind::kDisk &&
          vlog_size() != vlog_after) {
        return Status::Corruption(
            stem_ + ": replay value-log layout diverges at seq " +
            std::to_string(record.seq));
      }
    } else if (record.type == kWalRemoveDocument) {
      uint32_t global_start = 0;
      uint64_t vlog_after = 0;
      RETURN_IF_ERROR(reader.GetVarint32(&global_start));
      RETURN_IF_ERROR(reader.GetVarint64(&vlog_after));
      RETURN_IF_ERROR(ApplyRemove(global_start));
      if (options_.store_kind == storage::StoreKind::kDisk &&
          vlog_size() != vlog_after) {
        return Status::Corruption(
            stem_ + ": replay value-log layout diverges at seq " +
            std::to_string(record.seq));
      }
    } else {
      return Status::Corruption(stem_ + ": unknown WAL record type " +
                                std::to_string(record.type));
    }
    ++replayed;
  }

  if (!rebuild && options_.store_kind == storage::StoreKind::kDisk) {
    // The reused kv content is trusted to be exactly checkpoint+replay
    // state. That fails if a bounded page cache flushed dirty pages from
    // an un-logged apply before the crash: labels untouched by replay
    // keep entries past the recovered tree, which would alias real nodes
    // once the tree grows over them. Detect and fall back to a rebuild.
    RETURN_IF_ERROR(VerifyNoStalePostings());
  }

  if (stats_out != nullptr) {
    stats_out->recovered_documents = spans_.size();
    stats_out->replayed_records = replayed;
    stats_out->store_rebuilt =
        rebuild && options_.store_kind == storage::StoreKind::kDisk;
  }
  return Status::OK();
}

Status DurableShard::VerifyNoStalePostings() const {
  // Keys first, values after: Get() resolves spilled segment pointers,
  // and SynchronizedKvStore holds its mutex for the iterator's lifetime.
  std::vector<std::string> keys;
  {
    std::unique_ptr<storage::KvIterator> it = store_->NewIterator();
    for (it->Seek(kPostingPrefix); it->Valid(); it->Next()) {
      const std::string_view key = it->key();
      if (key.substr(0, kPostingPrefix.size()) != kPostingPrefix) break;
      keys.emplace_back(key);
    }
  }
  const doc::NodeId limit = static_cast<doc::NodeId>(builder_.node_count());
  for (const std::string& key : keys) {
    ASSIGN_OR_RETURN(std::string value, store_->Get(key));
    ASSIGN_OR_RETURN(index::Posting posting, index::DeserializePosting(value));
    if (!posting.empty() && posting.back() >= limit) {
      return Status::Corruption(stem_ + ": stale posting entry " +
                                std::to_string(posting.back()) +
                                " past recovered node count " +
                                std::to_string(limit));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<DurableShard>> DurableShard::Open(Options options,
                                                         OpenStats* stats_out) {
  std::unique_ptr<DurableShard> shard(new DurableShard(std::move(options)));

  bool have_snapshot = false;
  SnapshotFile snap;
  auto current = shard->ReadCurrent();
  if (current.ok()) {
    shard->gen_ = *current;
    ASSIGN_OR_RETURN(snap,
                     ReadSnapshotFile(shard->GenPath(shard->gen_, ".snap"),
                                      shard->options_.model));
    if (snap.config != shard->ConfigString()) {
      return Status::Corruption(
          shard->stem_ + ": snapshot config mismatch (stored \"" +
          snap.config + "\", expected \"" + shard->ConfigString() + "\")");
    }
    have_snapshot = true;
  } else if (!current.status().IsNotFound()) {
    return current.status();
  }
  shard->DeleteStaleGenerations();

  ASSIGN_OR_RETURN(
      storage::WriteAheadLog::OpenResult wal_open,
      storage::WriteAheadLog::Open(shard->FilePath(".wal"),
                                   shard->ConfigString()));
  shard->wal_ = std::move(wal_open.wal);
  if (stats_out != nullptr) {
    stats_out->wal_tail_truncated = wal_open.tail_truncated;
  }

  Status recovered = shard->Recover(have_snapshot, snap, wal_open.records,
                                    /*force_rebuild=*/false, stats_out);
  if (!recovered.ok() &&
      shard->options_.store_kind == storage::StoreKind::kDisk) {
    // Torn pages past the checkpoint can make the generation's kv file
    // unreadable; the snapshot tree + WAL carry everything, so rebuild
    // the store from them instead of failing.
    APPROXQL_LOG(Warning) << shard->stem_ << ": recovery retrying with store "
                          << "rebuild: " << recovered.message();
    recovered = shard->Recover(have_snapshot, snap, wal_open.records,
                               /*force_rebuild=*/true, stats_out);
  }
  RETURN_IF_ERROR(recovered);
  shard->recovered_ = true;
  return shard;
}

Status DurableShard::Checkpoint() {
  if (poisoned_) {
    return Status::Unavailable(stem_ +
                                      " is poisoned; checkpoint rejected");
  }
  const uint64_t next_gen = gen_ + 1;
  ASSIGN_OR_RETURN(InnerStore fresh, OpenInner(next_gen, /*start_fresh=*/true));
  RETURN_IF_ERROR(PersistAllPostings(fresh.store.get()));
  RETURN_IF_ERROR(fresh.store->Flush());
  if (fresh.kv != nullptr) RETURN_IF_ERROR(fresh.kv->Sync());
  const uint64_t new_vlog_size =
      fresh.vlog != nullptr ? fresh.vlog->size() : 0;
  RETURN_IF_ERROR(WriteSnapshotFile(next_gen, wal_->last_seq(),
                                    new_vlog_size));
  // The commit point: after this rename, recovery loads generation G+1.
  RETURN_IF_ERROR(WriteCurrent(next_gen));
  RETURN_IF_ERROR(wal_->Truncate());

  const uint64_t old_gen = gen_;
  gen_ = next_gen;
  kv_ = fresh.kv;
  vlog_ = fresh.vlog;
  spilling_ = fresh.spilling;
  // Readers reach the store only through the synchronized wrapper, so
  // the swap is atomic from their side; the old inner store (same
  // logical content) is destroyed here.
  store_->Swap(std::move(fresh.store));
  std::remove(GenPath(old_gen, ".snap").c_str());
  if (options_.store_kind == storage::StoreKind::kDisk) {
    std::remove(GenPath(old_gen, ".kv").c_str());
    std::remove(GenPath(old_gen, ".vlog").c_str());
  }
  return Status::OK();
}

void DurableShard::Abandon() {
  abandoned_ = true;
  if (wal_ != nullptr) wal_->Abandon();
  if (kv_ != nullptr) kv_->Abandon();
  if (vlog_ != nullptr) vlog_->Abandon();
}

}  // namespace approxql::ingest
