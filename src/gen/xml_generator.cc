#include "gen/xml_generator.h"

#include <algorithm>

#include "xml/xml_dom.h"

namespace approxql::gen {

using doc::DataTree;
using doc::DataTreeBuilder;
using util::Result;

XmlGenerator::XmlGenerator(const XmlGenOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(std::max<size_t>(options.vocabulary, 1), options.zipf_theta) {
  BuildTemplate();
}

std::string XmlGenerator::ElementName(size_t index) const {
  return "elem" + std::to_string(index % options_.element_names);
}

std::string XmlGenerator::Term(size_t rank) const {
  return "term" + std::to_string(rank % options_.vocabulary);
}

void XmlGenerator::BuildTemplate() {
  // Breadth-first growth: each open slot receives 0..max_children
  // children until the node budget is spent. Labels are drawn uniformly;
  // repeated labels at different positions create distinct label paths
  // (recursion included), like real heterogeneous collections.
  template_.clear();
  template_.push_back({/*name=*/0, {}, /*words_mean=*/0});
  std::vector<std::pair<size_t, size_t>> open = {{0, 0}};  // (node, depth)
  size_t cursor = 0;
  while (cursor < open.size() && template_.size() < options_.template_nodes) {
    auto [node, depth] = open[cursor++];
    if (depth + 1 >= options_.template_max_depth) continue;
    size_t children = 1 + rng_.Uniform(options_.template_max_children);
    for (size_t i = 0;
         i < children && template_.size() < options_.template_nodes; ++i) {
      size_t child = template_.size();
      TemplateNode t;
      t.name = rng_.Uniform(options_.element_names);
      template_.push_back(std::move(t));
      template_[node].children.push_back(child);
      open.emplace_back(child, depth + 1);
    }
  }
  // Words concentrate at the leaves of the template; inner nodes carry a
  // smaller share, mirroring data-centric XML. Calibrate the means so
  // the expected total matches words_per_element.
  size_t leaves = 0;
  for (const auto& t : template_) leaves += t.children.empty() ? 1 : 0;
  double leaf_share = 0.8;
  double inner_share = 1.0 - leaf_share;
  size_t inner = template_.size() - leaves;
  for (auto& t : template_) {
    if (t.children.empty()) {
      t.words_mean = options_.words_per_element * template_.size() *
                     leaf_share / std::max<size_t>(leaves, 1);
    } else {
      t.words_mean = options_.words_per_element * template_.size() *
                     inner_share / std::max<size_t>(inner, 1);
    }
  }
}

void XmlGenerator::EmitWords(double mean, DataTreeBuilder* builder) {
  // Uniform in [0, 2*mean] has the right expectation and enough spread.
  size_t count = rng_.Uniform(static_cast<uint64_t>(2 * mean) + 1);
  for (size_t i = 0; i < count; ++i) {
    builder->AddWord(Term(zipf_.Sample(rng_)));
  }
}

size_t XmlGenerator::Instantiate(size_t node, size_t depth, size_t budget,
                                 DataTreeBuilder* builder) {
  const TemplateNode& t = template_[node];
  builder->StartElement(ElementName(t.name));
  EmitWords(t.words_mean, builder);
  size_t emitted = 1;
  for (size_t child : t.children) {
    if (emitted >= budget) break;
    size_t repeats = rng_.Uniform(options_.max_repeats + 1);
    for (size_t r = 0; r < repeats && emitted < budget; ++r) {
      emitted +=
          Instantiate(child, depth + 1, budget - emitted, builder);
    }
  }
  builder->EndElement();
  return emitted;
}

Result<DataTree> XmlGenerator::GenerateTree(const cost::CostModel& model) {
  DataTreeBuilder builder;
  size_t elements = 0;
  while (elements < options_.total_elements) {
    elements += Instantiate(0, 0, options_.elements_per_document, &builder);
  }
  return std::move(builder).Build(model);
}

std::string XmlGenerator::GenerateDocumentXml() {
  DataTreeBuilder builder;
  Instantiate(0, 0, options_.elements_per_document, &builder);
  auto tree = std::move(builder).Build(cost::CostModel());
  APPROXQL_CHECK(tree.ok());
  // The document root is the super-root's single child.
  return xml::WriteXml(tree->ToXml(tree->FirstChild(tree->root())));
}

}  // namespace approxql::gen
