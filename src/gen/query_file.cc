#include "gen/query_file.h"

#include "util/string_util.h"

namespace approxql::gen {

using util::Result;
using util::Status;

std::string WriteQueryFile(const GeneratedQuery& generated) {
  std::string out = "query ";
  out += generated.text;
  out += "\n";
  out += generated.cost_model.ToConfigString();
  return out;
}

Result<GeneratedQuery> ParseQueryFile(std::string_view text) {
  // The first non-blank, non-comment line must be the query directive;
  // everything after it is cost-config.
  size_t cursor = 0;
  std::string_view query_line;
  while (cursor < text.size()) {
    size_t eol = text.find('\n', cursor);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line =
        util::StripWhitespace(text.substr(cursor, eol - cursor));
    cursor = eol + 1;
    if (line.empty() || line.starts_with("#")) continue;
    query_line = line;
    break;
  }
  if (!query_line.starts_with("query ")) {
    return Status::ParseError(
        "query file must start with a 'query <approxql>' line");
  }
  GeneratedQuery out;
  out.text = std::string(util::StripWhitespace(query_line.substr(6)));
  ASSIGN_OR_RETURN(out.query, query::Parse(out.text));
  std::string_view rest =
      cursor <= text.size() ? text.substr(cursor) : std::string_view();
  ASSIGN_OR_RETURN(out.cost_model, cost::CostModel::ParseConfig(rest));
  return out;
}

}  // namespace approxql::gen
