#include "gen/query_generator.h"

#include <algorithm>

namespace approxql::gen {

using cost::Cost;
using cost::CostModel;
using query::AstKind;
using query::AstNode;
using util::Result;
using util::Status;

QueryGenerator::QueryGenerator(const engine::Database& db,
                               const QueryGenOptions& options)
    : db_(db), options_(options), rng_(options.seed) {
  const doc::LabelTable& labels = db.tree().labels();
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    auto& out = type == NodeType::kStruct ? names_ : terms_;
    for (const auto& [label, posting] : db.label_index().postings(type)) {
      (void)posting;
      out.push_back(labels.Get(label));
    }
    std::sort(out.begin(), out.end());
  }
}

std::string_view QueryGenerator::RandomName() {
  APPROXQL_CHECK(!names_.empty()) << "database has no element names";
  return names_[rng_.Uniform(names_.size())];
}

std::string_view QueryGenerator::RandomTerm() {
  APPROXQL_CHECK(!terms_.empty()) << "database has no terms";
  return terms_[rng_.Uniform(terms_.size())];
}

void QueryGenerator::AddTransformations(NodeType type, std::string_view label,
                                        CostModel* model) {
  if (rng_.NextDouble() < options_.deletable_fraction) {
    model->SetDeleteCost(
        type, label,
        rng_.UniformInt(options_.min_delete_cost, options_.max_delete_cost));
  }
  const auto& pool = type == NodeType::kStruct ? names_ : terms_;
  for (size_t i = 0; i < options_.renamings_per_label; ++i) {
    std::string_view target = pool[rng_.Uniform(pool.size())];
    if (target == label) continue;  // identity renamings are free anyway
    model->SetRenameCost(type, label, target,
                         rng_.UniformInt(options_.min_rename_cost,
                                         options_.max_rename_cost));
  }
}

void QueryGenerator::FillAst(AstNode* node, CostModel* model) {
  switch (node->kind) {
    case AstKind::kName:
      if (node->label == "name") {
        node->label = std::string(RandomName());
      } else if (node->label == "term") {
        // A `term` placeholder parses as a name selector; convert.
        node->kind = AstKind::kText;
        node->label = std::string(RandomTerm());
        APPROXQL_CHECK(node->children.empty())
            << "term placeholder cannot have content";
        AddTransformations(NodeType::kText, node->label, model);
        return;
      }
      AddTransformations(NodeType::kStruct, node->label, model);
      break;
    case AstKind::kText:
      AddTransformations(NodeType::kText, node->label, model);
      break;
    case AstKind::kAnd:
    case AstKind::kOr:
      break;
  }
  for (auto& child : node->children) {
    FillAst(child.get(), model);
  }
}

Result<GeneratedQuery> QueryGenerator::Generate(std::string_view pattern) {
  ASSIGN_OR_RETURN(query::Query query, query::Parse(pattern));
  GeneratedQuery out;
  // Transformation costs ride on the database's build-time model so that
  // insert costs (baked into the encoding) stay consistent.
  out.cost_model = db_.cost_model();
  FillAst(query.root.get(), &out.cost_model);
  out.text = query.ToString();
  out.query = std::move(query);
  return out;
}

}  // namespace approxql::gen
