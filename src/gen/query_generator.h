// approXQL query generator (paper Section 8.1): takes a query pattern of
// `name`/`term` templates and Boolean operators, fills the templates
// with names and terms randomly selected from the database indexes, and
// produces the accompanying cost table (delete costs and renamings of
// the query selectors; renaming targets are again sampled from the
// indexes).
//
// The paper's three benchmark patterns are provided as constants.
#ifndef APPROXQL_GEN_QUERY_GENERATOR_H_
#define APPROXQL_GEN_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "query/ast.h"
#include "util/random.h"

namespace approxql::gen {

/// Paper Section 8.1, "simple path query".
inline constexpr std::string_view kPattern1 = "name[name[name[term]]]";
/// "small Boolean query".
inline constexpr std::string_view kPattern2 =
    "name[name[term and (term or term)]]";
/// "large Boolean query".
inline constexpr std::string_view kPattern3 =
    "name[name[name[term and term and (term or term)] or "
    "name[name[term and term]]] and name]";

struct QueryGenOptions {
  uint64_t seed = 1;
  /// Renamings per query label (the paper tests 0, 5 and 10).
  size_t renamings_per_label = 0;
  /// Renaming costs are drawn uniformly from this range.
  cost::Cost min_rename_cost = 1;
  cost::Cost max_rename_cost = 8;
  /// Delete costs of query selectors, drawn uniformly.
  cost::Cost min_delete_cost = 2;
  cost::Cost max_delete_cost = 10;
  /// Fraction of selectors made deletable at all.
  double deletable_fraction = 1.0;
};

struct GeneratedQuery {
  query::Query query;
  /// Transformation costs for this query (insert costs untouched, so the
  /// database encoding stays valid).
  cost::CostModel cost_model;
  std::string text;  // canonical approXQL form
};

class QueryGenerator {
 public:
  /// Samples labels from `db`'s indexes. The database must outlive the
  /// generator.
  QueryGenerator(const engine::Database& db, const QueryGenOptions& options);

  /// Instantiates `pattern` (approXQL syntax with the placeholder
  /// selectors `name` and `term`).
  util::Result<GeneratedQuery> Generate(std::string_view pattern);

 private:
  std::string_view RandomName();
  std::string_view RandomTerm();
  void FillAst(query::AstNode* node, cost::CostModel* model);
  void AddTransformations(NodeType type, std::string_view label,
                          cost::CostModel* model);

  const engine::Database& db_;
  QueryGenOptions options_;
  util::Rng rng_;
  // Sorted label names for deterministic sampling.
  std::vector<std::string_view> names_;
  std::vector<std::string_view> terms_;
};

}  // namespace approxql::gen

#endif  // APPROXQL_GEN_QUERY_GENERATOR_H_
