// Synthetic XML collection generator, replacing the generator of
// Aboulnaga, Naughton & Zhang [1] used in the paper's experiments
// (Section 8.1). The knobs the paper reports are reproduced: total
// number of elements, number of distinct element names (100), vocabulary
// size, total word occurrences (words per element), and a Zipfian term
// frequency distribution.
//
// Shape: a random schema template (a small tree of element names) is
// drawn first; documents are instantiations of the template with random
// per-child repetition counts. This yields the structural regularities a
// DataGuide compacts — the property the schema-driven evaluation relies
// on — while still producing recursive, skewed documents.
#ifndef APPROXQL_GEN_XML_GENERATOR_H_
#define APPROXQL_GEN_XML_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "util/random.h"
#include "util/zipf.h"

namespace approxql::gen {

struct XmlGenOptions {
  uint64_t seed = 42;

  /// Approximate total number of elements across the collection (the
  /// generator stops starting new documents once reached).
  size_t total_elements = 100000;
  /// Distinct element names (paper: 100).
  size_t element_names = 100;
  /// Distinct terms (paper: 100,000 for 1M elements; scale accordingly).
  size_t vocabulary = 10000;
  /// Average words attached per element (paper: 10M words / 1M elements).
  double words_per_element = 10.0;
  /// Zipf exponent of the term distribution.
  double zipf_theta = 1.0;

  /// Template (schema) shape.
  size_t template_nodes = 150;
  size_t template_max_depth = 8;
  size_t template_max_children = 4;
  /// Maximum repetitions of one template child per parent instance.
  size_t max_repeats = 3;
  /// Approximate elements per document (paper parameter).
  size_t elements_per_document = 100;
};

class XmlGenerator {
 public:
  explicit XmlGenerator(const XmlGenOptions& options);

  /// Generates the whole collection directly into a data tree encoded
  /// with `model` (no XML text round-trip).
  util::Result<doc::DataTree> GenerateTree(const cost::CostModel& model);

  /// Generates one document as XML text (for files and examples).
  /// Successive calls produce different documents.
  std::string GenerateDocumentXml();

  /// Element name / term by index (used by tests).
  std::string ElementName(size_t index) const;
  std::string Term(size_t rank) const;

 private:
  struct TemplateNode {
    size_t name = 0;                 // element-name index
    std::vector<size_t> children;    // template node ids
    double words_mean = 0;           // average words attached here
  };

  void BuildTemplate();
  /// Instantiates `node`; returns the number of elements emitted.
  size_t Instantiate(size_t node, size_t depth, size_t budget,
                     doc::DataTreeBuilder* builder);
  void EmitWords(double mean, doc::DataTreeBuilder* builder);

  XmlGenOptions options_;
  util::Rng rng_;
  util::ZipfDistribution zipf_;
  std::vector<TemplateNode> template_;
};

}  // namespace approxql::gen

#endif  // APPROXQL_GEN_XML_GENERATOR_H_
