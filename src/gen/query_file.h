// The query-file format: one self-contained text file holding an
// approXQL query plus its transformation cost table — what the paper's
// query generator emits ("for each produced query, the generator also
// creates a file that contains the insert costs, the delete costs, and
// the renamings of the query selectors", Section 8.1).
//
//   query cd[title["piano"]]
//   # any cost-config directives follow
//   delete text piano 8
//   rename struct cd mc 4
#ifndef APPROXQL_GEN_QUERY_FILE_H_
#define APPROXQL_GEN_QUERY_FILE_H_

#include <string>
#include <string_view>

#include "gen/query_generator.h"

namespace approxql::gen {

/// Serializes a generated query with its cost table.
std::string WriteQueryFile(const GeneratedQuery& generated);

/// Parses a query file (inverse of WriteQueryFile).
util::Result<GeneratedQuery> ParseQueryFile(std::string_view text);

}  // namespace approxql::gen

#endif  // APPROXQL_GEN_QUERY_FILE_H_
