// The binary wire protocol between net::Server and net::Client. Every
// message is one frame:
//
//   +----------------+---------------------------------------+--------+
//   | length (u32 LE)| body                                  | crc    |
//   +----------------+---------------------------------------+--------+
//                    | version | request_id | type | payload | u32 LE |
//                    | varint  | varint     |varint| bytes   |        |
//
// `length` counts everything after itself (body + 4-byte CRC), so a
// reader needs exactly 4 bytes to learn how much more to buffer. The
// CRC is CRC-32C over the body (header varints + payload), the same
// util::Crc32c the storage pages use; a mismatch means the connection
// stream is corrupt and must be closed. Payloads are varint/length-
// prefixed structures built on util::varint — no alignment, no padding,
// byte-order independent.
//
// Responses carry the request_id of the request they answer, so
// pipelined requests on one connection may complete out of order and
// still be matched up by the client.
#ifndef APPROXQL_NET_WIRE_H_
#define APPROXQL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "engine/database.h"
#include "shard/sharded_database.h"
#include "util/status.h"

namespace approxql::net {

/// Bumped on any incompatible frame or payload change. A server
/// rejects (closes) connections speaking a different version.
/// v2: WireResponse carries degraded/missing_shards; shard-scoped
/// execution frames (kShardQuery/kShardAnswer) and health probes
/// (kPing/kPong) added.
/// v3: live-ingest frames (kIngest/kIngestAck); WireResponse carries
/// the backend epoch of mutable-corpus servers.
/// v4: cluster manifest synchronization — kManifestFetch/kManifestSlice
/// and the kManifestDelta push frame; WireShardAnswer and WirePong carry
/// the serving snapshot's epoch; WireIngest can carry a router-assigned
/// global id; WireRequest carries per-shard min-epoch floors
/// (read-your-writes over a routed cluster).
inline constexpr uint32_t kProtocolVersion = 4;

/// Hard ceiling a decoder enforces before buffering a frame; a declared
/// length beyond this is treated as stream corruption, not a large
/// message (protects the server from one rogue 4-byte prefix pinning
/// gigabytes).
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class MessageType : uint32_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  /// Empty-payload request for the server's metrics dump.
  kMetricsDump = 3,
  /// Response to kMetricsDump: payload is the dump text, raw bytes.
  kMetricsText = 4,
  /// Shard-scoped execution (router -> shard server): evaluate on the
  /// server's single shard; answer roots are shard-local preorders.
  kShardQuery = 5,
  kShardAnswer = 6,
  /// Lightweight health probe, answered inline by the event loop (no
  /// worker dispatch — a loaded pool must not mark a live shard dead).
  kPing = 7,
  /// Response to kPing: payload is the serving shard's layout
  /// fingerprint + shard index, so a probe doubles as a topology check.
  kPong = 8,
  /// Live ingest against a server fronting a mutable corpus: add or
  /// remove one document. The kIngestAck reply is sent only after the
  /// mutation is durable (WAL synced) — an acked document survives any
  /// crash. Visibility is normally immediate (the ack follows the
  /// snapshot swap); if the server's snapshot publication failed after
  /// the durable apply, the ack still stands and the mutation becomes
  /// visible at the next successful publish — compare a response's
  /// backend_epoch with WireIngestAck::epoch to confirm.
  kIngest = 9,
  kIngestAck = 10,
  /// Manifest synchronization (router <-> mutable shard server): fetch
  /// the server's current manifest slice (the DocSpan table + epoch of
  /// the snapshot it is answering from). With `subscribe` set the
  /// server also registers the connection for kManifestDelta pushes.
  kManifestFetch = 11,
  kManifestSlice = 12,
  /// Server push (request_id 0, never a reply): one mutation's effect
  /// on the server's manifest slice, sent to every subscribed
  /// connection after each generation publish. A receiver that detects
  /// a gap in the epoch sequence falls back to kManifestFetch.
  kManifestDelta = 13,
};

struct FrameHeader {
  uint32_t version = kProtocolVersion;
  uint64_t request_id = 0;
  /// Raw on the wire so a receiver can answer an unknown type with an
  /// error instead of failing to decode the frame.
  uint32_t type = 0;
};

/// Appends one complete frame (length prefix, header, payload, CRC).
/// Enforces the same bound the receiving FrameDecoder does: if the body
/// plus CRC would exceed `max_frame_bytes` (or overflow the uint32
/// length prefix), nothing is appended and ResourceExhausted is
/// returned — the sender must degrade (error response, truncation)
/// rather than emit a frame the peer will treat as stream corruption.
util::Status EncodeFrame(const FrameHeader& header, std::string_view payload,
                         std::string* out,
                         size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Incremental frame extraction over a TCP byte stream: Append whatever
/// arrived, then Take until kNeedMore. Tolerates frames split across
/// arbitrarily many reads and multiple frames per read. After kError
/// (oversized/corrupt stream) the decoder is poisoned — the connection
/// must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t size) { buffer_.append(data, size); }

  enum class Next {
    kFrame,     // *header / *payload filled with one complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // stream corrupt; *error explains, connection is dead
  };
  Next Take(FrameHeader* header, std::string* payload, util::Status* error);

  /// Bytes buffered but not yet consumed (torn-frame detection: nonzero
  /// at EOF means the peer died mid-frame).
  size_t buffered() const { return buffer_.size(); }

  void Reset() {
    buffer_.clear();
    poisoned_ = false;
  }

 private:
  std::string buffer_;
  size_t max_frame_bytes_;
  bool poisoned_ = false;
};

/// kQueryRequest payload: everything QueryService needs to run one
/// query. Mirrors service::QueryRequest minus the in-process-only knobs
/// (cost-model pointers, stats out-parameters).
struct WireRequest {
  std::string query;
  engine::Strategy strategy = engine::Strategy::kSchema;
  /// Best-n bound; UINT64_MAX = all results (matches SIZE_MAX in-process).
  uint64_t n = 10;
  uint32_t parallelism = 0;  // 0 = server default
  /// Per-request deadline; 0 = server default, negative = already
  /// expired (deterministic DEADLINE_EXCEEDED, used by tests).
  int64_t deadline_ms = 0;
  bool bypass_cache = false;
  /// Read-your-writes floors for routed execution: min_epochs[i] is the
  /// minimum ingest epoch cluster shard i's answer must have been
  /// computed under (a client sets it from WireIngestAck::epoch /
  /// shard_index of its own acked writes). Shards beyond the vector (or
  /// an empty vector) have no floor. Non-routed servers ignore it.
  std::vector<uint64_t> min_epochs;
};

struct WireAnswer {
  cost::Cost cost = 0;
  doc::NodeId root = 0;
  /// Root of the document subtree containing `root` (the answer's
  /// child-of-super-root ancestor), so clients can group hits per
  /// document without holding the tree.
  doc::NodeId doc = 0;
};

/// kQueryResponse payload.
struct WireResponse {
  /// util::StatusCode on the wire as its integer value.
  uint32_t status_code = 0;
  std::string status_message;
  bool truncated = false;
  bool cache_hit = false;
  /// One or more shards were unreachable when a distributed backend
  /// answered: `answers` covers only the shards that responded (listed
  /// nowhere), `missing_shards` names the holes. Degraded answers are
  /// never cached anywhere — a repeat of the query re-asks the cluster.
  bool degraded = false;
  std::vector<uint32_t> missing_shards;
  /// Mutable-corpus servers: ingest epoch of the snapshot this response
  /// was evaluated against (0 elsewhere). An ingesting client compares
  /// it with WireIngestAck::epoch to tell whether its write is visible.
  uint64_t backend_epoch = 0;
  std::vector<WireAnswer> answers;
};

/// kShardQuery payload: one shard-scoped evaluation. The router fans
/// one client query out as N of these; `cost_bound` is its snapshot of
/// the shared inclusive skeleton-cost bound (cost::kInfinite = none),
/// letting a shard prune exactly like in-process scatter-gather.
struct WireShardQuery {
  std::string query;
  engine::Strategy strategy = engine::Strategy::kSchema;
  /// Best-n bound; UINT64_MAX = all results.
  uint64_t n = 10;
  cost::Cost cost_bound = cost::kInfinite;
  /// Per-attempt deadline the shard enforces server-side; 0 = none.
  int64_t deadline_ms = 0;
};

/// kShardAnswer payload. Roots (and docs) are shard-local preorder
/// ids; the router translates them through its DocSpan table after
/// checking `fingerprint` against its own layout.
struct WireShardAnswer {
  uint32_t status_code = 0;
  std::string status_message;
  /// The serving shard's layout fingerprint and index: a mismatch with
  /// the router's layout means the processes were built from different
  /// corpora/partitions and local ids cannot be translated.
  uint32_t fingerprint = 0;
  uint32_t shard_index = 0;
  /// Local n-th answer cost when a full n answers came back (a valid
  /// global inclusive bound: the global n-th answer costs no more);
  /// cost::kInfinite otherwise. Routers CAS-min their shared bound.
  cost::Cost achieved_bound = cost::kInfinite;
  /// Server-side deadline fired: `answers` is a correct but short
  /// prefix — useless for a global merge, so routers treat it as a
  /// failed attempt.
  bool truncated = false;
  /// Mutable shard servers: ingest epoch of the snapshot this answer
  /// was evaluated on (0 from static servers). The router translates
  /// the local ids through a manifest slice of exactly this epoch —
  /// never through a mismatched one (removals renumber local ids).
  uint64_t backend_epoch = 0;
  std::vector<WireAnswer> answers;
};

/// kPong payload.
struct WirePong {
  uint32_t fingerprint = 0;
  uint32_t shard_index = 0;
  /// Mutable shard servers: current snapshot epoch (0 elsewhere), so a
  /// health probe doubles as an epoch-staleness check.
  uint64_t epoch = 0;
};

/// kIngest payload.
struct WireIngest {
  enum class Op : uint32_t { kAdd = 1, kRemove = 2 };
  Op op = Op::kAdd;
  /// kAdd: the document, complete XML.
  std::string xml;
  /// kRemove: the document's global root id (WireIngestAck::doc_root of
  /// the add, or WireAnswer::doc of a query hit).
  doc::NodeId doc_root = 0;
  /// kAdd, cluster mode: the global preorder id the document's root
  /// must get, assigned by the router that owns the cluster-wide id
  /// space. 0 = the server assigns its own next id (single-server
  /// ingest, the v3 behavior).
  doc::NodeId assigned_global = 0;
};

/// kIngestAck payload. Non-OK status_code means the mutation did NOT
/// happen (malformed XML, unknown document, poisoned shard, or a plain
/// immutable server), so resending it is always safe; the remaining
/// fields are meaningful only on OK. An OK ack means the mutation is
/// durable even when it is not yet visible (see `epoch`).
struct WireIngestAck {
  uint32_t status_code = 0;
  std::string status_message;
  /// Durable WAL sequence number on the owning shard.
  uint64_t seq = 0;
  /// Corpus epoch after the mutation; any query response whose
  /// backend_epoch is >= this value sees the mutation.
  uint64_t epoch = 0;
  doc::NodeId doc_root = 0;
  uint32_t shard_index = 0;
  uint32_t length = 0;  // nodes in the document subtree (kAdd)
};

/// kManifestFetch payload.
struct WireManifestFetch {
  /// Also register this connection for kManifestDelta pushes (the reply
  /// slice is then the subscription's starting state).
  bool subscribe = false;
};

/// kManifestSlice payload: one shard server's complete manifest slice —
/// the DocSpan table and epoch of the snapshot it currently answers
/// from. Spans are sorted by increasing local AND global start (the
/// ShardedDatabase invariant).
struct WireManifestSlice {
  uint32_t status_code = 0;
  std::string status_message;
  uint32_t shard_index = 0;
  /// Snapshot epoch the spans describe. Answers stamped with this epoch
  /// translate through these spans; any other epoch must not.
  uint64_t epoch = 0;
  /// Epoch-salted layout fingerprint of the same snapshot (diagnostics).
  uint32_t fingerprint = 0;
  std::vector<shard::DocSpan> spans;
};

/// kManifestDelta payload (server push, request_id 0): the slice
/// transition `prev_epoch -> epoch` caused by one published mutation.
/// A receiver applies it only when its slice sits exactly at
/// `prev_epoch`; any gap means missed deltas and forces a full fetch.
struct WireManifestDelta {
  enum class Op : uint32_t { kAdd = 1, kRemove = 2 };
  uint32_t shard_index = 0;
  uint64_t prev_epoch = 0;
  uint64_t epoch = 0;
  Op op = Op::kAdd;
  /// kAdd: the new document's span (appended past the current spans).
  /// kRemove: the removed document's span as it was in `prev_epoch`;
  /// spans after it shift their local_start down by `span.length` (the
  /// shard rebuilds its tree compactly on removal).
  shard::DocSpan span;
};

std::string EncodeManifestFetch(const WireManifestFetch& fetch);
util::Status DecodeManifestFetch(std::string_view payload,
                                 WireManifestFetch* out);

std::string EncodeManifestSlice(const WireManifestSlice& slice);
util::Status DecodeManifestSlice(std::string_view payload,
                                 WireManifestSlice* out);

std::string EncodeManifestDelta(const WireManifestDelta& delta);
util::Status DecodeManifestDelta(std::string_view payload,
                                 WireManifestDelta* out);

std::string EncodeQueryRequest(const WireRequest& request);
util::Status DecodeQueryRequest(std::string_view payload, WireRequest* out);

std::string EncodeQueryResponse(const WireResponse& response);
util::Status DecodeQueryResponse(std::string_view payload, WireResponse* out);

std::string EncodeShardQuery(const WireShardQuery& query);
util::Status DecodeShardQuery(std::string_view payload, WireShardQuery* out);

std::string EncodeShardAnswer(const WireShardAnswer& answer);
util::Status DecodeShardAnswer(std::string_view payload, WireShardAnswer* out);

std::string EncodePong(const WirePong& pong);
util::Status DecodePong(std::string_view payload, WirePong* out);

std::string EncodeIngest(const WireIngest& ingest);
util::Status DecodeIngest(std::string_view payload, WireIngest* out);

std::string EncodeIngestAck(const WireIngestAck& ack);
util::Status DecodeIngestAck(std::string_view payload, WireIngestAck* out);

}  // namespace approxql::net

#endif  // APPROXQL_NET_WIRE_H_
