#include "net/wire.h"

#include <cstring>
#include <limits>

#include "util/crc32.h"
#include "util/varint.h"

namespace approxql::net {

namespace {

constexpr size_t kLengthBytes = 4;
constexpr size_t kCrcBytes = 4;

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

uint32_t GetFixed32(const char* data) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[3])) << 24;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  util::PutVarint64(dst, value.size());
  dst->append(value);
}

util::Status GetLengthPrefixed(util::VarintReader* reader, std::string* out) {
  uint64_t size = 0;
  RETURN_IF_ERROR(reader->GetVarint64(&size));
  if (size > reader->remaining()) {
    return util::Status::Corruption("length-prefixed field overruns payload");
  }
  std::string_view bytes;
  RETURN_IF_ERROR(reader->GetBytes(static_cast<size_t>(size), &bytes));
  out->assign(bytes);
  return util::Status::OK();
}

}  // namespace

util::Status EncodeFrame(const FrameHeader& header, std::string_view payload,
                         std::string* out, size_t max_frame_bytes) {
  std::string body;
  body.reserve(payload.size() + 16);
  util::PutVarint32(&body, header.version);
  util::PutVarint64(&body, header.request_id);
  util::PutVarint32(&body, header.type);
  body.append(payload);
  const uint64_t length = static_cast<uint64_t>(body.size()) + kCrcBytes;
  if (length > max_frame_bytes ||
      length > std::numeric_limits<uint32_t>::max()) {
    return util::Status::ResourceExhausted(
        "frame body " + std::to_string(length) + " bytes exceeds limit " +
        std::to_string(max_frame_bytes));
  }
  PutFixed32(out, static_cast<uint32_t>(length));
  out->append(body);
  PutFixed32(out, util::Crc32c(body));
  return util::Status::OK();
}

FrameDecoder::Next FrameDecoder::Take(FrameHeader* header,
                                      std::string* payload,
                                      util::Status* error) {
  if (poisoned_) {
    *error = util::Status::Corruption("frame decoder poisoned by prior error");
    return Next::kError;
  }
  if (buffer_.size() < kLengthBytes) return Next::kNeedMore;
  const uint64_t length = GetFixed32(buffer_.data());
  if (length < kCrcBytes + 3 ||  // minimum body: three 1-byte varints
      length > max_frame_bytes_) {
    poisoned_ = true;
    *error = util::Status::Corruption(
        "frame length " + std::to_string(length) + " outside [7, " +
        std::to_string(max_frame_bytes_) + "]");
    return Next::kError;
  }
  if (buffer_.size() < kLengthBytes + length) return Next::kNeedMore;

  const std::string_view body(buffer_.data() + kLengthBytes,
                              static_cast<size_t>(length) - kCrcBytes);
  const uint32_t expected_crc =
      GetFixed32(buffer_.data() + kLengthBytes + body.size());
  if (util::Crc32c(body) != expected_crc) {
    poisoned_ = true;
    *error = util::Status::Corruption("frame CRC mismatch");
    return Next::kError;
  }

  util::VarintReader reader(body);
  util::Status st = reader.GetVarint32(&header->version);
  if (st.ok()) st = reader.GetVarint64(&header->request_id);
  if (st.ok()) st = reader.GetVarint32(&header->type);
  if (!st.ok()) {
    poisoned_ = true;
    *error = util::Status::Corruption("frame header: " + st.message());
    return Next::kError;
  }
  if (header->version != kProtocolVersion) {
    poisoned_ = true;
    *error = util::Status::Corruption(
        "protocol version " + std::to_string(header->version) +
        " (expected " + std::to_string(kProtocolVersion) + ")");
    return Next::kError;
  }
  payload->assign(body.substr(reader.position()));
  buffer_.erase(0, kLengthBytes + static_cast<size_t>(length));
  return Next::kFrame;
}

std::string EncodeQueryRequest(const WireRequest& request) {
  std::string out;
  PutLengthPrefixed(&out, request.query);
  util::PutVarint32(&out, static_cast<uint32_t>(request.strategy));
  util::PutVarint64(&out, request.n);
  util::PutVarint32(&out, request.parallelism);
  util::PutVarint64(&out, util::ZigZagEncode(request.deadline_ms));
  util::PutVarint32(&out, request.bypass_cache ? 1 : 0);
  util::PutVarint64(&out, request.min_epochs.size());
  for (uint64_t epoch : request.min_epochs) {
    util::PutVarint64(&out, epoch);
  }
  return out;
}

util::Status DecodeQueryRequest(std::string_view payload, WireRequest* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->query));
  uint32_t strategy = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&strategy));
  switch (strategy) {
    case static_cast<uint32_t>(engine::Strategy::kDirect):
    case static_cast<uint32_t>(engine::Strategy::kSchema):
    case static_cast<uint32_t>(engine::Strategy::kFullScan):
      out->strategy = static_cast<engine::Strategy>(strategy);
      break;
    default:
      return util::Status::InvalidArgument("unknown strategy " +
                                           std::to_string(strategy));
  }
  RETURN_IF_ERROR(reader.GetVarint64(&out->n));
  RETURN_IF_ERROR(reader.GetVarint32(&out->parallelism));
  uint64_t deadline = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&deadline));
  out->deadline_ms = util::ZigZagDecode(deadline);
  uint32_t bypass = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&bypass));
  out->bypass_cache = bypass != 0;
  uint64_t floors = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&floors));
  // Each floor is at least 1 byte.
  if (floors > reader.remaining()) {
    return util::Status::Corruption("min-epoch count overruns payload");
  }
  out->min_epochs.clear();
  out->min_epochs.reserve(static_cast<size_t>(floors));
  for (uint64_t i = 0; i < floors; ++i) {
    uint64_t epoch = 0;
    RETURN_IF_ERROR(reader.GetVarint64(&epoch));
    out->min_epochs.push_back(epoch);
  }
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after query request");
  }
  return util::Status::OK();
}

std::string EncodeQueryResponse(const WireResponse& response) {
  std::string out;
  util::PutVarint32(&out, response.status_code);
  PutLengthPrefixed(&out, response.status_message);
  util::PutVarint32(&out, (response.truncated ? 1 : 0) |
                              (response.cache_hit ? 2 : 0) |
                              (response.degraded ? 4 : 0));
  util::PutVarint64(&out, response.missing_shards.size());
  for (uint32_t shard : response.missing_shards) {
    util::PutVarint32(&out, shard);
  }
  util::PutVarint64(&out, response.backend_epoch);
  util::PutVarint64(&out, response.answers.size());
  for (const WireAnswer& answer : response.answers) {
    util::PutVarint64(&out, util::ZigZagEncode(answer.cost));
    util::PutVarint32(&out, answer.root);
    util::PutVarint32(&out, answer.doc);
  }
  return out;
}

util::Status DecodeQueryResponse(std::string_view payload, WireResponse* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->status_code));
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->status_message));
  uint32_t flags = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&flags));
  out->truncated = (flags & 1) != 0;
  out->cache_hit = (flags & 2) != 0;
  out->degraded = (flags & 4) != 0;
  uint64_t missing = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&missing));
  // Each missing-shard id is at least 1 byte.
  if (missing > reader.remaining()) {
    return util::Status::Corruption("missing-shard count overruns payload");
  }
  out->missing_shards.clear();
  out->missing_shards.reserve(static_cast<size_t>(missing));
  for (uint64_t i = 0; i < missing; ++i) {
    uint32_t shard = 0;
    RETURN_IF_ERROR(reader.GetVarint32(&shard));
    out->missing_shards.push_back(shard);
  }
  RETURN_IF_ERROR(reader.GetVarint64(&out->backend_epoch));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&count));
  // Each answer is at least 3 bytes; a count beyond that bound cannot
  // be satisfied by the remaining payload.
  if (count > reader.remaining() / 3) {
    return util::Status::Corruption("answer count overruns payload");
  }
  out->answers.clear();
  out->answers.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireAnswer answer;
    uint64_t cost = 0;
    RETURN_IF_ERROR(reader.GetVarint64(&cost));
    answer.cost = util::ZigZagDecode(cost);
    RETURN_IF_ERROR(reader.GetVarint32(&answer.root));
    RETURN_IF_ERROR(reader.GetVarint32(&answer.doc));
    out->answers.push_back(answer);
  }
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after query response");
  }
  return util::Status::OK();
}

namespace {

util::Status DecodeStrategy(uint32_t raw, engine::Strategy* out) {
  switch (raw) {
    case static_cast<uint32_t>(engine::Strategy::kDirect):
    case static_cast<uint32_t>(engine::Strategy::kSchema):
    case static_cast<uint32_t>(engine::Strategy::kFullScan):
      *out = static_cast<engine::Strategy>(raw);
      return util::Status::OK();
    default:
      return util::Status::InvalidArgument("unknown strategy " +
                                           std::to_string(raw));
  }
}

}  // namespace

std::string EncodeShardQuery(const WireShardQuery& query) {
  std::string out;
  PutLengthPrefixed(&out, query.query);
  util::PutVarint32(&out, static_cast<uint32_t>(query.strategy));
  util::PutVarint64(&out, query.n);
  util::PutVarint64(&out, util::ZigZagEncode(query.cost_bound));
  util::PutVarint64(&out, util::ZigZagEncode(query.deadline_ms));
  return out;
}

util::Status DecodeShardQuery(std::string_view payload, WireShardQuery* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->query));
  uint32_t strategy = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&strategy));
  RETURN_IF_ERROR(DecodeStrategy(strategy, &out->strategy));
  RETURN_IF_ERROR(reader.GetVarint64(&out->n));
  uint64_t bound = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&bound));
  out->cost_bound = util::ZigZagDecode(bound);
  uint64_t deadline = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&deadline));
  out->deadline_ms = util::ZigZagDecode(deadline);
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after shard query");
  }
  return util::Status::OK();
}

std::string EncodeShardAnswer(const WireShardAnswer& answer) {
  std::string out;
  util::PutVarint32(&out, answer.status_code);
  PutLengthPrefixed(&out, answer.status_message);
  util::PutVarint32(&out, answer.fingerprint);
  util::PutVarint32(&out, answer.shard_index);
  util::PutVarint64(&out, util::ZigZagEncode(answer.achieved_bound));
  util::PutVarint32(&out, answer.truncated ? 1 : 0);
  util::PutVarint64(&out, answer.backend_epoch);
  util::PutVarint64(&out, answer.answers.size());
  for (const WireAnswer& hit : answer.answers) {
    util::PutVarint64(&out, util::ZigZagEncode(hit.cost));
    util::PutVarint32(&out, hit.root);
  }
  return out;
}

util::Status DecodeShardAnswer(std::string_view payload,
                               WireShardAnswer* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->status_code));
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->status_message));
  RETURN_IF_ERROR(reader.GetVarint32(&out->fingerprint));
  RETURN_IF_ERROR(reader.GetVarint32(&out->shard_index));
  uint64_t bound = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&bound));
  out->achieved_bound = util::ZigZagDecode(bound);
  uint32_t flags = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&flags));
  out->truncated = (flags & 1) != 0;
  RETURN_IF_ERROR(reader.GetVarint64(&out->backend_epoch));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&count));
  // Each answer is at least 2 bytes (cost varint + root varint).
  if (count > reader.remaining() / 2) {
    return util::Status::Corruption("answer count overruns payload");
  }
  out->answers.clear();
  out->answers.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireAnswer hit;
    uint64_t cost = 0;
    RETURN_IF_ERROR(reader.GetVarint64(&cost));
    hit.cost = util::ZigZagDecode(cost);
    RETURN_IF_ERROR(reader.GetVarint32(&hit.root));
    out->answers.push_back(hit);
  }
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after shard answer");
  }
  return util::Status::OK();
}

std::string EncodePong(const WirePong& pong) {
  std::string out;
  util::PutVarint32(&out, pong.fingerprint);
  util::PutVarint32(&out, pong.shard_index);
  util::PutVarint64(&out, pong.epoch);
  return out;
}

util::Status DecodePong(std::string_view payload, WirePong* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->fingerprint));
  RETURN_IF_ERROR(reader.GetVarint32(&out->shard_index));
  RETURN_IF_ERROR(reader.GetVarint64(&out->epoch));
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after pong");
  }
  return util::Status::OK();
}

std::string EncodeIngest(const WireIngest& ingest) {
  std::string out;
  util::PutVarint32(&out, static_cast<uint32_t>(ingest.op));
  PutLengthPrefixed(&out, ingest.xml);
  util::PutVarint32(&out, ingest.doc_root);
  util::PutVarint32(&out, ingest.assigned_global);
  return out;
}

util::Status DecodeIngest(std::string_view payload, WireIngest* out) {
  util::VarintReader reader(payload);
  uint32_t op = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&op));
  if (op != static_cast<uint32_t>(WireIngest::Op::kAdd) &&
      op != static_cast<uint32_t>(WireIngest::Op::kRemove)) {
    return util::Status::Corruption("unknown ingest op " + std::to_string(op));
  }
  out->op = static_cast<WireIngest::Op>(op);
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->xml));
  RETURN_IF_ERROR(reader.GetVarint32(&out->doc_root));
  RETURN_IF_ERROR(reader.GetVarint32(&out->assigned_global));
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after ingest");
  }
  return util::Status::OK();
}

std::string EncodeIngestAck(const WireIngestAck& ack) {
  std::string out;
  util::PutVarint32(&out, ack.status_code);
  PutLengthPrefixed(&out, ack.status_message);
  util::PutVarint64(&out, ack.seq);
  util::PutVarint64(&out, ack.epoch);
  util::PutVarint32(&out, ack.doc_root);
  util::PutVarint32(&out, ack.shard_index);
  util::PutVarint32(&out, ack.length);
  return out;
}

util::Status DecodeIngestAck(std::string_view payload, WireIngestAck* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->status_code));
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->status_message));
  RETURN_IF_ERROR(reader.GetVarint64(&out->seq));
  RETURN_IF_ERROR(reader.GetVarint64(&out->epoch));
  RETURN_IF_ERROR(reader.GetVarint32(&out->doc_root));
  RETURN_IF_ERROR(reader.GetVarint32(&out->shard_index));
  RETURN_IF_ERROR(reader.GetVarint32(&out->length));
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after ingest ack");
  }
  return util::Status::OK();
}

std::string EncodeManifestFetch(const WireManifestFetch& fetch) {
  std::string out;
  util::PutVarint32(&out, fetch.subscribe ? 1 : 0);
  return out;
}

util::Status DecodeManifestFetch(std::string_view payload,
                                 WireManifestFetch* out) {
  util::VarintReader reader(payload);
  uint32_t subscribe = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&subscribe));
  out->subscribe = subscribe != 0;
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after manifest fetch");
  }
  return util::Status::OK();
}

std::string EncodeManifestSlice(const WireManifestSlice& slice) {
  std::string out;
  util::PutVarint32(&out, slice.status_code);
  PutLengthPrefixed(&out, slice.status_message);
  util::PutVarint32(&out, slice.shard_index);
  util::PutVarint64(&out, slice.epoch);
  util::PutVarint32(&out, slice.fingerprint);
  util::PutVarint64(&out, slice.spans.size());
  for (const shard::DocSpan& span : slice.spans) {
    util::PutVarint32(&out, span.local_start);
    util::PutVarint32(&out, span.global_start);
    util::PutVarint32(&out, span.length);
  }
  return out;
}

util::Status DecodeManifestSlice(std::string_view payload,
                                 WireManifestSlice* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->status_code));
  RETURN_IF_ERROR(GetLengthPrefixed(&reader, &out->status_message));
  RETURN_IF_ERROR(reader.GetVarint32(&out->shard_index));
  RETURN_IF_ERROR(reader.GetVarint64(&out->epoch));
  RETURN_IF_ERROR(reader.GetVarint32(&out->fingerprint));
  uint64_t count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&count));
  // Each span is at least 3 bytes (three varints).
  if (count > reader.remaining() / 3) {
    return util::Status::Corruption("span count overruns payload");
  }
  out->spans.clear();
  out->spans.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    shard::DocSpan span;
    RETURN_IF_ERROR(reader.GetVarint32(&span.local_start));
    RETURN_IF_ERROR(reader.GetVarint32(&span.global_start));
    RETURN_IF_ERROR(reader.GetVarint32(&span.length));
    out->spans.push_back(span);
  }
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after manifest slice");
  }
  return util::Status::OK();
}

std::string EncodeManifestDelta(const WireManifestDelta& delta) {
  std::string out;
  util::PutVarint32(&out, delta.shard_index);
  util::PutVarint64(&out, delta.prev_epoch);
  util::PutVarint64(&out, delta.epoch);
  util::PutVarint32(&out, static_cast<uint32_t>(delta.op));
  util::PutVarint32(&out, delta.span.local_start);
  util::PutVarint32(&out, delta.span.global_start);
  util::PutVarint32(&out, delta.span.length);
  return out;
}

util::Status DecodeManifestDelta(std::string_view payload,
                                 WireManifestDelta* out) {
  util::VarintReader reader(payload);
  RETURN_IF_ERROR(reader.GetVarint32(&out->shard_index));
  RETURN_IF_ERROR(reader.GetVarint64(&out->prev_epoch));
  RETURN_IF_ERROR(reader.GetVarint64(&out->epoch));
  uint32_t op = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&op));
  if (op != static_cast<uint32_t>(WireManifestDelta::Op::kAdd) &&
      op != static_cast<uint32_t>(WireManifestDelta::Op::kRemove)) {
    return util::Status::Corruption("unknown manifest delta op " +
                                    std::to_string(op));
  }
  out->op = static_cast<WireManifestDelta::Op>(op);
  RETURN_IF_ERROR(reader.GetVarint32(&out->span.local_start));
  RETURN_IF_ERROR(reader.GetVarint32(&out->span.global_start));
  RETURN_IF_ERROR(reader.GetVarint32(&out->span.length));
  if (!reader.empty()) {
    return util::Status::Corruption("trailing bytes after manifest delta");
  }
  return util::Status::OK();
}

}  // namespace approxql::net
