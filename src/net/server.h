// An epoll-based TCP front end for service::QueryService: one event-
// loop thread multiplexes every connection (non-blocking accept, read,
// write), decodes wire frames (net/wire.h), and hands each query to
// QueryService::SubmitAsync — so all evaluation runs on the service's
// worker pool and its admission control applies unchanged. A pool
// rejection becomes a clean RESOURCE_EXHAUSTED response frame on the
// wire, never a dropped connection: wire clients observe exactly the
// backpressure in-process callers do.
//
// Connection lifecycle and failure containment:
//   - accept       → over max_connections: accepted then closed
//                    immediately (counted net_connections_rejected).
//   - read         → frames may arrive torn across reads or several
//                    per read; FrameDecoder buffers partials. Requests
//                    pipeline freely; responses carry the request id
//                    and may complete out of order.
//   - protocol     → a corrupt stream (bad CRC, oversized length, bad
//                    version) closes only that connection. An unknown
//                    message type in a *valid* frame fails only that
//                    request (kUnimplemented response).
//   - write        → responses are appended to a per-connection outbox
//                    by worker threads; the loop drains it with
//                    partial-write buffering and EPOLLOUT when the
//                    socket blocks.
//   - disconnect   → a client gone mid-request only discards that
//                    connection's pending responses; the evaluation
//                    itself finishes on the pool (queries are read-
//                    only) and its result is dropped.
//   - idle timeout → connections with no traffic and no in-flight
//                    requests for idle_timeout are closed.
//   - drain        → RequestDrain() (async-signal-safe; call it from a
//                    SIGTERM handler) stops accepting and stops
//                    reading, finishes all in-flight requests, flushes
//                    their responses, then closes everything and ends
//                    the loop. A peer that refuses to read its
//                    responses cannot hold the loop open forever:
//                    after drain_timeout the remaining connections are
//                    hard-closed.
//
// All socket writes use send(MSG_NOSIGNAL), so a peer that resets its
// connection between epoll_wait and a flush yields EPIPE (connection
// closed) instead of a process-killing SIGPIPE; embedders need not
// install a SIGPIPE handler.
#ifndef APPROXQL_NET_SERVER_H_
#define APPROXQL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "net/wire.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::shard {
class LayoutManifest;
class ShardedDatabase;
}  // namespace approxql::shard

namespace approxql::ingest {
class MutableCorpus;
}  // namespace approxql::ingest

namespace approxql::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the actual port with Server::port() after
  /// Start().
  uint16_t port = 0;
  size_t max_connections = 1024;
  /// Idle connections (no traffic, nothing in flight) are closed after
  /// this long; zero disables the sweep.
  std::chrono::milliseconds idle_timeout{60000};
  /// Upper bound on a graceful drain: connections that have not
  /// quiesced this long after the drain began are hard-closed (their
  /// in-flight evaluations still retire on the pool, results dropped).
  /// Zero means no bound.
  std::chrono::milliseconds drain_timeout{10000};
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Shard-serving mode: this process fronts exactly one shard of a
  /// partitioned corpus, so the server additionally answers
  /// kShardQuery (shard-scoped execution whose answer roots are
  /// LOCAL preorder ids, carrying the caller's cost bound into the
  /// evaluation) and kPing (health probe, answered inline by the
  /// event loop so a saturated worker pool cannot look dead). The
  /// fingerprint and index are stamped into every kShardAnswer/kPong
  /// so a router detects topology mismatches instead of mistranslating
  /// local ids.
  struct ShardServing {
    bool enabled = false;
    uint32_t fingerprint = 0;  ///< the partition layout's fingerprint
    uint32_t shard_index = 0;
  };
  ShardServing shard;
};

class Server {
 public:
  /// `service` executes the queries; `db` is the same database the
  /// service fronts (used only to resolve each answer's document root
  /// for the wire response). Both must outlive the server.
  Server(service::QueryService& service, const engine::Database& db,
         ServerOptions options);
  /// Sharded-backend flavor: answer roots are global ids, resolved
  /// through the shard layout's document table.
  Server(service::QueryService& service, const shard::ShardedDatabase& db,
         ServerOptions options);
  /// Router-host flavor: the process holds no corpus at all, only a
  /// layout manifest; answer roots resolve through its span tables.
  /// `manifest` must outlive the server.
  Server(service::QueryService& service,
         const shard::LayoutManifest& manifest, ServerOptions options);
  /// Mutable-corpus flavor: queries resolve document roots through the
  /// corpus's current generation, and the server additionally answers
  /// kIngest (add/remove a document; acked only after the mutation is
  /// durable and visible), kManifestFetch (the current generation's
  /// DocSpan slice + epoch, optionally subscribing the connection to
  /// kManifestDelta pushes after every publish), and — in shard-serving
  /// mode — stamps each kShardAnswer with its snapshot epoch and
  /// translates answer roots to shard-local preorders. `corpus` must
  /// outlive the server, be the same one `service` fronts, and have no
  /// other publish listener (the server owns the corpus's listener slot
  /// for the duration).
  Server(service::QueryService& service, ingest::MutableCorpus& corpus,
         ServerOptions options);
  /// Custom-resolver flavor (e.g. a cluster router host, whose answer
  /// roots resolve through the router's manifest view): `doc_root_of`
  /// maps an answer root to its containing document root and must be
  /// thread-safe (worker threads call it concurrently) and outlive the
  /// server.
  Server(service::QueryService& service,
         std::function<doc::NodeId(doc::NodeId)> doc_root_of,
         ServerOptions options);
  /// Equivalent to Shutdown(/*drain=*/false).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event-loop thread. Fails (IoError)
  /// if the address/port cannot be bound.
  util::Status Start();

  /// Stops the server and joins the loop thread. drain=true completes
  /// and flushes all in-flight requests first; drain=false discards
  /// them (their evaluations still finish on the pool, results are
  /// dropped). Idempotent.
  void Shutdown(bool drain);

  /// Begins a graceful drain without blocking. Async-signal-safe: only
  /// an atomic store and an eventfd write, so a SIGTERM handler may
  /// call it directly. Use Wait() (or Shutdown) to join afterwards.
  void RequestDrain();

  /// Blocks until the event loop exits (e.g. after RequestDrain) and
  /// joins its thread.
  void Wait();

  /// The bound port; valid after a successful Start().
  uint16_t port() const { return port_; }

  struct Stats {
    int64_t connections_open = 0;
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  Stats GetStats() const;

  /// The service's dump followed by this server's net_* metrics — the
  /// payload of a kMetricsDump wire request.
  std::string DumpMetrics() const;

 private:
  struct Connection;

  /// Joins the loop thread exactly once, without holding lifecycle_mu_
  /// across the join — concurrent Wait/Shutdown callers either perform
  /// the join or wait on lifecycle_cv_ for whoever does.
  void JoinLoop();
  void Loop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const FrameHeader& header, std::string payload);
  /// kShardQuery handling (shard-serving mode only): decode, run on the
  /// service's pool with the frame's cost bound wired into the schema
  /// evaluation, answer with a kShardAnswer of local preorder roots.
  void DispatchShardQuery(const std::shared_ptr<Connection>& conn,
                          const FrameHeader& header,
                          const std::string& payload);
  /// kIngest handling. Runs the corpus mutation inline on the event
  /// loop: the ack must only be enqueued once the mutation is durable,
  /// ingest is serialized by the corpus anyway, and in-flight queries
  /// keep executing on the worker pool meanwhile. Non-mutable servers
  /// ack with kUnimplemented.
  void DispatchIngest(const std::shared_ptr<Connection>& conn,
                      const FrameHeader& header, const std::string& payload);
  /// kManifestFetch handling. Answered inline on the event loop with
  /// the corpus's current slice; subscribe=true registers the
  /// connection for kManifestDelta pushes BEFORE the snapshot is taken
  /// (ingest also runs inline on this loop, so every mutation published
  /// after the reply slice reaches the subscriber as a delta — the
  /// slice and the stream have no gap between them). Non-mutable
  /// servers answer a slice carrying kUnimplemented.
  void DispatchManifestFetch(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& header,
                             const std::string& payload);
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       const FrameHeader& header, std::string_view payload);
  /// Moves the outbox into the write buffer and writes what the socket
  /// accepts; arms/disarms EPOLLOUT as needed.
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void UpdateEpoll(Connection* conn, bool want_write, bool want_read);
  void CloseConnection(int fd, const char* reason);
  void SweepIdle();
  /// Worker threads call this (via the completion callback) to get the
  /// loop's attention for a connection with a freshly filled outbox.
  void NotifyWritable(const std::shared_ptr<Connection>& conn);
  doc::NodeId DocRootOf(doc::NodeId node) const {
    return doc_root_of_(node);
  }

  service::QueryService& service_;
  /// Set by the mutable-corpus constructor; enables kIngest.
  ingest::MutableCorpus* corpus_ = nullptr;
  /// Maps an answer root to its containing document root — the only
  /// thing the wire layer needs from the corpus, abstracted so single
  /// and sharded backends plug in alike. Must be thread-safe (worker
  /// threads call it concurrently).
  const std::function<doc::NodeId(doc::NodeId)> doc_root_of_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  util::Mutex lifecycle_mu_;
  util::CondVar lifecycle_cv_;  // signaled when joined_ flips
  bool started_ GUARDED_BY(lifecycle_mu_) = false;
  /// A thread is blocked in loop_thread_.join().
  bool joining_ GUARDED_BY(lifecycle_mu_) = false;
  bool joined_ GUARDED_BY(lifecycle_mu_) = false;
  bool fds_closed_ GUARDED_BY(lifecycle_mu_) = false;

  /// Loop-thread-only: fd → connection.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  /// Connections whose outbox gained data from a worker thread since
  /// the loop last looked.
  util::Mutex pending_mu_;
  std::vector<std::shared_ptr<Connection>> pending_writes_
      GUARDED_BY(pending_mu_);

  /// Connections subscribed to kManifestDelta pushes (weak: a closed
  /// connection just drops out of the registry on the next broadcast).
  util::Mutex subscribers_mu_;
  std::vector<std::weak_ptr<Connection>> subscribers_
      GUARDED_BY(subscribers_mu_);

  /// SubmitAsync completion callbacks capture `this`; Shutdown waits
  /// for every one of them to finish (even with drain=false) so no
  /// callback ever runs against a destroyed server. The count stays
  /// atomic (completions decrement it under outstanding_mu_, but the
  /// drain check in Loop reads it lock-free).
  std::atomic<int64_t> outstanding_{0};
  // lint:allow-unguarded-mutex pure condvar handshake; the counter it
  // synchronizes stays atomic so Loop's drain check can read lock-free.
  util::Mutex outstanding_mu_;
  util::CondVar outstanding_cv_;

  service::MetricsRegistry metrics_;
  service::Gauge* connections_open_;
  service::Counter* connections_accepted_;
  service::Counter* connections_rejected_;
  service::Counter* requests_;
  service::Counter* protocol_errors_;
  service::Counter* bytes_read_;
  service::Counter* bytes_written_;
  service::LatencyHistogram* wire_latency_us_;
};

}  // namespace approxql::net

#endif  // APPROXQL_NET_SERVER_H_
