// Asynchronous multiplexed client for net::Server's wire protocol: one
// TCP connection, many outstanding requests, each with its own deadline
// and completion callback. A single IO thread owns the socket and runs
// a poll() loop; submissions from any thread are queued under a mutex
// and the loop is woken through a pipe. Responses are matched to
// requests by request_id, so the server's workers may complete them in
// any order (this is what the frame header's request_id exists for).
//
// Failure model, designed for the shard router on top:
//   - a per-call deadline fires   -> that call fails kDeadlineExceeded;
//     the connection stays up and a late response is dropped silently.
//   - the connection dies         -> every request that was written (or
//     partially written) fails kUnavailable; requests still queued and
//     never sent stay queued and go out on the next connection.
//   - reconnection is automatic with jittered exponential backoff; the
//     client never gives up on its endpoint — callers decide when an
//     endpoint is dead (see dist::ShardHealth), the transport just
//     reports each failure honestly.
//
// Callbacks run on the IO thread. They must not block, but they may
// submit further Calls (the submit path never waits on the IO thread).
#ifndef APPROXQL_NET_ASYNC_CLIENT_H_
#define APPROXQL_NET_ASYNC_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "net/wire.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::net {

struct AsyncClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bound on each (re)connection attempt; <= 0 waits forever.
  int connect_timeout_ms = 5000;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Jittered exponential backoff between reconnection attempts:
  /// uniform in [base/2, min(cap, base << attempt)].
  int reconnect_backoff_ms = 20;
  int reconnect_backoff_cap_ms = 1000;
  /// Server-push frames (request_id 0 — never assigned to a Call) are
  /// handed here; without a handler they are dropped. Runs on the IO
  /// thread under the same rules as completion callbacks: never block,
  /// submitting further Calls is fine.
  std::function<void(const FrameHeader&, std::string_view payload)> on_push;
};

/// Completion: the response frame's header and payload, or the status
/// explaining why no response will come.
using AsyncCallback =
    std::function<void(util::Result<std::pair<FrameHeader, std::string>>)>;

class AsyncClient {
 public:
  explicit AsyncClient(AsyncClientOptions options);
  ~AsyncClient();

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  /// Spawns the IO thread. Does not require the endpoint to be up —
  /// the first Calls wait out the connect/backoff cycle against their
  /// own deadlines. Fails only on resource errors (pipe/thread).
  util::Status Start();

  /// Stops the IO thread and joins it. Every request still outstanding
  /// fails kUnavailable (callbacks run on the IO thread before it
  /// exits). Idempotent; the destructor calls it.
  void Shutdown();

  /// Submits one request. `deadline_ms` <= 0 means no deadline. `done`
  /// is invoked exactly once, on the IO thread — except after Shutdown,
  /// when it is invoked inline with kUnavailable. Thread-safe.
  void Call(MessageType type, std::string payload, int deadline_ms,
            AsyncCallback done);

  struct Stats {
    uint64_t sent = 0;        // requests written to a socket
    uint64_t completed = 0;   // responses delivered
    uint64_t failed = 0;      // failed for any reason but the deadline
    uint64_t timed_out = 0;   // failed kDeadlineExceeded
    uint64_t reconnects = 0;  // successful connects after the first
  };
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    uint64_t id = 0;
    MessageType type = MessageType::kQueryRequest;
    std::string payload;
    bool has_deadline = false;
    Clock::time_point deadline;
    AsyncCallback done;
    /// Bytes of this request hit the socket: a connection loss now
    /// fails it (the server may or may not have seen it); before that,
    /// a loss just leaves it queued for the next connection.
    bool written = false;
  };

  void IoLoop();
  /// Begins a non-blocking connect (or completes one already in
  /// flight). Never blocks the loop: progress is driven by POLLOUT.
  void StartConnect();
  void FinishConnect();
  /// Tears down the connection, fails every written request with
  /// `cause`, and schedules the next connect attempt.
  void DropConnection(const util::Status& cause);
  void EncodeWaiting();
  void FlushOutbox();
  void ReadSocket();
  void ExpireDeadlines(Clock::time_point now);
  /// Next instant the loop must wake even without IO (deadline expiry
  /// or backoff elapsing); Clock::time_point::max() when none.
  Clock::time_point NextWakeup() const;
  void Complete(Request&& request,
                util::Result<std::pair<FrameHeader, std::string>> result);

  AsyncClientOptions options_;

  util::Mutex mu_;
  std::deque<Request> submitted_ GUARDED_BY(mu_);
  bool stopped_ GUARDED_BY(mu_) = true;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;

  // Everything below is touched only by the IO thread.
  std::thread io_thread_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  // written by Call/Shutdown under mu_
  int fd_ = -1;
  bool connecting_ = false;
  bool connected_once_ = false;
  Clock::time_point connect_deadline_;
  Clock::time_point next_connect_;
  int connect_attempt_ = 0;
  std::map<uint64_t, Request> inflight_;  // keyed by request id
  std::string outbox_;
  FrameDecoder decoder_;
  util::Rng backoff_rng_;

  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace approxql::net

#endif  // APPROXQL_NET_ASYNC_CLIENT_H_
