#include "net/client.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/socket.h"

namespace approxql::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds before `deadline`, clamped for poll();
/// returns -1 (infinite) when no deadline applies.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000) return 1'000'000;
  return static_cast<int>(left.count());
}

std::atomic<uint64_t> g_total_reconnects{0};

}  // namespace

uint64_t TotalClientReconnects() {
  return g_total_reconnects.load(std::memory_order_relaxed);
}

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      // Jitter must differ across client instances; fold in this
      // object's address and the clock so a fleet started from one
      // seed doesn't back off in lockstep.
      backoff_rng_(reinterpret_cast<uintptr_t>(this) ^
                   static_cast<uint64_t>(
                       Clock::now().time_since_epoch().count())),
      decoder_(options_.max_frame_bytes) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.Reset();
}

util::Status Client::Connect() {
  Close();
  // ConnectTcp returns the fd already blocking (all further waiting is
  // poll()-driven in ReadFrame; SendFrame relies on blocking send).
  ASSIGN_OR_RETURN(fd_, ConnectTcp(options_.host, options_.port,
                                   options_.connect_timeout_ms));
  return util::Status::OK();
}

util::Status Client::SendFrame(uint64_t request_id, MessageType type,
                               const std::string& payload) {
  FrameHeader header{kProtocolVersion, request_id,
                     static_cast<uint32_t>(type)};
  std::string frame;
  RETURN_IF_ERROR(EncodeFrame(header, payload, &frame,
                              options_.max_frame_bytes));
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return util::Status::IoError(std::string("send: ") + strerror(errno));
  }
  return util::Status::OK();
}

util::Result<std::pair<FrameHeader, std::string>> Client::ReadFrame(
    int deadline_ms) {
  const bool has_deadline = deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  char buf[16384];
  for (;;) {
    FrameHeader header;
    std::string payload;
    util::Status error;
    switch (decoder_.Take(&header, &payload, &error)) {
      case FrameDecoder::Next::kFrame:
        return std::make_pair(header, std::move(payload));
      case FrameDecoder::Next::kError:
        Close();
        return error;
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, RemainingMs(has_deadline, deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      Close();
      return util::Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if (ready == 0) {
      // The response may still arrive later, but this call's caller has
      // given up; drop the connection rather than resynchronize.
      Close();
      return util::Status::DeadlineExceeded("no response within " +
                                            std::to_string(deadline_ms) +
                                            " ms");
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    if (n == 0) {
      return util::Status::Unavailable("server closed the connection");
    }
    return util::Status::IoError(std::string("recv: ") + strerror(errno));
  }
}

util::Result<std::pair<FrameHeader, std::string>> Client::RoundTrip(
    MessageType type, const std::string& payload, int deadline_ms) {
  uint64_t request_id = next_request_id_++;
  bool reconnected = false;
  if (fd_ < 0) {
    RETURN_IF_ERROR(Connect());
    reconnected = true;
  }
  util::Status sent = SendFrame(request_id, type, payload);
  if (!sent.ok() && !sent.IsResourceExhausted() && !reconnected) {
    // The server (or an idle timeout) closed under us between calls;
    // one reconnect covers that without turning errors into loops. A
    // ResourceExhausted send is an oversized request — retrying it on a
    // fresh connection cannot help. Jittered pause first: if the server
    // bounced, every client thread is here at once.
    if (options_.reconnect_backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          JitteredBackoffMs(0, options_.reconnect_backoff_ms,
                            options_.reconnect_backoff_ms,
                            backoff_rng_.Next())));
    }
    RETURN_IF_ERROR(Connect());
    ++reconnects_;
    g_total_reconnects.fetch_add(1, std::memory_order_relaxed);
    sent = SendFrame(request_id, type, payload);
  }
  RETURN_IF_ERROR(sent);
  for (;;) {
    ASSIGN_OR_RETURN(auto frame, ReadFrame(deadline_ms));
    // A blocking client has exactly one request outstanding, but a
    // previous deadline-abandoned response may still be queued ahead of
    // ours; skip stale ids instead of failing.
    if (frame.first.request_id == request_id) return frame;
  }
}

util::Result<WireResponse> Client::Call(const WireRequest& request,
                                        int deadline_ms) {
  ASSIGN_OR_RETURN(
      auto frame,
      RoundTrip(MessageType::kQueryRequest, EncodeQueryRequest(request),
                deadline_ms));
  if (frame.first.type != static_cast<uint32_t>(MessageType::kQueryResponse)) {
    Close();
    return util::Status::Corruption("unexpected response type " +
                                    std::to_string(frame.first.type));
  }
  WireResponse response;
  util::Status decoded = DecodeQueryResponse(frame.second, &response);
  if (!decoded.ok()) {
    Close();
    return decoded;
  }
  if (response.status_code != static_cast<uint32_t>(util::StatusCode::kOk)) {
    // Guard the cast: a code outside the known range (newer server?)
    // degrades to kInternal instead of an out-of-range enum.
    uint32_t code = response.status_code;
    if (code > static_cast<uint32_t>(util::StatusCode::kUnavailable)) {
      code = static_cast<uint32_t>(util::StatusCode::kInternal);
    }
    return util::Status(static_cast<util::StatusCode>(code),
                        response.status_message);
  }
  return response;
}

util::Result<WireIngestAck> Client::Ingest(const WireIngest& ingest,
                                           int deadline_ms) {
  ASSIGN_OR_RETURN(auto frame, RoundTrip(MessageType::kIngest,
                                         EncodeIngest(ingest), deadline_ms));
  if (frame.first.type != static_cast<uint32_t>(MessageType::kIngestAck)) {
    Close();
    return util::Status::Corruption("unexpected response type " +
                                    std::to_string(frame.first.type));
  }
  WireIngestAck ack;
  util::Status decoded = DecodeIngestAck(frame.second, &ack);
  if (!decoded.ok()) {
    Close();
    return decoded;
  }
  if (ack.status_code != static_cast<uint32_t>(util::StatusCode::kOk)) {
    uint32_t code = ack.status_code;
    if (code > static_cast<uint32_t>(util::StatusCode::kUnavailable)) {
      code = static_cast<uint32_t>(util::StatusCode::kInternal);
    }
    return util::Status(static_cast<util::StatusCode>(code),
                        ack.status_message);
  }
  return ack;
}

util::Result<std::string> Client::FetchMetrics(int deadline_ms) {
  ASSIGN_OR_RETURN(auto frame, RoundTrip(MessageType::kMetricsDump,
                                         std::string(), deadline_ms));
  if (frame.first.type != static_cast<uint32_t>(MessageType::kMetricsText)) {
    Close();
    return util::Status::Corruption("unexpected response type " +
                                    std::to_string(frame.first.type));
  }
  return std::move(frame.second);
}

}  // namespace approxql::net
