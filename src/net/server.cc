#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "ingest/mutable_corpus.h"
#include "shard/layout_manifest.h"
#include "shard/sharded_database.h"
#include "util/logging.h"

namespace approxql::net {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Everything the loop thread needs per socket, plus the one field
/// worker threads touch: the mutex-guarded outbox of encoded response
/// frames. `closed` flips before the fd is closed so a late completion
/// appends into a connection object that is about to die rather than
/// into a recycled fd.
struct Server::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::chrono::steady_clock::time_point last_active;
  bool want_read = true;
  bool want_write = false;
  std::string write_buffer;  // loop-thread staging, partially written

  std::atomic<int64_t> in_flight{0};
  std::atomic<bool> closed{false};
  util::Mutex out_mu;
  std::string outbox GUARDED_BY(out_mu);  // workers append complete frames

  explicit Connection(size_t max_frame_bytes)
      : decoder(max_frame_bytes),
        last_active(std::chrono::steady_clock::now()) {}
};

Server::Server(service::QueryService& service, const engine::Database& db,
               ServerOptions options)
    : Server(service,
             // Walk parents to the child of the super-root: the document
             // root containing `node` (Database keeps no document table).
             [&db](doc::NodeId node) -> doc::NodeId {
               const doc::DataTree& tree = db.tree();
               if (node == tree.root() || node >= tree.size()) return node;
               doc::NodeId current = node;
               for (;;) {
                 doc::NodeId parent = tree.node(current).parent;
                 if (parent == tree.root() || parent == doc::kInvalidNode) {
                   return current;
                 }
                 current = parent;
               }
             },
             std::move(options)) {}

Server::Server(service::QueryService& service, const shard::ShardedDatabase& db,
               ServerOptions options)
    : Server(service,
             [&db](doc::NodeId node) { return db.DocRootOf(node); },
             std::move(options)) {}

Server::Server(service::QueryService& service,
               const shard::LayoutManifest& manifest, ServerOptions options)
    : Server(service,
             [&manifest](doc::NodeId node) { return manifest.DocRootOf(node); },
             std::move(options)) {}

Server::Server(service::QueryService& service, ingest::MutableCorpus& corpus,
               ServerOptions options)
    : Server(service,
             // Resolve against the generation current at answer time:
             // the corpus mutates, but any generation that produced an
             // answer keeps its documents' global roots stable forever.
             [&corpus](doc::NodeId node) {
               return corpus.snapshot()->DocRootOf(node);
             },
             std::move(options)) {
  corpus_ = &corpus;
  // Manifest-sync push path: after every generation publish, fan the
  // mutation chain out to subscribed connections as kManifestDelta
  // frames (request_id 0). Runs on the ingest path WITH the corpus
  // lock held — no corpus re-entry here, only frame encoding and
  // thread-safe outbox appends. On a connection shared by a router's
  // query and ingest traffic, these frames enter the outbox during
  // AddDocument/RemoveDocument, i.e. strictly before the ingest ack.
  corpus.SetPublishListener([this](
                                const ingest::MutableCorpus::PublishEvent&
                                    event) {
    std::vector<std::shared_ptr<Connection>> targets;
    {
      util::MutexLock lock(&subscribers_mu_);
      auto it = subscribers_.begin();
      while (it != subscribers_.end()) {
        std::shared_ptr<Connection> conn = it->lock();
        if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) {
          it = subscribers_.erase(it);
          continue;
        }
        targets.push_back(std::move(conn));
        ++it;
      }
    }
    if (targets.empty()) return;
    const FrameHeader push{kProtocolVersion, /*request_id=*/0,
                           static_cast<uint32_t>(MessageType::kManifestDelta)};
    for (const ingest::MutableCorpus::Mutation& m : event.mutations) {
      WireManifestDelta delta;
      // The delta is stamped with the server's CLUSTER position, not
      // the corpus's internal shard index (always 0 in cluster mode).
      delta.shard_index = options_.shard.shard_index;
      delta.prev_epoch = m.prev_epoch;
      delta.epoch = m.epoch;
      delta.op = m.is_add ? WireManifestDelta::Op::kAdd
                          : WireManifestDelta::Op::kRemove;
      delta.span = m.span;
      const std::string payload = EncodeManifestDelta(delta);
      for (const std::shared_ptr<Connection>& conn : targets) {
        EnqueueResponse(conn, push, payload);
      }
    }
    for (const std::shared_ptr<Connection>& conn : targets) {
      NotifyWritable(conn);
    }
  });
}

Server::Server(service::QueryService& service,
               std::function<doc::NodeId(doc::NodeId)> doc_root_of,
               ServerOptions options)
    : service_(service),
      doc_root_of_(std::move(doc_root_of)),
      options_(std::move(options)),
      connections_open_(metrics_.RegisterGauge("net_connections_open")),
      connections_accepted_(
          metrics_.RegisterCounter("net_connections_accepted")),
      connections_rejected_(
          metrics_.RegisterCounter("net_connections_rejected")),
      requests_(metrics_.RegisterCounter("net_requests")),
      protocol_errors_(metrics_.RegisterCounter("net_protocol_errors")),
      bytes_read_(metrics_.RegisterCounter("net_bytes_read")),
      bytes_written_(metrics_.RegisterCounter("net_bytes_written")),
      wire_latency_us_(metrics_.RegisterHistogram("net_wire_latency_us")) {}

Server::~Server() { Shutdown(/*drain=*/false); }

util::Status Server::Start() {
  {
    util::MutexLock lock(&lifecycle_mu_);
    APPROXQL_CHECK(!started_) << "Server::Start called twice";
  }
  if (options_.shard.enabled && corpus_ != nullptr &&
      corpus_->snapshot()->num_shards() != 1) {
    // A cluster shard server's local ids are ITS tree's preorders; a
    // corpus internally partitioned again would need two translation
    // layers. One cluster shard = one corpus shard, by construction.
    return util::Status::InvalidArgument(
        "a mutable shard server requires a single-shard corpus (got " +
        std::to_string(corpus_->snapshot()->num_shards()) + ")");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("bad bind address " +
                                         options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    util::Status st = util::Status::IoError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    util::Status st =
        util::Status::IoError(std::string("listen: ") + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    util::Status st = util::Status::IoError("epoll_create1/eventfd failed");
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    epoll_fd_ = wake_fd_ = listen_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Spawn before publishing started_: a concurrent JoinLoop that
  // observes started_ must find a joinable thread.
  loop_thread_ = std::thread([this] { Loop(); });
  {
    util::MutexLock lock(&lifecycle_mu_);
    started_ = true;
  }
  return util::Status::OK();
}

void Server::RequestDrain() {
  drain_.store(true, std::memory_order_release);
  uint64_t one = 1;
  // Only async-signal-safe calls here; a failed wake is recovered by
  // the loop's periodic timeout.
  [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
}

void Server::JoinLoop() {
  lifecycle_mu_.Lock();
  if (!started_ || joined_) {
    lifecycle_mu_.Unlock();
    return;
  }
  if (joining_) {
    // Someone else owns the join; wait for it rather than calling
    // join() twice on the same thread.
    while (!joined_) lifecycle_cv_.Wait(&lifecycle_mu_);
    lifecycle_mu_.Unlock();
    return;
  }
  joining_ = true;
  // Join with lifecycle_mu_ released: a concurrent Shutdown must be
  // able to store stop_/drain_ (it does so without the lock) and a
  // concurrent Wait must be able to park on lifecycle_cv_.
  lifecycle_mu_.Unlock();
  loop_thread_.join();
  lifecycle_mu_.Lock();
  joined_ = true;
  lifecycle_cv_.NotifyAll();
  lifecycle_mu_.Unlock();
}

void Server::Wait() { JoinLoop(); }

void Server::Shutdown(bool drain) {
  if (corpus_ != nullptr) {
    // Detach from the corpus first. SetPublishListener serializes with
    // a firing listener on the ingest lock, so after this returns no
    // publish can reach this server's outboxes or wake fd again.
    corpus_->SetPublishListener(nullptr);
  }
  {
    // Only the stop-flag store and a non-blocking eventfd wake happen
    // under lifecycle_mu_ — never the join itself — so a thread parked
    // in Wait() can no longer deadlock a concurrent Shutdown.
    util::MutexLock lock(&lifecycle_mu_);
    if (!started_) return;
    if (drain) {
      drain_.store(true, std::memory_order_release);
    } else {
      stop_.store(true, std::memory_order_release);
    }
    if (!fds_closed_) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    }
  }
  JoinLoop();
  // The loop is gone and every connection is marked closed; late
  // completions can only append to dead outboxes. Wait for them so no
  // callback outlives `this`.
  {
    util::MutexLock lock(&outstanding_mu_);
    while (outstanding_.load(std::memory_order_acquire) != 0) {
      outstanding_cv_.Wait(&outstanding_mu_);
    }
  }
  {
    util::MutexLock lock(&lifecycle_mu_);
    if (fds_closed_) return;
    fds_closed_ = true;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void Server::Loop() {
  bool accepting = true;
  std::chrono::steady_clock::time_point drain_start;
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const bool draining = drain_.load(std::memory_order_acquire);
    if (draining && accepting) {
      // Drain step 1: stop accepting. The listening socket stays bound
      // (connect attempts queue and then fail on close) but no new
      // connection enters the loop.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accepting = false;
      drain_start = std::chrono::steady_clock::now();
      // Drain step 1b: stop reading. Requests arriving now would only
      // be turned away, and their kUnavailable responses would keep
      // refilling outboxes — the quiesce check below could never
      // converge against a peer that keeps sending. TCP flow control
      // pushes back on such a peer instead. (No new connections appear
      // during the drain, so one pass over the map is enough.)
      for (const auto& [fd, conn] : connections_) {
        UpdateEpoll(conn.get(), conn->want_write, /*want_read=*/false);
      }
    }

    int n = ::epoll_wait(epoll_fd_, events, 64, draining ? 20 : 200);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        if (accepting) HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(conn);
      }
      if (!conn->closed.load(std::memory_order_acquire) &&
          (events[i].events & EPOLLOUT)) {
        FlushWrites(conn);
      }
    }

    // Completions that arrived from worker threads since the last pass.
    std::vector<std::shared_ptr<Connection>> pending;
    {
      util::MutexLock lock(&pending_mu_);
      pending.swap(pending_writes_);
    }
    for (const std::shared_ptr<Connection>& conn : pending) {
      if (!conn->closed.load(std::memory_order_acquire)) FlushWrites(conn);
    }

    SweepIdle();

    if (draining) {
      // Drain step 2: once nothing is in flight and every response has
      // reached its socket, close everything and leave.
      bool quiesced = true;
      for (const auto& [fd, conn] : connections_) {
        // Read in_flight before the outbox: a completion enqueues its
        // response *then* decrements, so observing zero here guarantees
        // the outbox read below sees that response.
        if (conn->in_flight.load(std::memory_order_acquire) != 0) {
          quiesced = false;
          break;
        }
        bool outbox_empty;
        {
          util::MutexLock lock(&conn->out_mu);
          outbox_empty = conn->outbox.empty();
        }
        if (!outbox_empty || !conn->write_buffer.empty()) {
          quiesced = false;
          break;
        }
      }
      if (quiesced) break;
      // A peer that refuses to read keeps its write_buffer nonempty
      // forever, so quiescence alone is not a bound; past the grace
      // period the drain hard-closes whatever is left (in-flight
      // evaluations still retire on the pool).
      if (options_.drain_timeout.count() > 0 &&
          std::chrono::steady_clock::now() - drain_start >=
              options_.drain_timeout) {
        APPROXQL_LOG(Warning)
            << "net: drain timed out after "
            << options_.drain_timeout.count() << " ms; hard-closing "
            << connections_.size() << " connection(s)";
        break;
      }
    }
  }
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd, "server shutdown");
}

void Server::HandleAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      // The limit protects the event loop itself; shedding here is a
      // hard close because there is no connection state to answer on.
      connections_rejected_->Increment();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    connections_accepted_->Increment();
    connections_open_->Increment();
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  // Bound the work done per event: reading until EAGAIN would let one
  // firehose peer pin the loop inside this call indefinitely, starving
  // every other connection — and the drain deadline, which is only
  // checked between epoll passes. Level-triggered epoll re-reports the
  // fd on the next pass, so leftover bytes are not lost.
  constexpr int kMaxReadsPerEvent = 16;
  for (int reads = 0; reads < kMaxReadsPerEvent; ++reads) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_read_->Increment(static_cast<uint64_t>(n));
      conn->last_active = std::chrono::steady_clock::now();
      conn->decoder.Append(buf, static_cast<size_t>(n));
      for (;;) {
        FrameHeader header;
        std::string payload;
        util::Status error;
        FrameDecoder::Next next = conn->decoder.Take(&header, &payload,
                                                     &error);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          // Corrupt stream: nothing after this point can be framed, and
          // a request id can't be trusted, so the whole connection goes.
          protocol_errors_->Increment();
          APPROXQL_LOG(Warning)
              << "net: closing connection: " << error.message();
          CloseConnection(conn->fd, "protocol error");
          return;
        }
        DispatchFrame(conn, header, std::move(payload));
        if (conn->closed.load(std::memory_order_acquire)) return;
      }
      continue;
    }
    if (n == 0) {
      if (conn->decoder.buffered() > 0) {
        // EOF mid-frame: the peer died between writes. Only this
        // connection is affected.
        protocol_errors_->Increment();
      }
      CloseConnection(conn->fd, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd, "read error");
    return;
  }
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header, std::string payload) {
  if (header.type == static_cast<uint32_t>(MessageType::kMetricsDump)) {
    FrameHeader reply{kProtocolVersion, header.request_id,
                      static_cast<uint32_t>(MessageType::kMetricsText)};
    std::string dump = DumpMetrics();
    // A truncated dump beats an unframeable one: cap the text so the
    // frame (4-byte length + header varints + CRC) stays under the
    // limit. 32 bytes comfortably covers the non-payload overhead.
    constexpr size_t kFrameOverhead = 32;
    const size_t max_payload = options_.max_frame_bytes > kFrameOverhead
                                   ? options_.max_frame_bytes - kFrameOverhead
                                   : 0;
    if (dump.size() > max_payload) dump.resize(max_payload);
    EnqueueResponse(conn, reply, dump);
    FlushWrites(conn);
    return;
  }

  if (options_.shard.enabled &&
      header.type == static_cast<uint32_t>(MessageType::kPing)) {
    // Answered inline by the event loop, never the worker pool: a ping
    // measures liveness of the serving process, and a pool saturated
    // with long queries must not make a healthy shard look dead.
    FrameHeader reply{kProtocolVersion, header.request_id,
                      static_cast<uint32_t>(MessageType::kPong)};
    // Mutable servers piggyback the snapshot epoch (what queries are
    // answered from — not the durable WAL epoch, which can run ahead
    // across a failed publish) so a probe doubles as a staleness check.
    const uint64_t epoch =
        corpus_ != nullptr ? corpus_->snapshot()->epoch() : 0;
    EnqueueResponse(conn, reply,
                    EncodePong({options_.shard.fingerprint,
                                options_.shard.shard_index, epoch}));
    FlushWrites(conn);
    return;
  }
  if (options_.shard.enabled &&
      header.type == static_cast<uint32_t>(MessageType::kShardQuery)) {
    DispatchShardQuery(conn, header, payload);
    return;
  }
  if (header.type == static_cast<uint32_t>(MessageType::kIngest)) {
    DispatchIngest(conn, header, payload);
    return;
  }
  if (header.type == static_cast<uint32_t>(MessageType::kManifestFetch)) {
    DispatchManifestFetch(conn, header, payload);
    return;
  }

  FrameHeader reply{kProtocolVersion, header.request_id,
                    static_cast<uint32_t>(MessageType::kQueryResponse)};

  if (header.type != static_cast<uint32_t>(MessageType::kQueryRequest)) {
    // The frame itself was well-formed (CRC passed), so the sender gets
    // a per-request error and the connection lives on.
    WireResponse response;
    response.status_code =
        static_cast<uint32_t>(util::StatusCode::kUnimplemented);
    response.status_message =
        "unknown message type " + std::to_string(header.type);
    EnqueueResponse(conn, reply, EncodeQueryResponse(response));
    FlushWrites(conn);
    return;
  }

  requests_->Increment();
  WireRequest wire_request;
  util::Status decoded = DecodeQueryRequest(payload, &wire_request);
  if (!decoded.ok()) {
    WireResponse response;
    response.status_code = static_cast<uint32_t>(decoded.code());
    response.status_message = "bad query request: " + decoded.message();
    EnqueueResponse(conn, reply, EncodeQueryResponse(response));
    FlushWrites(conn);
    return;
  }
  if (drain_.load(std::memory_order_acquire)) {
    WireResponse response;
    response.status_code =
        static_cast<uint32_t>(util::StatusCode::kUnavailable);
    response.status_message = "server draining";
    EnqueueResponse(conn, reply, EncodeQueryResponse(response));
    FlushWrites(conn);
    return;
  }

  service::QueryRequest request;
  request.query_text = std::move(wire_request.query);
  request.exec.strategy = wire_request.strategy;
  request.exec.n = static_cast<size_t>(wire_request.n);
  request.parallelism = wire_request.parallelism;
  request.deadline = std::chrono::milliseconds(wire_request.deadline_ms);
  request.bypass_cache = wire_request.bypass_cache;
  request.min_epochs = std::move(wire_request.min_epochs);

  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const auto start = std::chrono::steady_clock::now();
  service_.SubmitAsync(
      std::move(request),
      [this, conn, reply, start](service::QueryResponse r) {
        WireResponse response;
        response.status_code = static_cast<uint32_t>(r.status.code());
        response.status_message = r.status.message();
        response.truncated = r.truncated;
        response.cache_hit = r.cache_hit;
        response.degraded = r.degraded;
        response.backend_epoch = r.backend_epoch;
        response.missing_shards = std::move(r.missing_shards);
        response.answers.reserve(r.answers.size());
        for (const engine::QueryAnswer& answer : r.answers) {
          response.answers.push_back(
              {answer.cost, answer.root, DocRootOf(answer.root)});
        }
        EnqueueResponse(conn, reply, EncodeQueryResponse(response));
        wire_latency_us_->Record(static_cast<uint64_t>(MicrosSince(start)));
        // Order matters for drain: the response must be visible in the
        // outbox before in_flight hits zero, or the drain check could
        // quiesce between the two and drop the final response.
        conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        NotifyWritable(conn);
        {
          // notify_all under the mutex, not after: the waiter in
          // Shutdown may destroy this server (and the condvar) the
          // moment it can reacquire the lock and see zero, so the
          // notifying thread must be done with the condvar before the
          // lock is released.
          util::MutexLock lock(&outstanding_mu_);
          outstanding_.fetch_sub(1, std::memory_order_acq_rel);
          outstanding_cv_.NotifyAll();
        }
      });
}

void Server::DispatchShardQuery(const std::shared_ptr<Connection>& conn,
                                const FrameHeader& header,
                                const std::string& payload) {
  FrameHeader reply{kProtocolVersion, header.request_id,
                    static_cast<uint32_t>(MessageType::kShardAnswer)};
  WireShardAnswer stamp;  // constants every answer from this shard carries
  stamp.fingerprint = options_.shard.fingerprint;
  stamp.shard_index = options_.shard.shard_index;

  requests_->Increment();
  WireShardQuery wire_query;
  util::Status decoded = DecodeShardQuery(payload, &wire_query);
  if (!decoded.ok()) {
    WireShardAnswer answer = stamp;
    answer.status_code = static_cast<uint32_t>(decoded.code());
    answer.status_message = "bad shard query: " + decoded.message();
    EnqueueResponse(conn, reply, EncodeShardAnswer(answer));
    FlushWrites(conn);
    return;
  }
  if (drain_.load(std::memory_order_acquire)) {
    WireShardAnswer answer = stamp;
    answer.status_code = static_cast<uint32_t>(util::StatusCode::kUnavailable);
    answer.status_message = "server draining";
    EnqueueResponse(conn, reply, EncodeShardAnswer(answer));
    FlushWrites(conn);
    return;
  }

  const uint64_t want_n = wire_query.n;
  service::QueryRequest request;
  request.query_text = std::move(wire_query.query);
  request.exec.strategy = wire_query.strategy;
  request.exec.n = static_cast<size_t>(wire_query.n);
  request.deadline = std::chrono::milliseconds(wire_query.deadline_ms);
  if (cost::IsFinite(wire_query.cost_bound)) {
    // The router's snapshot of the shared scatter bound: prune exactly
    // like an in-process shard would. A bounded evaluation's result is
    // only valid against that bound, so it must not touch the cache in
    // either direction.
    const cost::Cost bound = wire_query.cost_bound;
    request.exec.schema.cost_bound = [bound] { return bound; };
    request.bypass_cache = true;
  }

  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const auto start = std::chrono::steady_clock::now();
  const bool mutable_backend = corpus_ != nullptr;
  service_.SubmitAsync(
      std::move(request),
      [this, conn, reply, stamp, want_n, start,
       mutable_backend](service::QueryResponse r) {
        WireShardAnswer answer = stamp;
        answer.status_code = static_cast<uint32_t>(r.status.code());
        answer.status_message = r.status.message();
        answer.truncated = r.truncated;
        // Mutable backends stamp the epoch of the snapshot that
        // produced the answer — the router translates the local ids
        // through the manifest slice of exactly this epoch.
        answer.backend_epoch = r.backend_epoch;
        answer.answers.reserve(r.answers.size());
        for (const engine::QueryAnswer& a : r.answers) {
          // Roots stay LOCAL preorders — the router owns the DocSpan
          // table and translates; docs are likewise its job. A static
          // shard server fronts the shard's own tree, so its roots are
          // already local; a mutable one evaluates in its corpus-global
          // id space and reverse-translates against the pinned snapshot
          // (global → local is strictly increasing, so the cost-then-
          // root answer order survives translation).
          doc::NodeId root = a.root;
          if (mutable_backend) {
            uint32_t internal_shard = 0;
            doc::NodeId local = 0;
            if (r.backend_snapshot == nullptr ||
                !r.backend_snapshot->ToLocal(a.root, &internal_shard,
                                             &local)) {
              answer.status_code =
                  static_cast<uint32_t>(util::StatusCode::kInternal);
              answer.status_message =
                  "answer root " + std::to_string(a.root) +
                  " outside the evaluated snapshot";
              answer.answers.clear();
              break;
            }
            root = local;
          }
          answer.answers.push_back({a.cost, root, /*doc=*/0});
        }
        // A full n answers makes the local n-th cost a valid global
        // inclusive bound (the global n-th answer costs no more than
        // ours); anything less says nothing about the global set.
        if (r.status.ok() && !r.truncated &&
            want_n != UINT64_MAX &&
            answer.answers.size() == want_n) {
          answer.achieved_bound = answer.answers.back().cost;
        }
        EnqueueResponse(conn, reply, EncodeShardAnswer(answer));
        wire_latency_us_->Record(static_cast<uint64_t>(MicrosSince(start)));
        conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        NotifyWritable(conn);
        {
          util::MutexLock lock(&outstanding_mu_);
          outstanding_.fetch_sub(1, std::memory_order_acq_rel);
          outstanding_cv_.NotifyAll();
        }
      });
}

void Server::DispatchIngest(const std::shared_ptr<Connection>& conn,
                            const FrameHeader& header,
                            const std::string& payload) {
  FrameHeader reply{kProtocolVersion, header.request_id,
                    static_cast<uint32_t>(MessageType::kIngestAck)};
  requests_->Increment();

  auto nack = [&](util::StatusCode code, std::string message) {
    WireIngestAck ack;
    ack.status_code = static_cast<uint32_t>(code);
    ack.status_message = std::move(message);
    EnqueueResponse(conn, reply, EncodeIngestAck(ack));
    FlushWrites(conn);
  };

  WireIngest op;
  util::Status decoded = DecodeIngest(payload, &op);
  if (!decoded.ok()) {
    nack(decoded.code(), "bad ingest: " + decoded.message());
    return;
  }
  if (corpus_ == nullptr) {
    nack(util::StatusCode::kUnimplemented,
         "server is not serving a mutable corpus");
    return;
  }
  if (drain_.load(std::memory_order_acquire)) {
    nack(util::StatusCode::kUnavailable, "server draining");
    return;
  }

  // Runs inline on the event loop: the corpus serializes ingest anyway,
  // and the ack must not be enqueued before the mutation is durable and
  // published. Queries in flight keep executing on the worker pool.
  const auto start = std::chrono::steady_clock::now();
  // A nonzero assigned_global is a router-owned cluster id: place the
  // document at exactly that root (gaps are other servers' ranges).
  util::Result<ingest::MutableCorpus::IngestResult> result =
      op.op == WireIngest::Op::kAdd
          ? (op.assigned_global != 0
                 ? corpus_->AddDocumentAt(op.xml, op.assigned_global)
                 : corpus_->AddDocument(op.xml))
          : corpus_->RemoveDocument(op.doc_root);
  if (!result.ok()) {
    nack(result.status().code(), std::string(result.status().message()));
    return;
  }
  WireIngestAck ack;
  ack.status_code = static_cast<uint32_t>(util::StatusCode::kOk);
  ack.seq = result->seq;
  ack.epoch = result->epoch;
  ack.doc_root = result->doc_root;
  // In cluster mode the useful placement is this server's CLUSTER
  // position (the corpus's internal index is always 0 there) — a
  // routed caller keys its per-shard epoch floors by it.
  ack.shard_index = options_.shard.enabled
                        ? options_.shard.shard_index
                        : static_cast<uint32_t>(result->shard_index);
  ack.length = static_cast<uint32_t>(result->length);
  EnqueueResponse(conn, reply, EncodeIngestAck(ack));
  wire_latency_us_->Record(static_cast<uint64_t>(MicrosSince(start)));
  FlushWrites(conn);
}

void Server::DispatchManifestFetch(const std::shared_ptr<Connection>& conn,
                                   const FrameHeader& header,
                                   const std::string& payload) {
  FrameHeader reply{kProtocolVersion, header.request_id,
                    static_cast<uint32_t>(MessageType::kManifestSlice)};
  requests_->Increment();

  auto decline = [&](util::StatusCode code, std::string message) {
    WireManifestSlice slice;
    slice.status_code = static_cast<uint32_t>(code);
    slice.status_message = std::move(message);
    slice.shard_index = options_.shard.shard_index;
    EnqueueResponse(conn, reply, EncodeManifestSlice(slice));
    FlushWrites(conn);
  };

  WireManifestFetch fetch;
  util::Status decoded = DecodeManifestFetch(payload, &fetch);
  if (!decoded.ok()) {
    decline(decoded.code(), "bad manifest fetch: " + decoded.message());
    return;
  }
  if (corpus_ == nullptr) {
    decline(util::StatusCode::kUnimplemented,
            "server is not serving a mutable corpus (no manifest slices)");
    return;
  }
  if (fetch.subscribe) {
    // Register BEFORE taking the snapshot. Ingest runs inline on this
    // same event loop, so any publish after this point fires the
    // listener with this connection already registered: the reply slice
    // and the delta stream compose without a gap. (A delta the slice
    // already contains is a stale duplicate on the receiver — ignored.)
    util::MutexLock lock(&subscribers_mu_);
    subscribers_.push_back(conn);
  }
  std::shared_ptr<const shard::ShardedDatabase> snap = corpus_->snapshot();
  WireManifestSlice slice;
  slice.status_code = static_cast<uint32_t>(util::StatusCode::kOk);
  slice.shard_index = options_.shard.shard_index;
  slice.epoch = snap->epoch();
  slice.fingerprint = snap->LayoutFingerprint();  // epoch-salted diagnostics
  slice.spans = snap->shard_spans(0);
  EnqueueResponse(conn, reply, EncodeManifestSlice(slice));
  FlushWrites(conn);
}

void Server::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& header,
                             std::string_view payload) {
  std::string frame;
  util::Status encoded =
      EncodeFrame(header, payload, &frame, options_.max_frame_bytes);
  if (!encoded.ok() &&
      header.type == static_cast<uint32_t>(MessageType::kQueryResponse)) {
    // The real response is too big for the wire (e.g. n=all on a large
    // database): fail just this request with a bounded error instead of
    // emitting a frame the peer would reject as stream corruption.
    WireResponse error;
    error.status_code =
        static_cast<uint32_t>(util::StatusCode::kResourceExhausted);
    error.status_message = encoded.message();
    frame.clear();
    encoded = EncodeFrame(header, EncodeQueryResponse(error), &frame,
                          options_.max_frame_bytes);
  }
  if (!encoded.ok()) {
    APPROXQL_LOG(Warning)
        << "net: dropping oversized response frame: " << encoded.message();
    return;
  }
  util::MutexLock lock(&conn->out_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;  // client gone
  conn->outbox.append(frame);
}

void Server::NotifyWritable(const std::shared_ptr<Connection>& conn) {
  {
    util::MutexLock lock(&pending_mu_);
    pending_writes_.push_back(conn);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  {
    util::MutexLock lock(&conn->out_mu);
    if (!conn->outbox.empty()) {
      conn->write_buffer.append(conn->outbox);
      conn->outbox.clear();
    }
  }
  size_t written = 0;
  while (written < conn->write_buffer.size()) {
    // MSG_NOSIGNAL: a peer that reset its connection between epoll_wait
    // and this flush must surface as EPIPE (close below), not as a
    // process-terminating SIGPIPE.
    ssize_t n = ::send(conn->fd, conn->write_buffer.data() + written,
                       conn->write_buffer.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      bytes_written_->Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd, "write error");
    return;
  }
  conn->write_buffer.erase(0, written);
  if (written > 0) conn->last_active = std::chrono::steady_clock::now();
  const bool want_write = !conn->write_buffer.empty();
  if (want_write != conn->want_write) {
    UpdateEpoll(conn.get(), want_write, conn->want_read);
  }
}

void Server::UpdateEpoll(Connection* conn, bool want_write, bool want_read) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->want_write = want_write;
    conn->want_read = want_read;
  }
}

void Server::CloseConnection(int fd, const char* reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  {
    // Under out_mu so no worker can append between the flag flip and
    // the erase — its append would land after `closed` and be dropped.
    util::MutexLock lock(&conn->out_mu);
    conn->closed.store(true, std::memory_order_release);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn->fd = -1;
  connections_.erase(it);
  connections_open_->Decrement();
  (void)reason;
}

void Server::SweepIdle() {
  if (options_.idle_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (conn->in_flight.load(std::memory_order_acquire) != 0) continue;
    if (!conn->write_buffer.empty()) continue;
    if (now - conn->last_active < options_.idle_timeout) continue;
    bool outbox_empty;
    {
      util::MutexLock lock(&conn->out_mu);
      outbox_empty = conn->outbox.empty();
    }
    if (outbox_empty) idle.push_back(fd);
  }
  for (int fd : idle) CloseConnection(fd, "idle timeout");
}

Server::Stats Server::GetStats() const {
  Stats stats;
  stats.connections_open = connections_open_->Value();
  stats.connections_accepted = connections_accepted_->Value();
  stats.connections_rejected = connections_rejected_->Value();
  stats.requests = requests_->Value();
  stats.protocol_errors = protocol_errors_->Value();
  stats.bytes_read = bytes_read_->Value();
  stats.bytes_written = bytes_written_->Value();
  return stats;
}

std::string Server::DumpMetrics() const {
  return service_.DumpMetrics() + metrics_.DumpText();
}

}  // namespace approxql::net
