#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace approxql::net {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000) return 1'000'000;
  return static_cast<int>(left.count());
}

}  // namespace

util::Result<int> ConnectTcp(const std::string& host, uint16_t port,
                             int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return util::Status::IoError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad host address " + host);
  }
  const std::string endpoint = host + ":" + std::to_string(port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    util::Status st =
        util::Status::IoError("connect " + endpoint + ": " + strerror(errno));
    ::close(fd);
    return st;
  }
  if (rc < 0) {
    const bool has_deadline = timeout_ms > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    int ready;
    do {
      pollfd pfd{fd, POLLOUT, 0};
      ready = ::poll(&pfd, 1, RemainingMs(has_deadline, deadline));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      util::Status st =
          util::Status::IoError(std::string("poll: ") + strerror(errno));
      ::close(fd);
      return st;
    }
    if (ready == 0) {
      ::close(fd);
      return util::Status::DeadlineExceeded("connect " + endpoint +
                                            ": no answer within " +
                                            std::to_string(timeout_ms) +
                                            " ms");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      util::Status st =
          util::Status::IoError("connect " + endpoint + ": " + strerror(err));
      ::close(fd);
      return st;
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    util::Status st =
        util::Status::IoError(std::string("fcntl: ") + strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int JitteredBackoffMs(int attempt, int base_ms, int cap_ms, uint64_t random) {
  if (base_ms < 1) base_ms = 1;
  if (cap_ms < base_ms) cap_ms = base_ms;
  // base << attempt, saturating well below overflow.
  int64_t ceiling = base_ms;
  for (int i = 0; i < attempt && ceiling < cap_ms; ++i) ceiling *= 2;
  ceiling = std::min<int64_t>(ceiling, cap_ms);
  const int64_t floor = std::max<int64_t>(1, base_ms / 2);
  if (ceiling <= floor) return static_cast<int>(floor);
  return static_cast<int>(floor +
                          static_cast<int64_t>(random %
                                               static_cast<uint64_t>(
                                                   ceiling - floor + 1)));
}

}  // namespace approxql::net
