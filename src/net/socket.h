// Small shared socket/retry helpers for the wire clients. Both the
// blocking net::Client and the poll-driven net::AsyncClient establish
// connections the same way (non-blocking connect + poll(POLLOUT) +
// SO_ERROR, bounded by a timeout) and back off the same way when a
// connection has to be re-established — one implementation, two users,
// and the router's shard-retry path reuses the backoff arithmetic.
#ifndef APPROXQL_NET_SOCKET_H_
#define APPROXQL_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace approxql::net {

/// Opens a TCP connection to host:port. `timeout_ms` bounds
/// establishment (<= 0 waits forever). On success the returned fd is
/// *blocking* with TCP_NODELAY set; callers that want non-blocking IO
/// flip O_NONBLOCK themselves.
util::Result<int> ConnectTcp(const std::string& host, uint16_t port,
                             int timeout_ms);

/// Exponential backoff with full jitter for attempt `attempt` (0 = the
/// first retry): uniform in [base/2, min(cap, base << attempt)].
/// `random` is caller-supplied randomness (e.g. util::Rng::Next()), so
/// deterministic tests can pin it. Never returns less than 1 ms.
int JitteredBackoffMs(int attempt, int base_ms, int cap_ms, uint64_t random);

}  // namespace approxql::net

#endif  // APPROXQL_NET_SOCKET_H_
