#include "net/async_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "net/socket.h"
#include "util/logging.h"

namespace approxql::net {

namespace {

/// poll() timeout until `when`; -1 (infinite) for time_point::max().
int TimeoutMs(std::chrono::steady_clock::time_point when,
              std::chrono::steady_clock::time_point now) {
  if (when == std::chrono::steady_clock::time_point::max()) return -1;
  auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(when - now);
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000) return 1'000'000;
  return static_cast<int>(left.count());
}

}  // namespace

AsyncClient::AsyncClient(AsyncClientOptions options)
    : options_(std::move(options)),
      decoder_(options_.max_frame_bytes),
      // Per-instance jitter: a router holding one AsyncClient per shard
      // must not have them all back off in lockstep after a restart.
      backoff_rng_(reinterpret_cast<uintptr_t>(this) ^
                   static_cast<uint64_t>(
                       Clock::now().time_since_epoch().count())) {}

AsyncClient::~AsyncClient() { Shutdown(); }

util::Status AsyncClient::Start() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return util::Status::IoError(std::string("pipe2: ") + strerror(errno));
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  next_connect_ = Clock::now();
  {
    util::MutexLock lock(&mu_);
    stopped_ = false;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return util::Status::OK();
}

void AsyncClient::Shutdown() {
  {
    util::MutexLock lock(&mu_);
    if (stopped_) return;
    stopped_ = true;
    char byte = 0;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void AsyncClient::Call(MessageType type, std::string payload, int deadline_ms,
                       AsyncCallback done) {
  Request request;
  request.type = type;
  request.payload = std::move(payload);
  if (deadline_ms > 0) {
    request.has_deadline = true;
    request.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  request.done = std::move(done);
  {
    util::MutexLock lock(&mu_);
    if (!stopped_) {
      request.id = next_id_++;
      submitted_.push_back(std::move(request));
      char byte = 0;
      (void)!::write(wake_write_fd_, &byte, 1);
      return;
    }
  }
  request.done(util::Status::Unavailable("async client is shut down"));
}

AsyncClient::Stats AsyncClient::stats() const {
  Stats s;
  s.sent = sent_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  return s;
}

void AsyncClient::Complete(
    Request&& request,
    util::Result<std::pair<FrameHeader, std::string>> result) {
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status().IsDeadlineExceeded()) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  // The entry is already detached from inflight_, so the callback may
  // re-enter Call() freely.
  request.done(std::move(result));
}

void AsyncClient::StartConnect() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    DropConnection(
        util::Status::IoError(std::string("socket: ") + strerror(errno)));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    DropConnection(
        util::Status::InvalidArgument("bad host address " + options_.host));
    return;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    util::Status st = util::Status::IoError(
        "connect " + options_.host + ":" + std::to_string(options_.port) +
        ": " + strerror(errno));
    ::close(fd);
    DropConnection(st);
    return;
  }
  fd_ = fd;
  connecting_ = true;
  connect_deadline_ =
      options_.connect_timeout_ms > 0
          ? Clock::now() + std::chrono::milliseconds(options_.connect_timeout_ms)
          : Clock::time_point::max();
  if (rc == 0) FinishConnect();  // loopback often connects instantly
}

void AsyncClient::FinishConnect() {
  int err = 0;
  socklen_t err_len = sizeof(err);
  ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len);
  if (err != 0) {
    DropConnection(util::Status::IoError(
        "connect " + options_.host + ":" + std::to_string(options_.port) +
        ": " + strerror(err)));
    return;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  connecting_ = false;
  connect_attempt_ = 0;
  if (connected_once_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  connected_once_ = true;
}

void AsyncClient::DropConnection(const util::Status& cause) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connecting_ = false;
  decoder_.Reset();
  outbox_.clear();
  // Fail what was (maybe partially) written; requests never sent stay
  // queued for the next connection and only their deadlines can expire
  // them. The cause is forwarded as kUnavailable so callers classify
  // every connection-level failure the same way.
  std::vector<uint64_t> written_ids;
  for (const auto& [id, request] : inflight_) {
    if (request.written) written_ids.push_back(id);
  }
  for (uint64_t id : written_ids) {
    auto it = inflight_.find(id);
    Request request = std::move(it->second);
    inflight_.erase(it);
    Complete(std::move(request), util::Status::Unavailable(cause.message()));
  }
  next_connect_ =
      Clock::now() +
      std::chrono::milliseconds(JitteredBackoffMs(
          connect_attempt_, options_.reconnect_backoff_ms,
          options_.reconnect_backoff_cap_ms, backoff_rng_.Next()));
  if (connect_attempt_ < 30) ++connect_attempt_;
}

void AsyncClient::EncodeWaiting() {
  std::vector<uint64_t> rejected;
  for (auto& [id, request] : inflight_) {
    if (request.written) continue;
    FrameHeader header{kProtocolVersion, id,
                       static_cast<uint32_t>(request.type)};
    util::Status encoded = EncodeFrame(header, request.payload, &outbox_,
                                       options_.max_frame_bytes);
    if (!encoded.ok()) {
      rejected.push_back(id);
      continue;
    }
    request.written = true;
    sent_.fetch_add(1, std::memory_order_relaxed);
  }
  for (uint64_t id : rejected) {
    auto it = inflight_.find(id);
    Request request = std::move(it->second);
    inflight_.erase(it);
    Complete(std::move(request),
             util::Status::ResourceExhausted("request exceeds frame limit"));
  }
}

void AsyncClient::FlushOutbox() {
  size_t off = 0;
  while (off < outbox_.size()) {
    ssize_t n = ::send(fd_, outbox_.data() + off, outbox_.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    outbox_.erase(0, off);
    DropConnection(
        util::Status::IoError(std::string("send: ") + strerror(errno)));
    return;
  }
  outbox_.erase(0, off);
}

void AsyncClient::ReadSocket() {
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      for (;;) {
        FrameHeader header;
        std::string payload;
        util::Status error;
        FrameDecoder::Next next = decoder_.Take(&header, &payload, &error);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          DropConnection(error);
          return;
        }
        if (header.request_id == 0) {
          // Server push (manifest deltas): id 0 is never assigned to a
          // Call, so this cannot be a response.
          if (options_.on_push) options_.on_push(header, payload);
          continue;
        }
        auto it = inflight_.find(header.request_id);
        if (it == inflight_.end()) continue;  // deadline-abandoned; drop
        Request request = std::move(it->second);
        inflight_.erase(it);
        Complete(std::move(request),
                 std::make_pair(header, std::move(payload)));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    DropConnection(n == 0 ? util::Status::Unavailable(
                                "server closed the connection")
                          : util::Status::IoError(std::string("recv: ") +
                                                  strerror(errno)));
    return;
  }
}

void AsyncClient::ExpireDeadlines(Clock::time_point now) {
  std::vector<uint64_t> expired;
  for (const auto& [id, request] : inflight_) {
    if (request.has_deadline && now >= request.deadline) expired.push_back(id);
  }
  for (uint64_t id : expired) {
    auto it = inflight_.find(id);
    Request request = std::move(it->second);
    inflight_.erase(it);
    // The connection stays healthy: if the response shows up later its
    // id no longer matches anything and it is dropped in ReadSocket.
    Complete(std::move(request),
             util::Status::DeadlineExceeded("no response within deadline"));
  }
}

AsyncClient::Clock::time_point AsyncClient::NextWakeup() const {
  Clock::time_point next = Clock::time_point::max();
  for (const auto& [id, request] : inflight_) {
    (void)id;
    if (request.has_deadline) next = std::min(next, request.deadline);
  }
  if (connecting_) next = std::min(next, connect_deadline_);
  if (fd_ < 0 && !inflight_.empty()) next = std::min(next, next_connect_);
  return next;
}

void AsyncClient::IoLoop() {
  for (;;) {
    bool stop = false;
    {
      util::MutexLock lock(&mu_);
      while (!submitted_.empty()) {
        Request request = std::move(submitted_.front());
        submitted_.pop_front();
        inflight_.emplace(request.id, std::move(request));
      }
      stop = stopped_;
    }
    if (stop) break;

    Clock::time_point now = Clock::now();
    ExpireDeadlines(now);
    if (connecting_ && now >= connect_deadline_) {
      DropConnection(util::Status::Unavailable("connect timed out"));
    }
    if (fd_ < 0 && !inflight_.empty() && now >= next_connect_) {
      StartConnect();
    }
    if (fd_ >= 0 && !connecting_) {
      EncodeWaiting();
      if (!outbox_.empty()) FlushOutbox();
    }

    pollfd pfds[2];
    pfds[0] = {wake_read_fd_, POLLIN, 0};
    nfds_t nfds = 1;
    if (fd_ >= 0) {
      short events = connecting_
                         ? POLLOUT
                         : static_cast<short>(
                               POLLIN | (outbox_.empty() ? 0 : POLLOUT));
      pfds[1] = {fd_, events, 0};
      nfds = 2;
    }
    int ready = ::poll(pfds, nfds, TimeoutMs(NextWakeup(), Clock::now()));
    if (ready < 0 && errno != EINTR) {
      // poll() failing is unrecoverable for the loop; treat as fatal
      // for the connection and keep spinning on the wake pipe.
      DropConnection(
          util::Status::IoError(std::string("poll: ") + strerror(errno)));
      continue;
    }
    if (ready <= 0) continue;
    if (pfds[0].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (nfds == 2 && pfds[1].revents != 0) {
      if (connecting_) {
        FinishConnect();
      } else {
        if (pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) ReadSocket();
        if (fd_ >= 0 && (pfds[1].revents & POLLOUT)) FlushOutbox();
      }
    }
  }

  // Stopped: fail everything still outstanding, including submissions
  // that raced in after the stop flag was set.
  {
    util::MutexLock lock(&mu_);
    while (!submitted_.empty()) {
      Request request = std::move(submitted_.front());
      submitted_.pop_front();
      inflight_.emplace(request.id, std::move(request));
    }
  }
  while (!inflight_.empty()) {
    auto it = inflight_.begin();
    Request request = std::move(it->second);
    inflight_.erase(it);
    Complete(std::move(request),
             util::Status::Unavailable("async client is shut down"));
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace approxql::net
