// Blocking client for net::Server's wire protocol: one TCP connection,
// synchronous request/response with a per-call deadline, and automatic
// reconnect-once when the connection is found dead at send time (safe
// for this protocol because queries are read-only — a resent request
// at worst evaluates twice). Not thread-safe; use one Client per
// thread, as the load driver does.
#ifndef APPROXQL_NET_CLIENT_H_
#define APPROXQL_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "net/wire.h"
#include "util/random.h"
#include "util/status.h"

namespace approxql::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bound on connection establishment (non-blocking connect +
  /// poll(POLLOUT)); <= 0 waits forever.
  int connect_timeout_ms = 5000;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Base of the jittered backoff slept before a send-time reconnect
  /// (uniform in [base/2, base]); 0 reconnects immediately. A fleet of
  /// client threads whose server bounced must not stampede it back
  /// down the instant it returns.
  int reconnect_backoff_ms = 20;
};

/// Process-wide count of Client reconnects (every instance), so load
/// drivers with hundreds of short-lived client threads can report
/// transient-failure behavior without threading a registry through.
uint64_t TotalClientReconnects();

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establishes (or re-establishes) the connection. Call() connects
  /// lazily, so this is only needed to check reachability up front.
  util::Status Connect();
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends the request and blocks for its response. `deadline_ms` <= 0
  /// waits forever; on expiry the call fails with kDeadlineExceeded and
  /// the connection is closed (the response may still be in flight, and
  /// matching it up later is not worth the state). A WireResponse whose
  /// status_code is non-OK is returned as an error Status carrying the
  /// server's code and message, so transport and server errors read
  /// uniformly; truncated/answers of successful calls come back in the
  /// response.
  util::Result<WireResponse> Call(const WireRequest& request,
                                  int deadline_ms = 0);

  /// Fetches the server's metrics dump (kMetricsDump round trip).
  util::Result<std::string> FetchMetrics(int deadline_ms = 0);

  /// Sends one ingest mutation and blocks for its ack. A returned ack
  /// means the server made the mutation durable and visible; a non-OK
  /// ack status_code comes back as an error Status (the mutation did
  /// NOT happen). NOTE: unlike Call(), a transport failure here is
  /// ambiguous — the mutation may or may not have been applied (the
  /// reconnect-once resend makes an add at-least-once, not exactly-
  /// once), so drivers needing an exact acked set must treat transport
  /// errors as "unknown" and reconcile via a query.
  util::Result<WireIngestAck> Ingest(const WireIngest& ingest,
                                     int deadline_ms = 0);

  /// Times this client re-established a connection found dead at send
  /// time (the reconnect-once path in Call).
  uint64_t reconnects() const { return reconnects_; }

 private:
  /// One request/response exchange; reconnects once if the send hits a
  /// dead connection. Returns the response frame's header and payload.
  util::Result<std::pair<FrameHeader, std::string>> RoundTrip(
      MessageType type, const std::string& payload, int deadline_ms);
  util::Status SendFrame(uint64_t request_id, MessageType type,
                         const std::string& payload);
  util::Result<std::pair<FrameHeader, std::string>> ReadFrame(
      int deadline_ms);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint64_t reconnects_ = 0;
  util::Rng backoff_rng_;
  FrameDecoder decoder_;
};

}  // namespace approxql::net

#endif  // APPROXQL_NET_CLIENT_H_
