#include "cost/cost_model.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace approxql::cost {

using util::Result;
using util::Status;

namespace {

int TypeIndex(NodeType type) { return static_cast<int>(type); }

}  // namespace

void CostModel::SetInsertCost(NodeType type, std::string_view label, Cost c) {
  insert_[TypeIndex(type)][std::string(label)] = c;
}

void CostModel::SetDeleteCost(NodeType type, std::string_view label, Cost c) {
  delete_[TypeIndex(type)][std::string(label)] = c;
}

void CostModel::SetRenameCost(NodeType type, std::string_view from,
                              std::string_view to, Cost c) {
  auto& pair_map = rename_[TypeIndex(type)];
  std::string key = PairKey(from, to);
  auto [it, inserted] = pair_map.try_emplace(std::move(key), c);
  auto& list = renamings_[TypeIndex(type)][std::string(from)];
  if (inserted) {
    list.push_back({std::string(to), c});
  } else {
    it->second = c;
    for (auto& renaming : list) {
      if (renaming.to == to) renaming.cost = c;
    }
  }
}

Cost CostModel::InsertCost(NodeType type, std::string_view label) const {
  const auto& m = insert_[TypeIndex(type)];
  auto it = m.find(std::string(label));
  return it == m.end() ? default_insert_cost_ : it->second;
}

Cost CostModel::DeleteCost(NodeType type, std::string_view label) const {
  const auto& m = delete_[TypeIndex(type)];
  auto it = m.find(std::string(label));
  return it == m.end() ? kInfinite : it->second;
}

Cost CostModel::RenameCost(NodeType type, std::string_view from,
                           std::string_view to) const {
  if (from == to) return 0;
  const auto& m = rename_[TypeIndex(type)];
  auto it = m.find(PairKey(from, to));
  return it == m.end() ? kInfinite : it->second;
}

std::vector<Renaming> CostModel::RenamingsOf(NodeType type,
                                             std::string_view from) const {
  const auto& m = renamings_[TypeIndex(type)];
  auto it = m.find(std::string(from));
  if (it == m.end()) return {};
  std::vector<Renaming> out;
  for (const auto& renaming : it->second) {
    if (IsFinite(renaming.cost)) out.push_back(renaming);
  }
  return out;
}

namespace {

bool ParseCost(std::string_view token, Cost* out) {
  if (token == "inf") {
    *out = kInfinite;
    return true;
  }
  uint64_t value = 0;
  if (!util::ParseUint64(token, &value)) return false;
  if (value > static_cast<uint64_t>(kInfinite)) return false;
  *out = static_cast<Cost>(value);
  return true;
}

bool ParseType(std::string_view token, NodeType* out) {
  if (token == "struct") {
    *out = NodeType::kStruct;
    return true;
  }
  if (token == "text") {
    *out = NodeType::kText;
    return true;
  }
  return false;
}

Status LineError(int line_no, std::string_view message) {
  return Status::ParseError("cost config line " + std::to_string(line_no) +
                            ": " + std::string(message));
}

}  // namespace

Result<CostModel> CostModel::ParseConfig(std::string_view text) {
  CostModel model;
  int line_no = 0;
  for (std::string_view line : util::SplitView(text, '\n')) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = util::StripWhitespace(line);
    if (line.empty()) continue;

    std::vector<std::string> tokens;
    for (std::string_view tok : util::SplitView(line, ' ')) {
      tok = util::StripWhitespace(tok);
      if (!tok.empty()) tokens.emplace_back(tok);
    }

    const std::string& verb = tokens[0];
    if (verb == "default-insert") {
      Cost c;
      if (tokens.size() != 2 || !ParseCost(tokens[1], &c)) {
        return LineError(line_no, "expected: default-insert <cost>");
      }
      model.set_default_insert_cost(c);
    } else if (verb == "insert" || verb == "delete") {
      NodeType type;
      Cost c;
      if (tokens.size() != 4 || !ParseType(tokens[1], &type) ||
          !ParseCost(tokens[3], &c)) {
        return LineError(line_no,
                         "expected: " + verb + " <struct|text> <label> <cost>");
      }
      if (verb == "insert") {
        model.SetInsertCost(type, tokens[2], c);
      } else {
        model.SetDeleteCost(type, tokens[2], c);
      }
    } else if (verb == "rename") {
      NodeType type;
      Cost c;
      if (tokens.size() != 5 || !ParseType(tokens[1], &type) ||
          !ParseCost(tokens[4], &c)) {
        return LineError(line_no,
                         "expected: rename <struct|text> <from> <to> <cost>");
      }
      model.SetRenameCost(type, tokens[2], tokens[3], c);
    } else {
      return LineError(line_no, "unknown directive '" + verb + "'");
    }
  }
  return model;
}

std::string CostModel::ToConfigString() const {
  std::string out = "default-insert " + std::to_string(default_insert_cost_) +
                    "\n";
  auto cost_str = [](Cost c) {
    return IsFinite(c) ? std::to_string(c) : std::string("inf");
  };
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    std::string_view type_name = NodeTypeToString(type);
    // Sorted copies make the output deterministic.
    std::map<std::string, Cost> inserts(insert_[TypeIndex(type)].begin(),
                                        insert_[TypeIndex(type)].end());
    for (const auto& [label, c] : inserts) {
      out += "insert " + std::string(type_name) + " " + label + " " +
             cost_str(c) + "\n";
    }
    std::map<std::string, Cost> deletes(delete_[TypeIndex(type)].begin(),
                                        delete_[TypeIndex(type)].end());
    for (const auto& [label, c] : deletes) {
      out += "delete " + std::string(type_name) + " " + label + " " +
             cost_str(c) + "\n";
    }
    std::map<std::string, std::vector<Renaming>> renames(
        renamings_[TypeIndex(type)].begin(), renamings_[TypeIndex(type)].end());
    for (const auto& [from, list] : renames) {
      for (const auto& renaming : list) {
        out += "rename " + std::string(type_name) + " " + from + " " +
               renaming.to + " " + cost_str(renaming.cost) + "\n";
      }
    }
  }
  return out;
}

}  // namespace approxql::cost
