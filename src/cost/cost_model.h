// Transformation cost model (paper Section 5.2, Definition 6). Costs are
// bound to node labels, the simplest of the variants the paper discusses:
//   - insert cost per label (default 1; paper: "all remaining insert
//     costs are 1"),
//   - delete cost per label (default infinite),
//   - rename cost per (from,to) label pair (default infinite).
// Struct labels (element names) and text labels (words) live in separate
// key spaces.
#ifndef APPROXQL_COST_COST_MODEL_H_
#define APPROXQL_COST_COST_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace approxql {

/// Node types of the data model (paper Section 4).
enum class NodeType : uint8_t { kStruct = 0, kText = 1 };

inline std::string_view NodeTypeToString(NodeType type) {
  return type == NodeType::kStruct ? "struct" : "text";
}

namespace cost {

/// Costs are exact integers (all of the paper's examples are integral);
/// kInfinite is a saturating sentinel for "transformation not allowed".
using Cost = int64_t;
inline constexpr Cost kInfinite = std::numeric_limits<int64_t>::max() / 4;

/// a + b with kInfinite absorbing (never overflows).
inline Cost Add(Cost a, Cost b) {
  if (a >= kInfinite || b >= kInfinite) return kInfinite;
  return a + b;
}

inline bool IsFinite(Cost c) { return c < kInfinite; }

/// One allowed renaming of a label.
struct Renaming {
  std::string to;
  Cost cost;
};

class CostModel {
 public:
  CostModel() = default;

  /// Insert cost used for labels without an explicit entry (paper: 1).
  void set_default_insert_cost(Cost c) { default_insert_cost_ = c; }
  Cost default_insert_cost() const { return default_insert_cost_; }

  void SetInsertCost(NodeType type, std::string_view label, Cost c);
  void SetDeleteCost(NodeType type, std::string_view label, Cost c);
  void SetRenameCost(NodeType type, std::string_view from, std::string_view to,
                     Cost c);

  Cost InsertCost(NodeType type, std::string_view label) const;
  Cost DeleteCost(NodeType type, std::string_view label) const;
  Cost RenameCost(NodeType type, std::string_view from,
                  std::string_view to) const;

  /// All finite renamings of `from` (order unspecified but deterministic).
  std::vector<Renaming> RenamingsOf(NodeType type, std::string_view from) const;

  /// Parses the line-based config format:
  ///   # comment
  ///   default-insert <cost>
  ///   insert <struct|text> <label> <cost>
  ///   delete <struct|text> <label> <cost>
  ///   rename <struct|text> <from> <to> <cost>
  /// `inf` is accepted as a cost.
  static util::Result<CostModel> ParseConfig(std::string_view text);

  /// Inverse of ParseConfig (round-trips).
  std::string ToConfigString() const;

 private:
  using CostMap = std::unordered_map<std::string, Cost>;

  static std::string PairKey(std::string_view from, std::string_view to) {
    std::string key(from);
    key.push_back('\x1f');  // cannot occur in labels
    key.append(to);
    return key;
  }

  Cost default_insert_cost_ = 1;
  CostMap insert_[2];
  CostMap delete_[2];
  CostMap rename_[2];  // keyed by PairKey(from, to)
  // from-label -> renamings, kept in insertion order for determinism.
  std::unordered_map<std::string, std::vector<Renaming>> renamings_[2];
};

}  // namespace cost
}  // namespace approxql

#endif  // APPROXQL_COST_COST_MODEL_H_
