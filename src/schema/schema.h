// The schema of a data tree (paper Section 7.1): a compacted
// DataGuide-style structural summary containing every label-type path of
// the data tree exactly once. Every data node belongs to exactly one
// node class (= schema node); classes preserve labels, types and
// parent-child relationships, which is what makes it sound to run the
// embedding algorithm over the schema instead of the data.
//
// Compaction: all text children of a class collapse into a single text
// class labeled "<text>"; the word labels live only in the schema's text
// index and in the secondary index keys (Section 7.1: "sequences of text
// nodes are merged into a single node and the labels are not stored in
// the tree but only in the indexes").
#ifndef APPROXQL_SCHEMA_SCHEMA_H_
#define APPROXQL_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "index/label_index.h"
#include "index/secondary_index.h"

namespace approxql::schema {

/// Label given to compacted text classes; cannot collide with element
/// names or words ('<' is not a word character or name start in our
/// pipeline's output).
inline constexpr std::string_view kTextClassLabel = "<text>";

class Schema {
 public:
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  /// Builds the schema, its label indexes and the secondary index in two
  /// O(|tree|) passes. Interns kTextClassLabel into the tree's label
  /// table (the schema shares the tree's label-id space).
  static Schema Build(doc::DataTree* tree, const cost::CostModel& model);

  /// Schema nodes in schema preorder; same encoding as data nodes
  /// (pre implicit, bound, pathcost, inscost), so the evaluation engine
  /// can run on either tree.
  const std::vector<doc::DataNode>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }

  bool IsAncestor(uint32_t u, uint32_t v) const {
    return u < v && nodes_[u].bound >= v;
  }
  cost::Cost Distance(uint32_t u, uint32_t v) const {
    APPROXQL_DCHECK(IsAncestor(u, v));
    return nodes_[v].pathcost - nodes_[u].pathcost - nodes_[u].inscost;
  }

  /// Class (schema preorder number) of a data node.
  uint32_t ClassOf(doc::NodeId data_node) const {
    APPROXQL_DCHECK(data_node < class_of_.size());
    return class_of_[data_node];
  }

  /// Schema-level I_struct / I_text (text postings point at text classes).
  const index::LabelIndex& label_index() const { return label_index_; }

  /// Path-dependent instance postings I_sec.
  const index::SecondaryIndex& secondary_index() const { return secondary_; }

  /// Allows Database::Load to attach persisted instance postings instead
  /// of the rebuilt ones (identical by deterministic construction; tests
  /// verify).
  void ReplaceSecondaryIndex(index::SecondaryIndex secondary) {
    secondary_ = std::move(secondary);
  }

  doc::LabelId text_class_label() const { return text_class_label_; }

  /// Human-readable label-type path of a schema node, for debugging and
  /// tests, e.g. "<root>/catalog/cd/title/<text>".
  std::string PathOf(uint32_t schema_node, const doc::LabelTable& labels) const;

 private:
  Schema() = default;

  std::vector<doc::DataNode> nodes_;
  std::vector<uint32_t> class_of_;
  index::LabelIndex label_index_;
  index::SecondaryIndex secondary_;
  doc::LabelId text_class_label_ = doc::kInvalidLabel;
};

}  // namespace approxql::schema

#endif  // APPROXQL_SCHEMA_SCHEMA_H_
