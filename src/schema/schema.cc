#include "schema/schema.h"

#include <algorithm>
#include <unordered_map>

namespace approxql::schema {

using cost::CostModel;
using doc::DataNode;
using doc::DataTree;
using doc::kInvalidLabel;
using doc::kInvalidNode;
using doc::LabelId;
using doc::NodeId;

namespace {

/// Temporary class record during construction (creation order).
struct ClassRecord {
  uint32_t parent = UINT32_MAX;
  LabelId label = kInvalidLabel;
  NodeType type = NodeType::kStruct;
  std::vector<uint32_t> children;  // creation order
};

/// Key of a class: (parent class, type, label). Text classes are keyed
/// with the shared text-class label (compaction).
uint64_t ClassKey(uint32_t parent, NodeType type, LabelId label) {
  // parent < 2^31 classes, label < 2^32: fold with a mixing constant.
  return (static_cast<uint64_t>(parent) << 33) ^
         (static_cast<uint64_t>(type) << 32) ^ label;
}

}  // namespace

Schema Schema::Build(DataTree* tree, const CostModel& model) {
  Schema schema;
  schema.text_class_label_ = tree->mutable_labels().Intern(kTextClassLabel);

  // Pass 1: assign a class to every data node.
  std::vector<ClassRecord> classes;
  std::unordered_map<uint64_t, uint32_t> class_by_key;
  schema.class_of_.resize(tree->size());

  for (NodeId id = 0; id < tree->size(); ++id) {
    const DataNode& n = tree->node(id);
    uint32_t parent_class =
        n.parent == kInvalidNode ? UINT32_MAX : schema.class_of_[n.parent];
    LabelId class_label =
        n.type == NodeType::kText ? schema.text_class_label_ : n.label;
    uint64_t key = ClassKey(parent_class, n.type, class_label);
    APPROXQL_CHECK(classes.size() < (1u << 31)) << "schema too large";
    auto [it, created] =
        class_by_key.try_emplace(key, static_cast<uint32_t>(classes.size()));
    if (created) {
      ClassRecord record;
      record.parent = parent_class;
      record.label = class_label;
      record.type = n.type;
      classes.push_back(std::move(record));
      if (parent_class != UINT32_MAX) {
        classes[parent_class].children.push_back(it->second);
      }
    }
    schema.class_of_[id] = it->second;
  }

  // Assign schema preorder numbers by iterative DFS over creation-order
  // children (deterministic).
  std::vector<uint32_t> pre_of_class(classes.size(), UINT32_MAX);
  schema.nodes_.resize(classes.size());
  {
    std::vector<std::pair<uint32_t, uint32_t>> stack;  // (class, schema parent)
    stack.emplace_back(0, UINT32_MAX);
    uint32_t next_pre = 0;
    while (!stack.empty()) {
      auto [cls, schema_parent] = stack.back();
      stack.pop_back();
      uint32_t pre = next_pre++;
      pre_of_class[cls] = pre;
      DataNode& node = schema.nodes_[pre];
      node.parent = schema_parent;
      node.label = classes[cls].label;
      node.type = classes[cls].type;
      // Push children in reverse so they pop in creation order.
      const auto& children = classes[cls].children;
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.emplace_back(*it, pre);
      }
    }
  }
  // Remap class ids to schema preorder numbers.
  for (auto& cls : schema.class_of_) cls = pre_of_class[cls];

  // Bounds (children precede parents in reverse preorder) and costs.
  for (uint32_t id = 0; id < schema.nodes_.size(); ++id) {
    schema.nodes_[id].bound = id;
  }
  for (uint32_t id = static_cast<uint32_t>(schema.nodes_.size()); id-- > 1;) {
    DataNode& parent = schema.nodes_[schema.nodes_[id].parent];
    parent.bound = std::max(parent.bound, schema.nodes_[id].bound);
  }
  for (uint32_t id = 0; id < schema.nodes_.size(); ++id) {
    DataNode& n = schema.nodes_[id];
    n.inscost =
        n.type == NodeType::kStruct
            ? model.InsertCost(NodeType::kStruct, tree->labels().Get(n.label))
            : 0;
    if (n.parent == UINT32_MAX) {
      n.pathcost = 0;
    } else {
      const DataNode& p = schema.nodes_[n.parent];
      n.pathcost = cost::Add(p.pathcost, p.inscost);
    }
  }

  // Schema label index: struct classes directly from the schema tree
  // (skip the super-root class, like the data index).
  for (uint32_t id = 1; id < schema.nodes_.size(); ++id) {
    const DataNode& n = schema.nodes_[id];
    if (n.type == NodeType::kStruct) {
      schema.label_index_.Add(NodeType::kStruct, n.label, id);
    }
  }

  // Pass 2: instance postings (I_sec) keyed by (class, label), and the
  // word -> text-class postings for the schema's I_text.
  for (NodeId id = 1; id < tree->size(); ++id) {
    const DataNode& n = tree->node(id);
    uint32_t cls = schema.class_of_[id];
    // I_sec postings grow in ascending data preorder.
    schema.secondary_.Add(cls, n.label, id);
  }
  // Derive I_text over the schema from the secondary keys: word ->
  // sorted list of text classes containing it.
  {
    std::vector<std::pair<LabelId, uint32_t>> word_classes;
    for (NodeId id = 1; id < tree->size(); ++id) {
      const DataNode& n = tree->node(id);
      if (n.type == NodeType::kText) {
        word_classes.emplace_back(n.label, schema.class_of_[id]);
      }
    }
    std::sort(word_classes.begin(), word_classes.end());
    word_classes.erase(std::unique(word_classes.begin(), word_classes.end()),
                       word_classes.end());
    for (const auto& [word, cls] : word_classes) {
      schema.label_index_.Add(NodeType::kText, word, cls);
    }
  }
  return schema;
}

std::string Schema::PathOf(uint32_t schema_node,
                           const doc::LabelTable& labels) const {
  std::vector<uint32_t> path;
  for (uint32_t cursor = schema_node; cursor != UINT32_MAX;
       cursor = nodes_[cursor].parent) {
    path.push_back(cursor);
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out.push_back('/');
    out.append(labels.Get(nodes_[*it].label));
  }
  return out;
}

}  // namespace approxql::schema
