#include "shard/layout_manifest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/varint.h"

namespace approxql::shard {

using util::Result;
using util::Status;

namespace {
// "AQLM" + format version, leading every serialized manifest.
constexpr uint32_t kMagic = 0x41514c4d;
constexpr uint32_t kVersion = 1;
}  // namespace

LayoutManifest::LayoutManifest(uint32_t fingerprint, cost::CostModel model,
                               std::vector<std::vector<DocSpan>> spans)
    : fingerprint_(fingerprint),
      model_(std::move(model)),
      spans_(std::move(spans)) {
  RebuildDocs();
}

LayoutManifest LayoutManifest::Of(const ShardedDatabase& layout) {
  std::vector<std::vector<DocSpan>> spans;
  spans.reserve(layout.num_shards());
  for (size_t i = 0; i < layout.num_shards(); ++i) {
    spans.push_back(layout.shard_spans(i));
  }
  return LayoutManifest(layout.LayoutFingerprint(), layout.cost_model(),
                        std::move(spans));
}

void LayoutManifest::RebuildDocs() {
  docs_.clear();
  for (size_t i = 0; i < spans_.size(); ++i) {
    for (const DocSpan& span : spans_[i]) {
      docs_.push_back({span.global_start, span.length,
                       static_cast<uint32_t>(i), span.local_start});
    }
  }
  std::sort(docs_.begin(), docs_.end(),
            [](const GlobalDoc& a, const GlobalDoc& b) {
              return a.global_start < b.global_start;
            });
}

doc::NodeId LayoutManifest::ToGlobal(size_t shard, doc::NodeId local) const {
  if (local == 0) return 0;  // shard super-root -> global super-root
  const std::vector<DocSpan>& spans = spans_[shard];
  auto it = std::upper_bound(spans.begin(), spans.end(), local,
                             [](doc::NodeId value, const DocSpan& span) {
                               return value < span.local_start;
                             });
  APPROXQL_DCHECK(it != spans.begin());
  const DocSpan& span = *(it - 1);
  APPROXQL_DCHECK(local < span.local_start + span.length);
  return span.global_start + (local - span.local_start);
}

doc::NodeId LayoutManifest::DocRootOf(doc::NodeId global) const {
  if (global == 0) return 0;
  auto it = std::upper_bound(docs_.begin(), docs_.end(), global,
                             [](doc::NodeId value, const GlobalDoc& d) {
                               return value < d.global_start;
                             });
  if (it == docs_.begin()) return 0;
  const GlobalDoc& d = *(it - 1);
  return global < d.global_start + d.length ? d.global_start : 0;
}

std::string LayoutManifest::Serialize() const {
  std::string out;
  util::PutVarint32(&out, kMagic);
  util::PutVarint32(&out, kVersion);
  util::PutVarint32(&out, fingerprint_);
  const std::string model = model_.ToConfigString();
  util::PutVarint64(&out, model.size());
  out += model;
  util::PutVarint64(&out, spans_.size());
  for (const std::vector<DocSpan>& shard : spans_) {
    util::PutVarint64(&out, shard.size());
    for (const DocSpan& span : shard) {
      util::PutVarint32(&out, span.local_start);
      util::PutVarint32(&out, span.global_start);
      util::PutVarint32(&out, span.length);
    }
  }
  util::PutVarint32(&out, util::Crc32c(out));
  return out;
}

Result<LayoutManifest> LayoutManifest::Deserialize(std::string_view data) {
  util::VarintReader reader(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t fingerprint = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&magic));
  if (magic != kMagic) {
    return Status::Corruption("not a layout manifest (bad magic)");
  }
  RETURN_IF_ERROR(reader.GetVarint32(&version));
  if (version != kVersion) {
    return Status::Corruption("unsupported layout manifest version " +
                              std::to_string(version));
  }
  RETURN_IF_ERROR(reader.GetVarint32(&fingerprint));
  uint64_t model_size = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&model_size));
  if (model_size > reader.remaining()) {
    return Status::Corruption("layout manifest cost model overruns blob");
  }
  std::string_view model_text;
  RETURN_IF_ERROR(reader.GetBytes(model_size, &model_text));
  ASSIGN_OR_RETURN(cost::CostModel model, cost::CostModel::ParseConfig(model_text));
  uint64_t num_shards = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&num_shards));
  // Every claimed count is checked against the bytes that could satisfy
  // it BEFORE sizing any container: a hostile 5-byte varint must produce
  // a clean Corruption, never a multi-gigabyte allocation. Each shard
  // contributes at least its span-count varint (1 byte); each span is at
  // least three 1-byte varints.
  if (num_shards > reader.remaining()) {
    return Status::Corruption("layout manifest shard count overruns blob");
  }
  std::vector<std::vector<DocSpan>> spans(num_shards);
  for (uint64_t i = 0; i < num_shards; ++i) {
    uint64_t count = 0;
    RETURN_IF_ERROR(reader.GetVarint64(&count));
    if (count > reader.remaining() / 3) {
      return Status::Corruption("layout manifest span count overruns blob");
    }
    spans[i].reserve(count);
    for (uint64_t d = 0; d < count; ++d) {
      DocSpan span;
      RETURN_IF_ERROR(reader.GetVarint32(&span.local_start));
      RETURN_IF_ERROR(reader.GetVarint32(&span.global_start));
      RETURN_IF_ERROR(reader.GetVarint32(&span.length));
      // ToGlobal/DocRootOf binary-search these tables assuming the
      // ShardedDatabase invariant; a manifest that violates it would
      // mistranslate ids (or walk off the table), so reject it here.
      if (span.local_start == 0 || span.global_start == 0 ||
          span.length == 0 ||
          static_cast<uint64_t>(span.local_start) + span.length >
              UINT32_MAX ||
          static_cast<uint64_t>(span.global_start) + span.length >
              UINT32_MAX) {
        return Status::Corruption("layout manifest span out of range");
      }
      if (!spans[i].empty()) {
        const DocSpan& prev = spans[i].back();
        if (span.local_start < prev.local_start + prev.length ||
            span.global_start < prev.global_start + prev.length) {
          return Status::Corruption(
              "layout manifest spans overlap or regress");
        }
      }
      spans[i].push_back(span);
    }
  }
  const size_t body_end = reader.position();
  uint32_t crc = 0;
  RETURN_IF_ERROR(reader.GetVarint32(&crc));
  if (crc != util::Crc32c(data.substr(0, body_end))) {
    return Status::Corruption("layout manifest checksum mismatch");
  }
  return LayoutManifest(fingerprint, std::move(model), std::move(spans));
}

Status LayoutManifest::SaveTo(const std::string& path) const {
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("open " + temp_path + " for write");
    const std::string blob = Serialize();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) return Status::IoError("write " + temp_path);
  }
  std::error_code ec;
  std::filesystem::rename(temp_path, path, ec);
  if (ec) {
    return Status::IoError("rename " + temp_path + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<LayoutManifest> LayoutManifest::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return Status::IoError("read " + path);
  return Deserialize(blob);
}

}  // namespace approxql::shard
