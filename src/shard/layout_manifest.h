// A layout-only description of a sharded corpus: the shard count, every
// shard's document spans (local -> global id mapping), the layout
// fingerprint, and the cost model — everything a query router needs,
// and nothing a shard server holds (no trees, no postings, no schema).
// A router host loads one of these instead of the full corpus: the data
// lives only on the shard servers, the router merely translates ids and
// verifies it is talking to the layout the manifest describes.
//
// Produced by `approxql_serve --save-manifest` next to a sharded
// corpus; consumed by `approxql_serve --router --manifest`. The
// fingerprint inside is checked against every shard server's reported
// fingerprint on the wire, so a manifest from layout A pointed at
// servers of layout B is rejected per call, never mistranslated.
#ifndef APPROXQL_SHARD_LAYOUT_MANIFEST_H_
#define APPROXQL_SHARD_LAYOUT_MANIFEST_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "shard/sharded_database.h"
#include "util/status.h"

namespace approxql::shard {

class LayoutManifest {
 public:
  LayoutManifest() = default;

  /// Extracts the layout of a materialized sharded corpus.
  static LayoutManifest Of(const ShardedDatabase& layout);

  /// Assembles from parts (deserialization, tests). `spans` must hold
  /// each shard's spans sorted by increasing local AND global start —
  /// the order ShardedDatabase guarantees.
  LayoutManifest(uint32_t fingerprint, cost::CostModel model,
                 std::vector<std::vector<DocSpan>> spans);

  size_t num_shards() const { return spans_.size(); }
  uint32_t fingerprint() const { return fingerprint_; }
  const cost::CostModel& cost_model() const { return model_; }
  const std::vector<DocSpan>& shard_spans(size_t i) const {
    return spans_[i];
  }

  /// Shard-local node id -> global id (identical to
  /// ShardedDatabase::ToGlobal over the same layout).
  doc::NodeId ToGlobal(size_t shard, doc::NodeId local) const;

  /// Global id of the document root containing `global` (0 for the
  /// super-root), for wire-protocol answer grouping.
  doc::NodeId DocRootOf(doc::NodeId global) const;

  /// Varint blob with a trailing CRC; Deserialize verifies it.
  std::string Serialize() const;
  static util::Result<LayoutManifest> Deserialize(std::string_view data);

  /// Write-to-temp + rename, like Database::Save.
  util::Status SaveTo(const std::string& path) const;
  static util::Result<LayoutManifest> LoadFrom(const std::string& path);

 private:
  /// One document in the global id order (merged over shards).
  struct GlobalDoc {
    doc::NodeId global_start = 0;
    uint32_t length = 0;
    uint32_t shard = 0;
    doc::NodeId local_start = 0;
  };

  void RebuildDocs();

  uint32_t fingerprint_ = 0;
  cost::CostModel model_;
  std::vector<std::vector<DocSpan>> spans_;
  std::vector<GlobalDoc> docs_;  // sorted by global_start
};

}  // namespace approxql::shard

#endif  // APPROXQL_SHARD_LAYOUT_MANIFEST_H_
