#include "shard/sharded_database.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "engine/fetch_plan.h"
#include "engine/list_ops.h"
#include "query/expanded.h"
#include "service/parallel.h"
#include "util/crc32.h"

namespace approxql::shard {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kPostingPrefix = "ix#";

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

ShardedDatabase::Builder::Builder(size_t num_shards,
                                  storage::StoreFactory store_factory)
    : builders_(std::max<size_t>(1, num_shards)),
      spans_(builders_.size()),
      store_factory_(std::move(store_factory)) {}

Status ShardedDatabase::Builder::AddDocumentXml(std::string_view xml) {
  size_t shard = next_doc_ % builders_.size();
  doc::DataTreeBuilder& builder = builders_[shard];
  DocSpan span;
  span.local_start = static_cast<doc::NodeId>(builder.node_count());
  span.global_start = next_global_;
  RETURN_IF_ERROR(builder.AddDocumentXml(xml));
  span.length =
      static_cast<uint32_t>(builder.node_count() - span.local_start);
  next_global_ += span.length;
  spans_[shard].push_back(span);
  ++next_doc_;
  return Status::OK();
}

Result<ShardedDatabase> ShardedDatabase::Builder::Build(
    cost::CostModel model) && {
  std::vector<engine::Database> databases;
  databases.reserve(builders_.size());
  for (doc::DataTreeBuilder& builder : builders_) {
    ASSIGN_OR_RETURN(doc::DataTree tree, std::move(builder).Build(model));
    ASSIGN_OR_RETURN(engine::Database db,
                     engine::Database::FromDataTree(std::move(tree), model));
    databases.push_back(std::move(db));
  }
  return Assemble(std::move(databases), std::move(spans_), std::move(model),
                  store_factory_);
}

Result<ShardedDatabase> ShardedDatabase::Partition(
    const doc::DataTree& tree, const cost::CostModel& model, size_t num_shards,
    storage::StoreFactory store_factory) {
  size_t n = std::max<size_t>(1, num_shards);
  std::vector<doc::DataTreeBuilder> builders(n);
  std::vector<std::vector<DocSpan>> spans(n);
  size_t doc_index = 0;
  for (doc::NodeId d = tree.FirstChild(tree.root()); d != doc::kInvalidNode;
       d = tree.NextSibling(d)) {
    size_t shard = doc_index % n;
    doc::DataTreeBuilder& builder = builders[shard];
    DocSpan span;
    span.local_start = static_cast<doc::NodeId>(builder.node_count());
    span.global_start = d;
    span.length = tree.node(d).bound - d + 1;
    builder.AppendSubtree(tree, d);
    spans[shard].push_back(span);
    ++doc_index;
  }
  std::vector<engine::Database> databases;
  databases.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    ASSIGN_OR_RETURN(doc::DataTree shard_tree,
                     std::move(builders[s]).Build(model));
    ASSIGN_OR_RETURN(
        engine::Database db,
        engine::Database::FromDataTree(std::move(shard_tree), model));
    databases.push_back(std::move(db));
  }
  return Assemble(std::move(databases), std::move(spans), model,
                  store_factory);
}

Result<ShardedDatabase> ShardedDatabase::BuildFromXml(
    const std::vector<std::string>& documents, cost::CostModel model,
    size_t num_shards) {
  Builder builder(num_shards);
  for (const std::string& document : documents) {
    RETURN_IF_ERROR(builder.AddDocumentXml(document));
  }
  return std::move(builder).Build(std::move(model));
}

Result<ShardedDatabase> ShardedDatabase::Load(
    const std::string& path, size_t num_shards,
    storage::StoreFactory store_factory) {
  ASSIGN_OR_RETURN(engine::Database db, engine::Database::Load(path));
  return Partition(db.tree(), db.cost_model(), num_shards,
                   std::move(store_factory));
}

Result<ShardedDatabase> ShardedDatabase::Assemble(
    std::vector<engine::Database> databases,
    std::vector<std::vector<DocSpan>> spans, cost::CostModel model,
    const storage::StoreFactory& store_factory) {
  std::vector<std::shared_ptr<Shard>> shards;
  shards.reserve(databases.size());
  for (size_t i = 0; i < databases.size(); ++i) {
    auto shard = std::make_shared<Shard>(std::move(databases[i]));
    shard->spans = std::move(spans[i]);
    if (store_factory != nullptr) {
      ASSIGN_OR_RETURN(std::unique_ptr<storage::KvStore> store,
                       store_factory("shard" + std::to_string(i)));
      shard->store = std::move(store);
    } else {
      shard->store = std::make_shared<storage::MemKvStore>();
    }
    RETURN_IF_ERROR(
        shard->db.label_index().PersistTo(shard->store.get(), kPostingPrefix));
    shard->postings = std::make_unique<index::StoredLabelIndex>(
        shard->store.get(), std::string(kPostingPrefix));
    shards.push_back(std::move(shard));
  }
  return AssembleFromShards(std::move(shards), std::move(model),
                            std::make_shared<service::MetricsRegistry>(),
                            /*epoch=*/0);
}

Result<ShardedDatabase> ShardedDatabase::AssembleFromShards(
    std::vector<std::shared_ptr<Shard>> shards, cost::CostModel model,
    std::shared_ptr<service::MetricsRegistry> metrics, uint64_t epoch) {
  ShardedDatabase sdb;
  sdb.model_ = std::move(model);
  sdb.metrics_ = std::move(metrics);
  sdb.epoch_ = epoch;
  sdb.shards_ = std::move(shards);
  for (size_t i = 0; i < sdb.shards_.size(); ++i) {
    Shard& shard = *sdb.shards_[i];
    // Shards shared with a previous corpus generation already carry
    // their handles (and may be serving queries right now — don't touch
    // them); only freshly built shards register. A shard's index never
    // changes across generations, so the stem is stable.
    if (shard.fetch_us == nullptr) {
      const std::string stem = "shard" + std::to_string(i);
      shard.fetch_us = sdb.metrics_->RegisterHistogram(stem + "_fetch_us");
      shard.eval_us = sdb.metrics_->RegisterHistogram(stem + "_eval_us");
      shard.answers = sdb.metrics_->RegisterCounter(stem + "_answers");
    }
    for (const DocSpan& span : shard.spans) {
      sdb.docs_.push_back({span.global_start, span.length,
                           static_cast<uint32_t>(i), span.local_start});
    }
  }
  std::sort(sdb.docs_.begin(), sdb.docs_.end(),
            [](const GlobalDoc& a, const GlobalDoc& b) {
              return a.global_start < b.global_start;
            });
  std::vector<const engine::Database*> shard_dbs;
  shard_dbs.reserve(sdb.shards_.size());
  for (const auto& shard : sdb.shards_) shard_dbs.push_back(&shard->db);
  sdb.global_schema_ = GlobalSchema::Merge(shard_dbs);

  std::string layout = "backend=sharded-mem;shards=" +
                       std::to_string(sdb.shards_.size()) + ";";
  for (size_t i = 0; i < sdb.shards_.size(); ++i) {
    const Shard& shard = *sdb.shards_[i];
    layout += "s" + std::to_string(i) +
              ":docs=" + std::to_string(shard.spans.size()) +
              ",nodes=" + std::to_string(shard.db.tree().size()) + ";";
  }
  if (epoch != 0) layout += "epoch=" + std::to_string(epoch) + ";";
  sdb.fingerprint_ = util::Crc32c(layout);
  return sdb;
}

doc::NodeId ShardedDatabase::ToGlobal(size_t shard, doc::NodeId local) const {
  if (local == 0) return 0;  // shard super-root -> global super-root
  const std::vector<DocSpan>& spans = shards_[shard]->spans;
  auto it = std::upper_bound(spans.begin(), spans.end(), local,
                             [](doc::NodeId value, const DocSpan& span) {
                               return value < span.local_start;
                             });
  APPROXQL_DCHECK(it != spans.begin());
  const DocSpan& span = *(it - 1);
  APPROXQL_DCHECK(local < span.local_start + span.length);
  return span.global_start + (local - span.local_start);
}

bool ShardedDatabase::ToLocal(doc::NodeId global, uint32_t* shard_out,
                              doc::NodeId* local_out) const {
  if (global == 0) {
    *shard_out = 0;
    *local_out = 0;
    return true;
  }
  auto it = std::upper_bound(docs_.begin(), docs_.end(), global,
                             [](doc::NodeId value, const GlobalDoc& d) {
                               return value < d.global_start;
                             });
  if (it == docs_.begin()) return false;
  const GlobalDoc& d = *(it - 1);
  if (global >= d.global_start + d.length) return false;
  *shard_out = static_cast<uint32_t>(d.shard);
  *local_out = d.local_start + (global - d.global_start);
  return true;
}

doc::NodeId ShardedDatabase::DocRootOf(doc::NodeId global) const {
  if (global == 0) return 0;
  auto it = std::upper_bound(docs_.begin(), docs_.end(), global,
                             [](doc::NodeId value, const GlobalDoc& d) {
                               return value < d.global_start;
                             });
  if (it == docs_.begin()) return 0;
  const GlobalDoc& d = *(it - 1);
  return global < d.global_start + d.length ? d.global_start : 0;
}

std::string ShardedDatabase::MaterializeXml(doc::NodeId global_root,
                                            bool pretty) const {
  xml::WriteOptions options;
  options.pretty = pretty;
  if (global_root == 0) {
    xml::XmlElement root;
    root.name = std::string(doc::kSuperRootLabel);
    root.children.reserve(docs_.size());
    for (const GlobalDoc& d : docs_) {
      root.children.push_back(std::make_unique<xml::XmlElement>(
          shards_[d.shard]->db.tree().ToXml(d.local_start)));
    }
    return xml::WriteXml(root, options);
  }
  auto it = std::upper_bound(docs_.begin(), docs_.end(), global_root,
                             [](doc::NodeId value, const GlobalDoc& d) {
                               return value < d.global_start;
                             });
  APPROXQL_DCHECK(it != docs_.begin());
  const GlobalDoc& d = *(it - 1);
  APPROXQL_DCHECK(global_root < d.global_start + d.length);
  doc::NodeId local = d.local_start + (global_root - d.global_start);
  return shards_[d.shard]->db.MaterializeXml(local, pretty);
}

Result<std::vector<engine::QueryAnswer>> ShardedDatabase::Execute(
    std::string_view query_text, const engine::ExecOptions& options,
    const ScatterOptions& scatter, ScatterStats* stats_out) const {
  ASSIGN_OR_RETURN(query::Query query, query::Parse(query_text));
  return Execute(query, options, scatter, stats_out);
}

Result<std::vector<engine::QueryAnswer>> ShardedDatabase::Execute(
    const query::Query& query, const engine::ExecOptions& options,
    const ScatterOptions& scatter, ScatterStats* stats_out) const {
  const size_t n_shards = shards_.size();
  // The shared inclusive skeleton-cost bound (schema strategy): the
  // cheapest boundary any shard has published so far. A shard that
  // accumulates n results at crossing cost c proves the global n-th
  // answer costs <= c, so skeletons costing strictly more are globally
  // useless everywhere.
  std::atomic<cost::Cost> bound{cost::kInfinite};
  const bool use_bound = scatter.share_cost_bound && n_shards > 1 &&
                         options.strategy == engine::Strategy::kSchema &&
                         options.n != SIZE_MAX;

  std::vector<std::vector<engine::RootCost>> lists(n_shards);
  std::vector<Status> statuses(n_shards, Status::OK());
  std::vector<engine::SchemaEvalStats> schema_stats(n_shards);
  std::vector<engine::EvalStats> direct_stats(n_shards);
  std::vector<uint64_t> eval_us(n_shards, 0);

  auto run_shard = [&](size_t i) {
    const Shard& sh = *shards_[i];
    engine::ExecOptions local = options;
    local.schema_stats_out = &schema_stats[i];
    local.direct_stats_out = &direct_stats[i];
    local.posting_source = nullptr;

    engine::FetchPlan plan;
    if (local.strategy == engine::Strategy::kDirect) {
      // Run against the shard's own stored postings — the partitioned
      // storage this subsystem exists for — and pre-materialize the
      // query's fetch set so the storage reads are timed separately
      // from evaluation.
      local.posting_source = sh.postings.get();
      const cost::CostModel& model =
          options.cost_model != nullptr ? *options.cost_model : model_;
      auto expanded = query::ExpandedQuery::Build(query, model);
      if (expanded.ok()) {  // else let Execute surface the error
        plan = engine::FetchPlan(*expanded);
        auto fetch_started = std::chrono::steady_clock::now();
        for (size_t slot = 0; slot < plan.size(); ++slot) {
          plan.Materialize(slot, engine::EncodedTree::Of(sh.db.tree()),
                           *sh.postings, sh.db.tree().labels());
        }
        sh.fetch_us->Record(ElapsedUs(fetch_started));
        local.direct.fetch_plan = &plan;
      }
    }
    if (local.strategy == engine::Strategy::kSchema) {
      if (scatter.cancelled) {
        auto inner = local.schema.cancelled;
        auto outer = scatter.cancelled;
        local.schema.cancelled = [inner, outer] {
          return (inner && inner()) || outer();
        };
      }
      if (use_bound) {
        auto* shared = &bound;
        local.schema.cost_bound = [shared] {
          return shared->load(std::memory_order_relaxed);
        };
        local.schema.publish_bound = [shared](cost::Cost c) {
          cost::Cost current = shared->load(std::memory_order_relaxed);
          while (c < current && !shared->compare_exchange_weak(
                                    current, c, std::memory_order_relaxed)) {
          }
        };
      }
      if (scatter.pool != nullptr && scatter.parallelism != 1 &&
          scatter.parallel_min_skeletons != SIZE_MAX) {
        // Inter-shard work stealing: this shard's second-level rounds
        // fan back out to the scatter pool, where workers that finished
        // their own shards pick them up (work-stealing deques make the
        // handoff cheap). The runner contract requires every index to
        // run, so no cancellation option here — the evaluator polls
        // between bounded waves.
        service::ThreadPool* pool = scatter.pool;
        service::ParallelForOptions wave_pf;
        wave_pf.parallelism = scatter.parallelism;
        local.schema.parallel_runner =
            [pool, wave_pf](size_t count,
                            const std::function<void(size_t)>& fn) {
              service::ParallelFor(pool, count, fn, wave_pf);
            };
        local.schema.parallel_min_batch = scatter.parallel_min_skeletons;
      }
    }

    auto eval_started = std::chrono::steady_clock::now();
    auto result = sh.db.Execute(query, local);
    eval_us[i] = ElapsedUs(eval_started);
    sh.eval_us->Record(eval_us[i]);
    if (!result.ok()) {
      statuses[i] = result.status();
      return;
    }
    std::vector<engine::RootCost>& list = lists[i];
    list.reserve(result->size());
    for (const engine::QueryAnswer& answer : *result) {
      // Local -> global translation is strictly increasing (docs are
      // appended to a shard in increasing global order), so the list
      // stays sorted by (cost, root) — MergeTopN's precondition.
      list.push_back({ToGlobal(i, answer.root), answer.cost});
    }
    sh.answers->Increment(list.size());
  };

  service::ParallelForOptions pf_options;
  pf_options.parallelism = scatter.parallelism;
  pf_options.cancelled = scatter.cancelled;
  service::ParallelForResult pf =
      service::ParallelFor(scatter.pool, n_shards, run_shard, pf_options);

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  bool mid_cancel = false;
  for (const engine::SchemaEvalStats& s : schema_stats) {
    mid_cancel = mid_cancel || s.cancelled;
  }
  // A skipped shard means a hole in the global ranking; a mid-shard
  // cancellation under a multi-shard layout likewise leaves some shard
  // short. With one shard, the partial prefix is still the correct
  // prefix of the global ranking (same contract as engine::Database).
  if (pf.skipped > 0 || (mid_cancel && n_shards > 1)) {
    if (stats_out != nullptr) {
      stats_out->final_bound = bound.load(std::memory_order_relaxed);
      stats_out->cancelled = true;
    }
    return Status::DeadlineExceeded(
        "query cancelled before all shards completed");
  }

  std::vector<engine::RootCost> merged = engine::MergeTopN(lists, options.n);
  if (stats_out != nullptr) {
    stats_out->shards.resize(n_shards);
    for (size_t i = 0; i < n_shards; ++i) {
      stats_out->shards[i].answers = lists[i].size();
      stats_out->shards[i].eval_us = eval_us[i];
      stats_out->schema.rounds += schema_stats[i].rounds;
      stats_out->schema.final_k += schema_stats[i].final_k;
      stats_out->schema.entries_created += schema_stats[i].entries_created;
      stats_out->schema.second_level_executed +=
          schema_stats[i].second_level_executed;
      stats_out->schema.instances_scanned += schema_stats[i].instances_scanned;
      stats_out->schema.shared_memo_hits += schema_stats[i].shared_memo_hits;
      stats_out->schema.k_capped =
          stats_out->schema.k_capped || schema_stats[i].k_capped;
      stats_out->schema.cancelled =
          stats_out->schema.cancelled || schema_stats[i].cancelled;
      stats_out->direct.fetches += direct_stats[i].fetches;
      stats_out->direct.entries_fetched += direct_stats[i].entries_fetched;
      stats_out->direct.list_ops += direct_stats[i].list_ops;
      stats_out->direct.cache_hits += direct_stats[i].cache_hits;
      stats_out->direct.cache_misses += direct_stats[i].cache_misses;
      stats_out->direct.and_short_circuits +=
          direct_stats[i].and_short_circuits;
    }
    stats_out->final_bound = bound.load(std::memory_order_relaxed);
    stats_out->cancelled = pf.cancelled || mid_cancel;
  }
  std::vector<engine::QueryAnswer> answers;
  answers.reserve(merged.size());
  for (const engine::RootCost& rc : merged) {
    answers.push_back({rc.root, rc.cost});
  }
  return answers;
}

ShardedDatabase::Stats ShardedDatabase::GetStats() const {
  Stats stats;
  stats.num_shards = shards_.size();
  stats.documents = docs_.size();
  stats.nodes = 1;  // the global super-root
  for (const GlobalDoc& d : docs_) stats.nodes += d.length;
  stats.global_classes = global_schema_.class_count();
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.per_shard.push_back(shard->db.GetStats());
  }
  return stats;
}

std::string ShardedDatabase::DumpMetrics() const {
  std::string out = metrics_->DumpText();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string stem = "shard" + std::to_string(i);
    out += stem + "_lock_waits " +
           std::to_string(shards_[i]->postings->lock_waits()) + "\n";
    out += stem + "_lock_wait_us " +
           std::to_string(shards_[i]->postings->lock_wait_us()) + "\n";
  }
  return out;
}

}  // namespace approxql::shard
