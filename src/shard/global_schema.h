// The merged, shard-agnostic structural summary of a partitioned
// corpus: the union of the per-shard DataGuides (paper Section 7.1),
// with one global class id per distinct label-type path. Query
// expansion (Section 6.1) only needs the query and the cost model, so
// it is already shard-agnostic; this summary restores the other global
// views sharding takes away — the corpus-wide class count, the distinct
// label vocabulary, and a stable mapping from any shard's local schema
// classes onto global ones (used by stats, EXPLAIN aggregation and the
// partition-invariant tests: merging the shard schemas must reproduce
// the unpartitioned schema path set exactly).
#ifndef APPROXQL_SHARD_GLOBAL_SCHEMA_H_
#define APPROXQL_SHARD_GLOBAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/database.h"

namespace approxql::shard {

class GlobalSchema {
 public:
  GlobalSchema() = default;
  GlobalSchema(const GlobalSchema&) = delete;
  GlobalSchema& operator=(const GlobalSchema&) = delete;
  GlobalSchema(GlobalSchema&&) = default;
  GlobalSchema& operator=(GlobalSchema&&) = default;

  /// Merges the schemas of `shards` (each a self-contained database over
  /// one partition). Global class ids are assigned in first-seen order
  /// (shard 0's schema preorder first), so the numbering is deterministic
  /// for a fixed shard layout.
  static GlobalSchema Merge(
      const std::vector<const engine::Database*>& shards);

  /// Number of distinct label-type paths across all shards.
  size_t class_count() const { return paths_.size(); }

  /// Global class id of a shard's local schema class.
  uint32_t GlobalClassOf(size_t shard, uint32_t local_class) const {
    return class_map_[shard][local_class];
  }

  /// The label-type path of a global class,
  /// e.g. "<root>/catalog/cd/title/<text>".
  const std::string& PathOf(uint32_t global_class) const {
    return paths_[global_class];
  }

  /// Global class id for a path, or UINT32_MAX if no shard contains it.
  uint32_t FindPath(std::string_view path) const;

  /// Distinct labels of `type` across every shard (words for kText).
  size_t LabelCount(NodeType type) const {
    return labels_[static_cast<int>(type)].size();
  }

  /// True iff some shard's corpus contains `label` with `type`.
  bool HasLabel(NodeType type, std::string_view label) const;

 private:
  std::vector<std::string> paths_;  // global class id -> path
  std::unordered_map<std::string, uint32_t> by_path_;
  std::vector<std::vector<uint32_t>> class_map_;  // [shard][local] -> global
  std::unordered_set<std::string> labels_[2];
};

}  // namespace approxql::shard

#endif  // APPROXQL_SHARD_GLOBAL_SCHEMA_H_
