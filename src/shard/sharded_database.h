// Sharded corpus: the collection is partitioned by document into N
// self-contained shards, each owning its own data tree, label postings
// (persisted into a per-shard store and served through a lazy
// StoredLabelIndex, so concurrent fetches hit disjoint storage), schema
// and statistics. A scatter-gather executor fans one query out across
// the shards and merges the per-shard top-n lists with MergeTopN.
//
// Equivalence (the subsystem's contract, asserted by tests at 1/2/4/8
// shards): sharded evaluation is bit-identical to evaluating the same
// corpus in one engine::Database.
//   - Every answer root except the super-root lies inside exactly one
//     document subtree, and its cost is computed entirely from that
//     subtree (the list algebra only looks below the root; pathcost
//     arithmetic is relative). The super-root itself can never be an
//     answer — its label "<root>" contains '<', which no query label or
//     renaming target can.
//   - Documents are assigned round-robin (doc j -> shard j % N) in
//     arrival order, so shard-local preorder is a strictly increasing
//     function of global preorder; per-shard (cost, root) rankings stay
//     sorted after translating roots back to global ids.
//   - Roots across shards are disjoint, so MergeTopN's duplicate-root
//     rule never fires and the merged list is exactly the single-shard
//     ranking truncated to n.
//   - The shared cost bound (schema strategy) prunes only skeletons
//     whose cost is strictly above a published shard boundary, which is
//     itself >= the global n-th answer cost — pruning never removes a
//     global top-n answer and cannot reorder ties.
#ifndef APPROXQL_SHARD_SHARDED_DATABASE_H_
#define APPROXQL_SHARD_SHARDED_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/database.h"
#include "index/stored_label_index.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "shard/global_schema.h"
#include "storage/kv_factory.h"
#include "storage/mem_kv_store.h"

namespace approxql::ingest {
class MutableCorpus;
}  // namespace approxql::ingest

namespace approxql::shard {

/// One document's placement: `length` consecutive preorder ids starting
/// at `local_start` in the shard's tree and `global_start` in the global
/// (unpartitioned) id space.
struct DocSpan {
  doc::NodeId local_start = 0;
  doc::NodeId global_start = 0;
  uint32_t length = 0;
};

/// Scatter-gather execution knobs (how, not what — the query-level
/// options stay in engine::ExecOptions).
struct ScatterOptions {
  /// Pool for the per-shard fan-out; null runs shards inline on the
  /// caller (still correct, just serial).
  service::ThreadPool* pool = nullptr;
  /// Maximum concurrent shard evaluations including the caller;
  /// 0 = pool size + 1.
  size_t parallelism = 0;
  /// Cooperative cancellation, polled between shards and inside each
  /// shard's schema evaluation.
  std::function<bool()> cancelled;
  /// Propagate the best known n-th answer cost across shards as an
  /// inclusive skeleton-cost bound (schema strategy only). Sound and
  /// bit-identity-preserving (see the equivalence notes above); off only
  /// for A/B measurement.
  bool share_cost_bound = true;
  /// Schema strategy: shard tasks fork their second-level rounds back
  /// into `pool` as concurrent waves (SchemaEvaluator::Options::
  /// parallel_runner), so workers whose shards finished early steal the
  /// straggler shards' skeleton work instead of idling at the gather
  /// barrier — skewed layouts no longer bound latency by their largest
  /// shard's serial second level. This is the per-round wave floor;
  /// SIZE_MAX disables the forking entirely.
  size_t parallel_min_skeletons = 8;
};

/// Per-execution observability for benchmarks and tests.
struct ScatterStats {
  struct PerShard {
    size_t answers = 0;
    uint64_t eval_us = 0;
  };
  std::vector<PerShard> shards;
  /// Field-wise sums over shards (flags OR-ed).
  engine::SchemaEvalStats schema;
  engine::EvalStats direct;
  /// Final value of the shared cost bound (kInfinite if never set).
  cost::Cost final_bound = cost::kInfinite;
  bool cancelled = false;
};

/// A document-partitioned corpus exposing the same read surface as
/// engine::Database (Execute / MaterializeXml / GetStats / Save-less).
/// Thread-safety mirrors Database: immutable after construction; all
/// const members safe concurrently (per-shard StoredLabelIndex and
/// metrics lock internally).
class ShardedDatabase {
 public:
  ShardedDatabase(ShardedDatabase&&) = default;
  ShardedDatabase& operator=(ShardedDatabase&&) = default;

  /// Incremental construction: documents are assigned to shards
  /// round-robin in the order they are added, and global ids are
  /// assigned exactly as DataTreeBuilder would in one tree.
  class Builder {
   public:
    /// `store_factory` produces each shard's posting store, invoked with
    /// the shard stem ("shard0", "shard1", ...); null means in-memory
    /// stores. Callers wanting files map the stem to a path.
    explicit Builder(size_t num_shards,
                     storage::StoreFactory store_factory = nullptr);

    /// Parses `xml` and adds it as the next document.
    util::Status AddDocumentXml(std::string_view xml);

    size_t document_count() const { return next_doc_; }

    /// Finalizes every shard. The builder is consumed.
    util::Result<ShardedDatabase> Build(cost::CostModel model) &&;

   private:
    std::vector<doc::DataTreeBuilder> builders_;
    std::vector<std::vector<DocSpan>> spans_;
    storage::StoreFactory store_factory_;
    size_t next_doc_ = 0;
    doc::NodeId next_global_ = 1;  // 0 is the super-root
  };

  /// Partitions an existing (unpartitioned) data tree: each document
  /// subtree is replayed into its shard's builder, so global ids are the
  /// ids of `tree` itself.
  static util::Result<ShardedDatabase> Partition(
      const doc::DataTree& tree, const cost::CostModel& model,
      size_t num_shards, storage::StoreFactory store_factory = nullptr);

  /// Builds from XML document strings (round-robin assignment).
  static util::Result<ShardedDatabase> BuildFromXml(
      const std::vector<std::string>& documents, cost::CostModel model,
      size_t num_shards);

  /// Loads a single-file database (engine::Database::Save format) and
  /// partitions it.
  static util::Result<ShardedDatabase> Load(
      const std::string& path, size_t num_shards,
      storage::StoreFactory store_factory = nullptr);

  /// Scatter-gather execution: runs the query on every shard (direct
  /// strategy against the shard's own stored postings; schema strategy
  /// with the shared cost bound) and merges the per-shard rankings.
  /// Answer roots are global ids. With a multi-shard layout a fired
  /// `scatter.cancelled` returns DeadlineExceeded — a partial scatter is
  /// not a correct prefix of the global ranking; with one shard the
  /// partial (still correct) prefix is returned, matching Database
  /// deadline semantics.
  util::Result<std::vector<engine::QueryAnswer>> Execute(
      std::string_view query_text, const engine::ExecOptions& options,
      const ScatterOptions& scatter, ScatterStats* stats_out = nullptr) const;
  util::Result<std::vector<engine::QueryAnswer>> Execute(
      const query::Query& query, const engine::ExecOptions& options,
      const ScatterOptions& scatter, ScatterStats* stats_out = nullptr) const;

  /// The result subtree of an answer (global id), serialized as XML.
  /// The super-root (id 0) reassembles all documents in global order,
  /// matching Database::MaterializeXml(0) on the unpartitioned corpus.
  std::string MaterializeXml(doc::NodeId global_root,
                             bool pretty = false) const;

  /// Global id of the document root containing `global` (0 for the
  /// super-root itself) — the unit answers are grouped by in the wire
  /// protocol.
  doc::NodeId DocRootOf(doc::NodeId global) const;

  /// Translates a shard-local node id to the global id space.
  doc::NodeId ToGlobal(size_t shard, doc::NodeId local) const;

  /// Inverse of ToGlobal: finds the shard + shard-local id of a global
  /// id. False when no document contains it (global 0 maps to shard 0,
  /// local 0 — every shard's super-root is the same node).
  bool ToLocal(doc::NodeId global, uint32_t* shard_out,
               doc::NodeId* local_out) const;

  size_t num_shards() const { return shards_.size(); }
  const engine::Database& shard(size_t i) const { return shards_[i]->db; }
  /// The shard's own stored postings (what direct-strategy scatters fetch
  /// from). Exposed for the contention benchmark's lock-wait counters.
  const index::StoredLabelIndex& shard_postings(size_t i) const {
    return *shards_[i]->postings;
  }
  const std::vector<DocSpan>& shard_spans(size_t i) const {
    return shards_[i]->spans;
  }
  const GlobalSchema& global_schema() const { return global_schema_; }
  const cost::CostModel& cost_model() const { return model_; }

  /// Fingerprint of the backend + shard layout: shard count, per-shard
  /// document/node counts. Two layouts answering queries over different
  /// partitions (or a partitioned vs. unpartitioned corpus) never share
  /// it; the result cache folds it into its key. Mutable corpora salt it
  /// with the ingest epoch, so every accepted mutation moves it.
  uint32_t LayoutFingerprint() const { return fingerprint_; }

  /// Ingest epoch this snapshot reflects (sum of per-shard durable
  /// sequence numbers); 0 for corpora built without live ingest.
  uint64_t epoch() const { return epoch_; }

  struct Stats {
    size_t num_shards = 0;
    size_t documents = 0;
    size_t nodes = 0;           // global id space size (incl. super-root)
    size_t global_classes = 0;  // merged schema size
    std::vector<engine::Database::Stats> per_shard;
  };
  Stats GetStats() const;

  /// Per-shard metrics snapshot: fetch/eval latency histograms, answer
  /// counts, stored-postings lock contention.
  std::string DumpMetrics() const;

 private:
  friend class approxql::ingest::MutableCorpus;

  struct Shard {
    explicit Shard(engine::Database database) : db(std::move(database)) {}

    engine::Database db;
    /// The shard's own posting storage: label postings persisted into a
    /// private store and fetched lazily — the partitioned counterpart of
    /// one shared StoredLabelIndex, so concurrent queries contend (if at
    /// all) only within a shard. Shared: a mutable corpus carries the
    /// same store across corpus generations (only the StoredLabelIndex
    /// view in front of it changes).
    std::shared_ptr<storage::KvStore> store;
    std::unique_ptr<index::StoredLabelIndex> postings;
    std::vector<DocSpan> spans;  // increasing local_start AND global_start
    service::LatencyHistogram* fetch_us = nullptr;  // owned by metrics_
    service::LatencyHistogram* eval_us = nullptr;
    service::Counter* answers = nullptr;
  };

  /// One document in the global id space, with its shard placement.
  struct GlobalDoc {
    doc::NodeId global_start = 0;
    uint32_t length = 0;
    uint32_t shard = 0;
    doc::NodeId local_start = 0;
  };

  ShardedDatabase() = default;

  /// Shared tail of all construction paths: per-shard stores/postings,
  /// metrics, merged schema, global doc table, fingerprint.
  static util::Result<ShardedDatabase> Assemble(
      std::vector<engine::Database> databases,
      std::vector<std::vector<DocSpan>> spans, cost::CostModel model,
      const storage::StoreFactory& store_factory = nullptr);

  /// Copy-on-write assembly for live ingest: shards arrive ready-made
  /// (most shared with the previous corpus generation, stores and all)
  /// and only the derived state — global doc table, merged schema,
  /// metric handles, epoch-salted fingerprint — is recomputed.
  static util::Result<ShardedDatabase> AssembleFromShards(
      std::vector<std::shared_ptr<Shard>> shards, cost::CostModel model,
      std::shared_ptr<service::MetricsRegistry> metrics, uint64_t epoch);

  cost::CostModel model_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<GlobalDoc> docs_;  // sorted by global_start
  GlobalSchema global_schema_;
  std::shared_ptr<service::MetricsRegistry> metrics_;
  uint32_t fingerprint_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace approxql::shard

#endif  // APPROXQL_SHARD_SHARDED_DATABASE_H_
