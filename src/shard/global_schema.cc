#include "shard/global_schema.h"

namespace approxql::shard {

GlobalSchema GlobalSchema::Merge(
    const std::vector<const engine::Database*>& shards) {
  GlobalSchema merged;
  merged.class_map_.resize(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const engine::Database& db = *shards[s];
    const schema::Schema& schema = db.schema();
    auto& local_to_global = merged.class_map_[s];
    local_to_global.resize(schema.size());
    for (uint32_t c = 0; c < schema.size(); ++c) {
      std::string path = schema.PathOf(c, db.tree().labels());
      auto [it, inserted] = merged.by_path_.emplace(
          std::move(path), static_cast<uint32_t>(merged.paths_.size()));
      if (inserted) merged.paths_.push_back(it->first);
      local_to_global[c] = it->second;
    }
    for (int t = 0; t < 2; ++t) {
      for (const auto& [label, posting] :
           db.label_index().postings(static_cast<NodeType>(t))) {
        merged.labels_[t].emplace(db.tree().labels().Get(label));
      }
    }
  }
  return merged;
}

uint32_t GlobalSchema::FindPath(std::string_view path) const {
  auto it = by_path_.find(std::string(path));
  return it == by_path_.end() ? UINT32_MAX : it->second;
}

bool GlobalSchema::HasLabel(NodeType type, std::string_view label) const {
  return labels_[static_cast<int>(type)].count(std::string(label)) > 0;
}

}  // namespace approxql::shard
