#include "dist/remote_shard.h"

#include <utility>

namespace approxql::dist {

const char* ToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kUp:
      return "UP";
    case ShardHealth::kSuspect:
      return "SUSPECT";
    case ShardHealth::kDown:
      return "DOWN";
  }
  return "?";
}

namespace {

net::AsyncClientOptions TransportOptions(const RemoteShardOptions& options) {
  net::AsyncClientOptions transport;
  transport.host = options.host;
  transport.port = options.port;
  transport.connect_timeout_ms = options.connect_timeout_ms;
  transport.max_frame_bytes = options.max_frame_bytes;
  transport.reconnect_backoff_ms = options.reconnect_backoff_ms;
  transport.reconnect_backoff_cap_ms = options.reconnect_backoff_cap_ms;
  if (options.on_delta) {
    transport.on_push = [on_delta = options.on_delta](
                            const net::FrameHeader& header,
                            std::string_view payload) {
      if (header.type !=
          static_cast<uint32_t>(net::MessageType::kManifestDelta)) {
        return;  // unknown push type; ignore
      }
      net::WireManifestDelta delta;
      if (net::DecodeManifestDelta(payload, &delta).ok()) {
        // A malformed delta is simply dropped: the receiver's epoch
        // chain gaps and the next delta forces a full slice fetch.
        on_delta(delta);
      }
    };
  }
  return transport;
}

}  // namespace

RemoteShardBackend::RemoteShardBackend(uint32_t shard_index,
                                       RemoteShardOptions options)
    : shard_index_(shard_index),
      options_(std::move(options)),
      client_(TransportOptions(options_)) {}

RemoteShardBackend::~RemoteShardBackend() { Shutdown(); }

util::Status RemoteShardBackend::Start() { return client_.Start(); }

void RemoteShardBackend::Shutdown() { client_.Shutdown(); }

ShardHealth RemoteShardBackend::health() const {
  util::MutexLock lock(&mu_);
  return health_;
}

void RemoteShardBackend::RecordOutcome(bool success) {
  util::MutexLock lock(&mu_);
  if (success) {
    consecutive_failures_ = 0;
    health_ = ShardHealth::kUp;
    return;
  }
  ++consecutive_failures_;
  health_ = consecutive_failures_ >= options_.failures_to_down
                ? ShardHealth::kDown
                : ShardHealth::kSuspect;
}

template <typename Payload>
util::Result<Payload> RemoteShardBackend::CheckReply(
    util::Result<std::pair<net::FrameHeader, std::string>>& reply,
    net::MessageType want,
    util::Status (*decode)(std::string_view, Payload*)) {
  if (!reply.ok()) {
    RecordOutcome(false);
    return reply.status();
  }
  if (reply->first.type != static_cast<uint32_t>(want)) {
    // A well-framed but wrong-typed reply (e.g. a plain server's
    // kUnimplemented kQueryResponse): the process on that port is not a
    // shard server. Permanent, like a fingerprint mismatch.
    RecordOutcome(false);
    return util::Status::Internal(
        endpoint() + " is not serving shard queries (reply type " +
        std::to_string(reply->first.type) + ")");
  }
  Payload payload;
  util::Status decoded = decode(reply->second, &payload);
  if (!decoded.ok()) {
    RecordOutcome(false);
    return decoded;
  }
  if (payload.fingerprint != options_.expected_fingerprint ||
      payload.shard_index != shard_index_) {
    RecordOutcome(false);
    return util::Status::Internal(
        "shard " + std::to_string(shard_index_) + " at " + endpoint() +
        ": layout fingerprint/index mismatch (theirs " +
        std::to_string(payload.fingerprint) + "/" +
        std::to_string(payload.shard_index) + ", ours " +
        std::to_string(options_.expected_fingerprint) + "/" +
        std::to_string(shard_index_) +
        ") — remote partitioned a different corpus");
  }
  RecordOutcome(true);
  return payload;
}

void RemoteShardBackend::CallShardQuery(const net::WireShardQuery& query,
                                        int deadline_ms, AnswerCallback done) {
  client_.Call(
      net::MessageType::kShardQuery, net::EncodeShardQuery(query), deadline_ms,
      [this, done = std::move(done)](
          util::Result<std::pair<net::FrameHeader, std::string>> reply) {
        done(CheckReply<net::WireShardAnswer>(
            reply, net::MessageType::kShardAnswer, &net::DecodeShardAnswer));
      });
}

void RemoteShardBackend::CallPing(int deadline_ms, PongCallback done) {
  client_.Call(
      net::MessageType::kPing, std::string(), deadline_ms,
      [this, done = std::move(done)](
          util::Result<std::pair<net::FrameHeader, std::string>> reply) {
        done(CheckReply<net::WirePong>(reply, net::MessageType::kPong,
                                       &net::DecodePong));
      });
}

void RemoteShardBackend::CallIngest(const net::WireIngest& ingest,
                                    int deadline_ms, IngestCallback done) {
  client_.Call(
      net::MessageType::kIngest, net::EncodeIngest(ingest), deadline_ms,
      [this, done = std::move(done)](
          util::Result<std::pair<net::FrameHeader, std::string>> reply) {
        // No CheckReply: acks have no fingerprint/shard stamp to verify.
        if (!reply.ok()) {
          RecordOutcome(false);
          done(reply.status());
          return;
        }
        if (reply->first.type !=
            static_cast<uint32_t>(net::MessageType::kIngestAck)) {
          RecordOutcome(false);
          done(util::Status::Internal(
              endpoint() + " is not serving ingest (reply type " +
              std::to_string(reply->first.type) + ")"));
          return;
        }
        net::WireIngestAck ack;
        util::Status decoded = net::DecodeIngestAck(reply->second, &ack);
        if (!decoded.ok()) {
          RecordOutcome(false);
          done(decoded);
          return;
        }
        // Any well-formed ack proves the server is alive; a rejected
        // mutation (bad XML, unknown doc) is not a health signal.
        RecordOutcome(true);
        done(ack);
      });
}

void RemoteShardBackend::CallManifestFetch(bool subscribe, int deadline_ms,
                                           SliceCallback done) {
  net::WireManifestFetch fetch;
  fetch.subscribe = subscribe;
  client_.Call(
      net::MessageType::kManifestFetch, net::EncodeManifestFetch(fetch),
      deadline_ms,
      [this, done = std::move(done)](
          util::Result<std::pair<net::FrameHeader, std::string>> reply) {
        if (!reply.ok()) {
          RecordOutcome(false);
          done(reply.status());
          return;
        }
        if (reply->first.type !=
            static_cast<uint32_t>(net::MessageType::kManifestSlice)) {
          RecordOutcome(false);
          done(util::Status::Internal(
              endpoint() + " is not serving manifest slices (reply type " +
              std::to_string(reply->first.type) + ")"));
          return;
        }
        net::WireManifestSlice slice;
        util::Status decoded = net::DecodeManifestSlice(reply->second, &slice);
        if (!decoded.ok()) {
          RecordOutcome(false);
          done(decoded);
          return;
        }
        if (slice.status_code !=
            static_cast<uint32_t>(util::StatusCode::kOk)) {
          // The server is alive but declined (e.g. not mutable); alive
          // for health purposes, but the fetch itself failed.
          RecordOutcome(true);
          util::StatusCode code =
              slice.status_code >
                      static_cast<uint32_t>(util::StatusCode::kUnavailable)
                  ? util::StatusCode::kInternal
                  : static_cast<util::StatusCode>(slice.status_code);
          done(util::Status(code, slice.status_message));
          return;
        }
        if (slice.shard_index != shard_index_) {
          // NOTE: the slice's fingerprint is the epoch-salted layout
          // stamp (diagnostics), deliberately not checked — only the
          // cluster position must match.
          RecordOutcome(false);
          done(util::Status::Internal(
              "shard " + std::to_string(shard_index_) + " at " + endpoint() +
              ": manifest slice for shard " +
              std::to_string(slice.shard_index) +
              " — endpoint serves a different cluster position"));
          return;
        }
        RecordOutcome(true);
        done(std::move(slice));
      });
}

}  // namespace approxql::dist
