// Partial-failure-aware scatter-gather over remote shard servers: the
// distributed counterpart of shard::ShardedDatabase::Execute. The
// router holds the SAME partition layout as every shard server (each
// process builds it independently from identical corpus flags, and the
// LayoutFingerprint stamped on every reply proves they agree), so it
// can translate shard-local preorder answers back to global ids through
// the DocSpan tables without shipping trees over the wire.
//
// One query fans out as one kShardQuery per shard, all concurrently
// (each shard endpoint has its own multiplexed AsyncClient, so queries
// also pipeline across concurrent callers). The shared inclusive
// skeleton-cost bound of in-process scatter-gather is propagated
// opportunistically: each shard that returns a full n answers reports
// its local n-th cost (a valid global inclusive bound), the router
// CAS-mins these into the execution's bound, and every retry snapshots
// the tightened value. Bit-identity with in-process execution holds
// because any inclusive bound >= the final global n-th cost prunes only
// answers that cannot reach the merged top n (see the equivalence notes
// in shard/sharded_database.h).
//
// Failure handling:
//   - transient errors (connection loss, attempt deadline, shard
//     draining/overloaded, truncated shard answer) are retried with
//     jittered exponential backoff up to max_retries per shard;
//   - permanent errors (fingerprint mismatch, bad query) are not;
//   - a shard that stays missing makes the response DEGRADED: the
//     merged answers cover only the shards that responded, and
//     missing_shards names the holes — the caller layer must never
//     cache such a result. strict=true turns any hole into a fail-fast
//     kUnavailable instead;
//   - every shard missing is kUnavailable regardless of mode;
//   - a bad query (parse/invalid-argument from a shard) fails the query
//     itself — it would fail identically on every shard.
//
// A background health checker pings every shard each health_period_ms;
// outcomes drive the per-shard UP/SUSPECT/DOWN machine (see
// remote_shard.h). DOWN shards are skipped by non-strict queries
// (counted missing immediately, no timeout burned) until a ping
// revives them.
//
// LIVE-CLUSTER MODE (the cluster::ClusterConfig constructor): the
// shards are mutable servers ingesting concurrently, so there is no
// static layout to agree on. Instead the router keeps a composite
// cluster::ManifestView of per-shard manifest slices, each tagged with
// the ingest epoch it describes, synchronized by kManifestDelta pushes
// with kManifestFetch as bootstrap/gap fallback. Every kShardAnswer
// carries the epoch of the snapshot that produced it, and its local ids
// are translated through the slice of EXACTLY that epoch: a missing
// slice is fetched and the answer retranslated; if the slice still
// cannot be had (or the answer predates a caller's read-your-writes
// min-epoch floor) the shard is re-queried inside the normal retry
// loop; a genuine inconsistency fails that shard rather than guessing.
// The per-answer stamp becomes cluster::ClusterFingerprint (cost model
// + shard count), which validates configuration; the epoch validates
// layout. Ingest in this mode assigns cluster-wide global root ids
// (WireIngest::assigned_global) from the view's id-space high-water
// mark, serialized so acked documents get sequential ids.
#ifndef APPROXQL_DIST_SHARD_ROUTER_H_
#define APPROXQL_DIST_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/manifest_view.h"
#include "dist/remote_shard.h"
#include "engine/database.h"
#include "service/metrics.h"
#include "shard/layout_manifest.h"
#include "shard/sharded_database.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::dist {

struct RouterOptions {
  struct Endpoint {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };
  /// One endpoint per shard, in shard-index order; size must equal the
  /// layout's num_shards().
  std::vector<Endpoint> shards;

  int connect_timeout_ms = 2000;
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Deadline for each shard attempt; a query-level deadline caps it
  /// further. <= 0 means attempts are bounded only by the query.
  int attempt_deadline_ms = 2000;
  /// Retries per shard beyond the first attempt, transient errors only.
  int max_retries = 2;
  int retry_backoff_ms = 10;
  int retry_backoff_cap_ms = 200;
  /// Any unreachable shard fails the query (kUnavailable) instead of
  /// degrading the answer.
  bool strict = false;
  /// Health-probe period; 0 disables the checker thread (health is then
  /// driven by query outcomes alone).
  int health_period_ms = 500;
  int ping_deadline_ms = 250;
  int failures_to_down = 3;

  // Live-cluster mode only (the ClusterConfig constructor).

  /// Subscribe to kManifestDelta pushes on every manifest fetch. Tests
  /// disable this to force the fetch-on-stale-epoch path.
  bool manifest_subscribe = true;
  /// Superseded epochs kept translatable per shard (ManifestView).
  size_t manifest_history_depth = 32;
  /// Bound on post-scatter reconciliation rounds (fetch-retranslate or
  /// re-query) per Execute before a still-unresolvable shard is
  /// declared missing. Each round re-enters the normal retry loop.
  int max_epoch_rounds = 3;
};

struct RoutedResult {
  /// Merged global top-n; roots are global preorder ids.
  std::vector<engine::QueryAnswer> answers;
  /// One or more shards never answered: `answers` covers only the
  /// responding shards. NEVER cache a degraded result.
  bool degraded = false;
  std::vector<uint32_t> missing_shards;  // sorted
  /// Final value of the shared cost bound (kInfinite if never set).
  cost::Cost final_bound = cost::kInfinite;
  /// Retry attempts this execution spent.
  uint32_t retries = 0;
  /// Live-cluster mode: the minimum ingest epoch across the shard
  /// answers merged here (the read-your-writes watermark); 0 otherwise.
  uint64_t backend_epoch = 0;
};

class ShardRouter {
 public:
  /// The router needs only the partition's *layout* (DocSpan
  /// translation tables, fingerprint, cost model) — never the data. A
  /// router host passes a LayoutManifest saved next to the corpus; the
  /// manifest is copied, so nothing must outlive the router.
  ShardRouter(shard::LayoutManifest manifest, RouterOptions options);
  /// Convenience for co-located deployments that already hold the full
  /// partition: extracts the manifest from it.
  ShardRouter(const shard::ShardedDatabase& layout, RouterOptions options);
  /// Live-cluster mode: the shards are mutable servers with no static
  /// layout. The router needs only the cluster's configuration (shared
  /// cost model + shard count); the moving document layout is tracked
  /// by an epoch-versioned manifest view synchronized over the wire.
  ShardRouter(const cluster::ClusterConfig& config, RouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts the per-shard transports and the health checker. Does not
  /// require any shard to be up yet.
  util::Status Start();
  void Shutdown();

  /// Scatter-gathers one query. `deadline_ms` <= 0 means no overall
  /// deadline (attempts still bound themselves). n == SIZE_MAX asks for
  /// all results (no bound sharing, exactly like in-process). Blocks
  /// the calling thread; safe from many threads concurrently.
  /// `min_epochs` (live-cluster mode): per-shard read-your-writes
  /// floors — shard i's answer must have been computed at epoch >=
  /// min_epochs[i] (shards beyond the vector have no floor); an answer
  /// below its floor is re-queried, never returned.
  util::Result<RoutedResult> Execute(const std::string& query_text,
                                     engine::Strategy strategy, size_t n,
                                     int64_t deadline_ms,
                                     const std::vector<uint64_t>& min_epochs =
                                         {});

  /// Routes one ingest mutation and blocks for the ack. Adds go to the
  /// shard this router has sent the fewest documents (ties to the
  /// lowest index — matching MutableCorpus's in-process placement when
  /// one router owns all ingest); removes are tried on each shard in
  /// index order until one answers anything but NOT_FOUND. No retries:
  /// a transport failure leaves the mutation in doubt (it may be
  /// durable on the shard), so the caller must reconcile via a query
  /// rather than blindly resend. NOTE: ingest acks carry no layout
  /// fingerprint — the mutable corpus's layout moves with every ingest,
  /// so this router's static manifest does NOT translate the mutated
  /// corpus's answers; Ingest is for driving mutable shard servers, not
  /// for querying them through Execute().
  util::Result<net::WireIngestAck> Ingest(const net::WireIngest& ingest,
                                          int64_t deadline_ms);

  const shard::LayoutManifest& manifest() const { return manifest_; }
  const cost::CostModel& cost_model() const { return manifest_.cost_model(); }
  uint32_t layout_fingerprint() const { return manifest_.fingerprint(); }
  size_t num_shards() const { return backends_.size(); }
  ShardHealth shard_health(size_t i) const { return backends_[i]->health(); }
  const RouterOptions& options() const { return options_; }

  /// True in live-cluster mode: answers move with ingest, so callers
  /// must never cache routed results.
  bool live() const { return view_ != nullptr; }
  /// Live mode: the composite manifest view (tests inspect epochs).
  const cluster::ManifestView* view() const { return view_.get(); }
  /// Document root containing `global` — through the live view in
  /// cluster mode, through the static manifest otherwise (the wire
  /// layer's doc_root_of for a cluster router host).
  doc::NodeId DocRootOfGlobal(doc::NodeId global) const;

  /// dist_* counters/gauges plus per-shard health and transport lines.
  std::string DumpMetrics() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct ScatterState;

  ShardRouter(shard::LayoutManifest manifest, RouterOptions options,
              bool live);

  /// Issues one attempt against shard `i`. `attempt` tags the slot so a
  /// late reply from a superseded attempt is ignored.
  void LaunchAttempt(const std::shared_ptr<ScatterState>& state, size_t i,
                     int attempt, bool share_bound, int64_t deadline_ms,
                     Clock::time_point overall_deadline);
  void HealthLoop();
  void UpdateHealthGauges();

  // Live-cluster manifest synchronization.

  /// A kManifestDelta push from shard `i`'s transport (IO thread).
  /// Applies it to the view; a gap triggers an async full refetch.
  void OnDelta(size_t i, const net::WireManifestDelta& delta);
  /// Fire-and-forget slice refetch, deduplicated per shard (delta gaps
  /// and stale pongs may fire faster than fetches complete). Also
  /// re-establishes the delta subscription after a reconnect.
  void RefetchSliceAsync(size_t i);
  /// Blocking slice fetch + install (the Execute reconciliation path).
  util::Status FetchSliceBlocking(size_t i, int deadline_ms);
  /// Re-fetches every shard's slice and rebases next_global_ on the
  /// view's id-space high-water mark (ingest bootstrap / collision
  /// recovery).
  util::Status ResyncGlobals(int deadline_ms) REQUIRES(assign_mu_);
  /// The live-cluster ingest path (id assignment + epoch-aware acks).
  util::Result<net::WireIngestAck> IngestLive(const net::WireIngest& ingest,
                                              int attempt_deadline_ms);
  util::Result<net::WireIngestAck> CallIngestBlocking(
      size_t i, const net::WireIngest& ingest, int deadline_ms);

  const shard::LayoutManifest manifest_;
  const RouterOptions options_;
  /// Non-null exactly in live-cluster mode.
  const std::unique_ptr<cluster::ManifestView> view_;
  std::vector<std::unique_ptr<RemoteShardBackend>> backends_;
  /// Per-shard refetch-in-flight latch (live mode; sized num_shards).
  std::unique_ptr<std::atomic<bool>[]> refetch_inflight_;

  /// Live mode: serializes global-id assignment with the ack that
  /// confirms it (the next id depends on the previous ack's length).
  util::Mutex assign_mu_;
  /// Next cluster-global root id to assign; 0 = must resync from the
  /// view before assigning (bootstrap, or the last assign ended in
  /// doubt).
  doc::NodeId next_global_ GUARDED_BY(assign_mu_) = 0;

  /// One ack'd kAdd count per shard, for least-loaded placement.
  mutable util::Mutex ingest_mu_;
  std::vector<uint64_t> ingest_docs_ GUARDED_BY(ingest_mu_);

  std::thread health_thread_;
  util::Mutex health_mu_;
  util::CondVar health_cv_;
  bool health_stop_ GUARDED_BY(health_mu_) = false;
  bool started_ = false;

  service::MetricsRegistry metrics_;
  service::Counter* queries_;
  service::Counter* degraded_;
  service::Counter* strict_failures_;
  service::Counter* shard_calls_;
  service::Counter* shard_retries_;
  service::Counter* shard_failures_;
  service::Counter* shards_missing_;
  service::Counter* bound_updates_;
  service::Counter* health_pings_;
  service::Counter* health_ping_failures_;
  service::Counter* ingest_calls_;
  service::Counter* ingest_failures_;
  service::Counter* manifest_fetches_;
  service::Counter* manifest_fetch_failures_;
  service::Counter* manifest_deltas_;
  service::Counter* manifest_delta_gaps_;
  service::Counter* epoch_requeries_;
  service::Gauge* shards_up_;
  service::Gauge* shards_down_;
  service::LatencyHistogram* scatter_us_;
};

}  // namespace approxql::dist

#endif  // APPROXQL_DIST_SHARD_ROUTER_H_
