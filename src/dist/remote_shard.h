// One remote shard endpoint, typed: wraps a net::AsyncClient with the
// shard-scoped wire calls (kShardQuery, kPing), verifies every reply's
// layout fingerprint and shard index against what the router expects,
// and runs the per-shard health state machine
//
//     UP --failure--> SUSPECT --(failures_to_down consecutive)--> DOWN
//      ^------------------------any success-----------------------'
//
// fed by both the query path and the periodic health probes. Health
// only steers routing (a DOWN shard is skipped, not retried, until a
// probe revives it); correctness never depends on it — a wrongly-UP
// shard just costs a timed-out attempt.
#ifndef APPROXQL_DIST_REMOTE_SHARD_H_
#define APPROXQL_DIST_REMOTE_SHARD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/async_client.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::dist {

enum class ShardHealth { kUp, kSuspect, kDown };
const char* ToString(ShardHealth health);

struct RemoteShardOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  int reconnect_backoff_ms = 20;
  int reconnect_backoff_cap_ms = 1000;
  /// Consecutive failures before SUSPECT becomes DOWN.
  int failures_to_down = 3;
  /// The router's own layout fingerprint. A reply stamped with any
  /// other value means the remote process partitioned a different
  /// corpus — its local preorders cannot be translated, so the call
  /// fails kInternal (permanent) instead of returning garbage answers.
  /// Live clusters stamp cluster::ClusterFingerprint instead (the
  /// moving layout is pinned per answer by the epoch, not the stamp).
  uint32_t expected_fingerprint = 0;
  /// Manifest-delta pushes (kManifestDelta frames with request_id 0)
  /// decoded off the transport land here. Runs on the transport's IO
  /// thread — must not block. Malformed pushes are dropped (the epoch
  /// chain then gaps and the subscriber full-fetches).
  std::function<void(const net::WireManifestDelta&)> on_delta;
};

class RemoteShardBackend {
 public:
  RemoteShardBackend(uint32_t shard_index, RemoteShardOptions options);
  ~RemoteShardBackend();

  RemoteShardBackend(const RemoteShardBackend&) = delete;
  RemoteShardBackend& operator=(const RemoteShardBackend&) = delete;

  util::Status Start();
  /// Joins the transport's IO thread; every outstanding callback fires
  /// (with kUnavailable) before this returns.
  void Shutdown();

  /// One shard-scoped evaluation. `done` runs on the transport's IO
  /// thread (it must not block) with either a decoded, fingerprint-
  /// verified answer — whose status_code may still be non-OK — or the
  /// error explaining why none came. Transport outcomes feed the health
  /// state machine automatically.
  using AnswerCallback =
      std::function<void(util::Result<net::WireShardAnswer>)>;
  void CallShardQuery(const net::WireShardQuery& query, int deadline_ms,
                      AnswerCallback done);

  /// One health probe. Same callback/threading rules as CallShardQuery.
  using PongCallback = std::function<void(util::Result<net::WirePong>)>;
  void CallPing(int deadline_ms, PongCallback done);

  /// One ingest mutation against a mutable shard server. Same callback/
  /// threading rules as CallShardQuery. Acks carry no layout
  /// fingerprint (a mutable corpus's layout changes with every ingest),
  /// so only the frame type and decode are verified; a non-OK ack
  /// status comes back inside the WireIngestAck, not as an error.
  using IngestCallback = std::function<void(util::Result<net::WireIngestAck>)>;
  void CallIngest(const net::WireIngest& ingest, int deadline_ms,
                  IngestCallback done);

  /// Fetches the shard server's current manifest slice; subscribe=true
  /// additionally registers this connection for kManifestDelta pushes
  /// (delivered to RemoteShardOptions::on_delta). Only the frame type,
  /// decode, and shard index are verified — the slice's fingerprint is
  /// the epoch-salted layout stamp, diagnostics only. A non-OK
  /// status_code inside the slice surfaces as that error.
  using SliceCallback =
      std::function<void(util::Result<net::WireManifestSlice>)>;
  void CallManifestFetch(bool subscribe, int deadline_ms, SliceCallback done);

  ShardHealth health() const;
  /// Feeds the state machine directly (the Call* paths do it for their
  /// own outcomes; the router adds query-level signals like a shard
  /// answering "draining").
  void RecordOutcome(bool success);

  uint32_t shard_index() const { return shard_index_; }
  std::string endpoint() const {
    return options_.host + ":" + std::to_string(options_.port);
  }
  net::AsyncClient::Stats transport_stats() const { return client_.stats(); }

 private:
  /// Shared tail of both Call paths: type-check the frame, decode,
  /// verify the stamp, record the outcome.
  template <typename Payload>
  util::Result<Payload> CheckReply(
      util::Result<std::pair<net::FrameHeader, std::string>>& reply,
      net::MessageType want,
      util::Status (*decode)(std::string_view, Payload*));

  const uint32_t shard_index_;
  const RemoteShardOptions options_;
  net::AsyncClient client_;

  mutable util::Mutex mu_;
  ShardHealth health_ GUARDED_BY(mu_) = ShardHealth::kUp;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
};

}  // namespace approxql::dist

#endif  // APPROXQL_DIST_REMOTE_SHARD_H_
