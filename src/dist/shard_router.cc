#include "dist/shard_router.h"

#include <algorithm>
#include <future>
#include <utility>

#include "engine/list_ops.h"
#include "net/socket.h"
#include "util/logging.h"
#include "util/random.h"

namespace approxql::dist {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Codes a TRANSPORT failure may retry on. kResourceExhausted is
/// deliberately absent: at the transport layer it means the request
/// exceeded the frame limit, which a retry cannot fix.
bool TransportTransient(util::StatusCode code) {
  return code == util::StatusCode::kUnavailable ||
         code == util::StatusCode::kDeadlineExceeded ||
         code == util::StatusCode::kIoError;
}

/// Guarded cast of a wire status code (a newer peer's unknown code
/// degrades to kInternal instead of an out-of-range enum).
util::StatusCode CodeOf(uint32_t wire_code) {
  if (wire_code > static_cast<uint32_t>(util::StatusCode::kUnavailable)) {
    return util::StatusCode::kInternal;
  }
  return static_cast<util::StatusCode>(wire_code);
}

/// The live-cluster router's stand-in manifest: the right shard count
/// and cost model under the cluster fingerprint, with no spans — all id
/// translation happens through the epoch-versioned view instead.
shard::LayoutManifest StubManifest(const cluster::ClusterConfig& config) {
  return shard::LayoutManifest(
      cluster::ClusterFingerprint(config.model, config.num_shards),
      config.model,
      std::vector<std::vector<shard::DocSpan>>(config.num_shards));
}

}  // namespace

/// Shared between the coordinating thread and the transports' IO
/// callbacks; heap-held via shared_ptr so a reply that arrives after
/// the coordinator gave up (overall deadline, strict fail-fast) lands
/// in still-valid memory and is dropped by the staleness check.
struct ShardRouter::ScatterState {
  enum class SlotState {
    kPending,    // an attempt is in flight
    kRetryWait,  // failed transiently; waiting out the backoff
    kDone,
  };
  struct Slot {
    SlotState state = SlotState::kPending;
    int attempt = 0;  // attempt the in-flight call belongs to
    Clock::time_point retry_at;
    bool ok = false;
    /// The failure is the query's own fault (parse/invalid argument):
    /// it would fail identically on every shard, so it fails the query
    /// rather than degrading the answer.
    bool query_error = false;
    util::Status error = util::Status::OK();
    net::WireShardAnswer answer;
    /// Live-cluster mode: the answer's local ids translated through the
    /// slice of exactly answer.backend_epoch (reconciliation fills it).
    std::vector<engine::RootCost> translated;
    bool translated_done = false;
  };

  explicit ScatterState(size_t num_shards) : slots(num_shards) {}

  // Immutable after Execute fills them, before the first launch.
  std::string query_text;
  engine::Strategy strategy = engine::Strategy::kSchema;
  uint64_t wire_n = 10;

  util::Mutex mu;
  util::CondVar cv;
  std::vector<Slot> slots GUARDED_BY(mu);
  util::Rng rng GUARDED_BY(mu);

  /// The execution's shared inclusive cost bound, CAS-min'd by
  /// callbacks and snapshotted by every (re)launch.
  std::atomic<int64_t> bound{cost::kInfinite};
  std::atomic<uint32_t> retries{0};
};

ShardRouter::ShardRouter(const shard::ShardedDatabase& layout,
                         RouterOptions options)
    : ShardRouter(shard::LayoutManifest::Of(layout), std::move(options)) {}

ShardRouter::ShardRouter(shard::LayoutManifest manifest, RouterOptions options)
    : ShardRouter(std::move(manifest), std::move(options), /*live=*/false) {}

ShardRouter::ShardRouter(const cluster::ClusterConfig& config,
                         RouterOptions options)
    : ShardRouter(StubManifest(config), std::move(options), /*live=*/true) {}

ShardRouter::ShardRouter(shard::LayoutManifest manifest, RouterOptions options,
                         bool live)
    : manifest_(std::move(manifest)),
      options_(std::move(options)),
      view_(live ? std::make_unique<cluster::ManifestView>(
                       manifest_.num_shards(),
                       options_.manifest_history_depth)
                 : nullptr),
      queries_(metrics_.RegisterCounter("dist_queries")),
      degraded_(metrics_.RegisterCounter("dist_degraded")),
      strict_failures_(metrics_.RegisterCounter("dist_strict_failures")),
      shard_calls_(metrics_.RegisterCounter("dist_shard_calls")),
      shard_retries_(metrics_.RegisterCounter("dist_shard_retries")),
      shard_failures_(metrics_.RegisterCounter("dist_shard_failures")),
      shards_missing_(metrics_.RegisterCounter("dist_shards_missing")),
      bound_updates_(metrics_.RegisterCounter("dist_bound_updates")),
      health_pings_(metrics_.RegisterCounter("dist_health_pings")),
      health_ping_failures_(
          metrics_.RegisterCounter("dist_health_ping_failures")),
      ingest_calls_(metrics_.RegisterCounter("dist_ingest_calls")),
      ingest_failures_(metrics_.RegisterCounter("dist_ingest_failures")),
      manifest_fetches_(metrics_.RegisterCounter("dist_manifest_fetches")),
      manifest_fetch_failures_(
          metrics_.RegisterCounter("dist_manifest_fetch_failures")),
      manifest_deltas_(metrics_.RegisterCounter("dist_manifest_deltas")),
      manifest_delta_gaps_(
          metrics_.RegisterCounter("dist_manifest_delta_gaps")),
      epoch_requeries_(metrics_.RegisterCounter("dist_epoch_requeries")),
      shards_up_(metrics_.RegisterGauge("dist_shards_up")),
      shards_down_(metrics_.RegisterGauge("dist_shards_down")),
      scatter_us_(metrics_.RegisterHistogram("dist_scatter_us")) {
  backends_.reserve(options_.shards.size());
  if (view_ != nullptr) {
    refetch_inflight_ =
        std::make_unique<std::atomic<bool>[]>(options_.shards.size());
    for (size_t i = 0; i < options_.shards.size(); ++i) {
      refetch_inflight_[i].store(false, std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    RemoteShardOptions shard;
    shard.host = options_.shards[i].host;
    shard.port = options_.shards[i].port;
    shard.connect_timeout_ms = options_.connect_timeout_ms;
    shard.max_frame_bytes = options_.max_frame_bytes;
    shard.failures_to_down = options_.failures_to_down;
    shard.expected_fingerprint = manifest_.fingerprint();
    if (view_ != nullptr) {
      shard.on_delta = [this, i](const net::WireManifestDelta& delta) {
        OnDelta(i, delta);
      };
    }
    backends_.push_back(std::make_unique<RemoteShardBackend>(
        static_cast<uint32_t>(i), std::move(shard)));
  }
  shards_up_->Set(static_cast<int64_t>(backends_.size()));
  {
    util::MutexLock lock(&ingest_mu_);
    ingest_docs_.assign(backends_.size(), 0);
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

util::Status ShardRouter::Start() {
  if (options_.shards.size() != manifest_.num_shards()) {
    return util::Status::InvalidArgument(
        "router has " + std::to_string(options_.shards.size()) +
        " endpoints but the layout has " +
        std::to_string(manifest_.num_shards()) + " shards");
  }
  for (auto& backend : backends_) {
    RETURN_IF_ERROR(backend->Start());
  }
  if (options_.health_period_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  started_ = true;
  if (view_ != nullptr) {
    // Bootstrap the view (and the delta subscriptions) without blocking
    // startup: a query racing the fetches just fetches on demand in its
    // own reconciliation pass.
    for (size_t i = 0; i < backends_.size(); ++i) RefetchSliceAsync(i);
  }
  return util::Status::OK();
}

void ShardRouter::Shutdown() {
  {
    util::MutexLock lock(&health_mu_);
    health_stop_ = true;
    health_cv_.NotifyAll();
  }
  if (health_thread_.joinable()) health_thread_.join();
  // Joining each transport flushes its outstanding callbacks, so no
  // reply handler can run against a dead router after this returns.
  for (auto& backend : backends_) backend->Shutdown();
}

void ShardRouter::LaunchAttempt(const std::shared_ptr<ScatterState>& state,
                                size_t i, int attempt, bool share_bound,
                                int64_t deadline_ms,
                                Clock::time_point overall_deadline) {
  (void)deadline_ms;
  shard_calls_->Increment();
  net::WireShardQuery query;
  query.query = state->query_text;
  query.strategy = state->strategy;
  query.n = state->wire_n;
  // Opportunistic bound propagation: a retry (and every attempt issued
  // after some shard already answered) snapshots the tightest bound
  // known so far — the shard prunes with it exactly like an in-process
  // scatter participant.
  query.cost_bound = share_bound
                         ? state->bound.load(std::memory_order_acquire)
                         : cost::kInfinite;
  int64_t attempt_deadline = options_.attempt_deadline_ms;
  if (overall_deadline != Clock::time_point::max()) {
    int64_t remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                            overall_deadline - Clock::now())
                            .count();
    if (remaining < 1) remaining = 1;
    attempt_deadline = attempt_deadline > 0
                           ? std::min<int64_t>(attempt_deadline, remaining)
                           : remaining;
  }
  query.deadline_ms = attempt_deadline;  // server-side enforcement too

  backends_[i]->CallShardQuery(
      query, static_cast<int>(attempt_deadline),
      [this, state, i, attempt,
       share_bound](util::Result<net::WireShardAnswer> result) {
        util::MutexLock lock(&state->mu);
        ScatterState::Slot& slot = state->slots[i];
        if (slot.state != ScatterState::SlotState::kPending ||
            slot.attempt != attempt) {
          return;  // superseded or abandoned attempt; drop silently
        }

        util::Status failure = util::Status::OK();
        bool permanent = false;
        bool query_error = false;
        if (!result.ok()) {
          failure = result.status();
          permanent = !TransportTransient(failure.code());
        } else {
          net::WireShardAnswer& answer = *result;
          const util::StatusCode code = CodeOf(answer.status_code);
          if (code == util::StatusCode::kOk && !answer.truncated) {
            const cost::Cost achieved = answer.achieved_bound;
            slot.state = ScatterState::SlotState::kDone;
            slot.ok = true;
            slot.answer = std::move(answer);
            if (share_bound && cost::IsFinite(achieved)) {
              int64_t current = state->bound.load(std::memory_order_relaxed);
              while (achieved < current) {
                if (state->bound.compare_exchange_weak(
                        current, achieved, std::memory_order_acq_rel)) {
                  bound_updates_->Increment();
                  break;
                }
              }
            }
            state->cv.NotifyAll();
            return;
          }
          if (code == util::StatusCode::kOk) {
            // Truncated: a correct but short prefix is useless for the
            // global merge — a failed attempt, worth retrying with more
            // of the overall budget.
            failure = util::Status::DeadlineExceeded(
                "shard answer truncated by its server-side deadline");
          } else {
            failure = util::Status(code, answer.status_message);
            query_error = code == util::StatusCode::kInvalidArgument ||
                          code == util::StatusCode::kParseError;
            permanent = query_error;
            // The shard is alive but answering "going away"/"overloaded"
            // — that is routing-relevant even though the transport and
            // fingerprint checks passed.
            if (code == util::StatusCode::kUnavailable) {
              backends_[i]->RecordOutcome(false);
            }
          }
        }

        shard_failures_->Increment();
        slot.error = failure;
        if (!permanent && slot.attempt < options_.max_retries) {
          slot.state = ScatterState::SlotState::kRetryWait;
          slot.retry_at =
              Clock::now() +
              std::chrono::milliseconds(net::JitteredBackoffMs(
                  slot.attempt, options_.retry_backoff_ms,
                  options_.retry_backoff_cap_ms, state->rng.Next()));
        } else {
          slot.state = ScatterState::SlotState::kDone;
          slot.query_error = query_error;
        }
        state->cv.NotifyAll();
      });
}

util::Result<RoutedResult> ShardRouter::Execute(
    const std::string& query_text, engine::Strategy strategy, size_t n,
    int64_t deadline_ms, const std::vector<uint64_t>& min_epochs) {
  APPROXQL_CHECK(started_) << "ShardRouter::Execute before Start";
  queries_->Increment();
  const Clock::time_point started = Clock::now();
  const size_t num_shards = backends_.size();
  const Clock::time_point overall_deadline =
      deadline_ms > 0 ? started + std::chrono::milliseconds(deadline_ms)
                      : Clock::time_point::max();
  // Matches the in-process condition (ShardedDatabase::Execute): the
  // bound is an inclusive skeleton-cost prune, sound only for the
  // schema strategy's top-n, and pointless for n=all or one shard.
  const bool share_bound = strategy == engine::Strategy::kSchema &&
                           num_shards > 1 && n != SIZE_MAX;

  auto state = std::make_shared<ScatterState>(num_shards);
  state->query_text = query_text;
  state->strategy = strategy;
  state->wire_n = n == SIZE_MAX ? UINT64_MAX : static_cast<uint64_t>(n);

  std::vector<size_t> initial;
  initial.reserve(num_shards);
  {
    util::MutexLock lock(&state->mu);
    state->rng.Seed(reinterpret_cast<uintptr_t>(state.get()) ^
                    static_cast<uint64_t>(
                        started.time_since_epoch().count()));
    for (size_t i = 0; i < num_shards; ++i) {
      if (backends_[i]->health() == ShardHealth::kDown) {
        // No timeout burned on a shard the health checker already
        // declared dead; a ping revives it for later queries.
        state->slots[i].state = ScatterState::SlotState::kDone;
        state->slots[i].error = util::Status::Unavailable(
            "shard " + std::to_string(i) + " (" + backends_[i]->endpoint() +
            ") is DOWN");
      } else {
        initial.push_back(i);
      }
    }
  }
  for (size_t i : initial) {
    LaunchAttempt(state, i, /*attempt=*/0, share_bound, deadline_ms,
                  overall_deadline);
  }

  const auto floor_of = [&min_epochs](size_t i) -> uint64_t {
    return i < min_epochs.size() ? min_epochs[i] : 0;
  };
  // Live mode: translate one shard answer's local ids through the slice
  // of exactly the epoch it was computed under. Unavailable = the view
  // lacks that epoch (retryable by fetching); any other error is a real
  // inconsistency — the answer must not be guessed onto global ids.
  const auto translate = [this](size_t i, const net::WireShardAnswer& answer)
      -> util::Result<std::vector<engine::RootCost>> {
    std::vector<engine::RootCost> list;
    list.reserve(answer.answers.size());
    for (const net::WireAnswer& a : answer.answers) {
      util::Result<doc::NodeId> global = view_->ToGlobal(
          static_cast<uint32_t>(i), answer.backend_epoch, a.root);
      if (!global.ok()) return global.status();
      // ToGlobal is strictly increasing in the local id within a slice,
      // so the shard's (cost, root)-sorted list stays sorted.
      list.push_back({*global, a.cost});
    }
    return list;
  };

  // Coordinate: wait for callbacks, relaunch retries whose backoff
  // elapsed, enforce the overall deadline and strict fail-fast. In live
  // mode the coordinate loop is wrapped in bounded epoch-reconciliation
  // rounds: answers whose epoch the view cannot translate yet trigger a
  // slice fetch + retranslation, and answers that still cannot be
  // translated (or sit below a min-epoch floor) are re-queried.
  std::vector<std::pair<size_t, int>> due;
  int epoch_rounds = 0;
  state->mu.Lock();
  for (;;) {
    const Clock::time_point now = Clock::now();
    due.clear();
    bool all_done = true;
    bool hard_failure = false;
    Clock::time_point next = Clock::time_point::max();
    for (size_t i = 0; i < num_shards; ++i) {
      ScatterState::Slot& slot = state->slots[i];
      switch (slot.state) {
        case ScatterState::SlotState::kPending:
          all_done = false;
          break;
        case ScatterState::SlotState::kRetryWait:
          if (backends_[i]->health() == ShardHealth::kDown) {
            // Outcome-driven fast-DOWN: the backend crossed its
            // consecutive-failure threshold (fed by this query's own
            // attempts, a concurrent query's, or a failed ping) while
            // this slot waited out its backoff. A relaunch would burn
            // another full attempt deadline against a dead endpoint —
            // declare the slot missing now; the health prober's next
            // successful ping revives the shard for later queries.
            slot.state = ScatterState::SlotState::kDone;
            slot.error = util::Status::Unavailable(
                "shard " + std::to_string(i) + " (" +
                backends_[i]->endpoint() + ") went DOWN during retry backoff");
            hard_failure = true;
            break;
          }
          all_done = false;
          if (now >= slot.retry_at) {
            slot.state = ScatterState::SlotState::kPending;
            ++slot.attempt;
            due.emplace_back(i, slot.attempt);
          } else {
            next = std::min(next, slot.retry_at);
          }
          break;
        case ScatterState::SlotState::kDone:
          if (!slot.ok && !slot.query_error) hard_failure = true;
          break;
      }
    }
    if (!due.empty()) {
      // Launch outside the lock: a shut-down transport invokes the
      // callback inline, and the callback takes state->mu.
      state->mu.Unlock();
      for (const auto& [i, attempt] : due) {
        shard_retries_->Increment();
        state->retries.fetch_add(1, std::memory_order_relaxed);
        LaunchAttempt(state, i, attempt, share_bound, deadline_ms,
                      overall_deadline);
      }
      state->mu.Lock();
      continue;
    }
    if (all_done) {
      if (view_ == nullptr) break;
      // Live-mode epoch reconciliation. Every ok slot must translate
      // through the slice of exactly its answer's epoch and clear the
      // caller's min-epoch floor before the scatter may complete.
      std::vector<size_t> need_fetch;
      std::vector<size_t> need_requery;
      for (size_t i = 0; i < num_shards; ++i) {
        ScatterState::Slot& slot = state->slots[i];
        if (!slot.ok || slot.translated_done) continue;
        if (slot.answer.backend_epoch < floor_of(i)) {
          // Read-your-writes: the answer predates the caller's own
          // acked write on this shard — ask again, never return it.
          need_requery.push_back(i);
          continue;
        }
        auto list = translate(i, slot.answer);
        if (list.ok()) {
          slot.translated = std::move(*list);
          slot.translated_done = true;
        } else if (list.status().code() == util::StatusCode::kUnavailable) {
          need_fetch.push_back(i);
        } else {
          // The slice of that epoch is held but cannot contain the
          // answer: a real inconsistency. Fail the shard (typed) —
          // never translate through a mismatched slice.
          slot.ok = false;
          slot.error = list.status();
        }
      }
      if (need_fetch.empty() && need_requery.empty()) break;
      if (epoch_rounds >= options_.max_epoch_rounds) {
        for (size_t i : need_fetch) {
          ScatterState::Slot& slot = state->slots[i];
          slot.ok = false;
          slot.error = util::Status::Unavailable(
              "no manifest slice for shard " + std::to_string(i) +
              " at epoch " + std::to_string(slot.answer.backend_epoch) +
              " after " + std::to_string(epoch_rounds) + " resync rounds");
        }
        for (size_t i : need_requery) {
          ScatterState::Slot& slot = state->slots[i];
          slot.ok = false;
          slot.error = util::Status::Unavailable(
              "shard " + std::to_string(i) + " answered at epoch " +
              std::to_string(slot.answer.backend_epoch) +
              " below the caller's floor " + std::to_string(floor_of(i)) +
              " after " + std::to_string(epoch_rounds) + " resync rounds");
        }
        break;
      }
      ++epoch_rounds;
      if (!need_fetch.empty()) {
        // Blocking slice fetches with the lock released, then an
        // immediate retranslation; a slice the server no longer holds
        // (racing publishes outran the history) falls back to asking
        // the shard again — a fresh answer comes with a fresh epoch.
        state->mu.Unlock();
        for (size_t i : need_fetch) {
          int64_t fetch_deadline =
              options_.attempt_deadline_ms > 0 ? options_.attempt_deadline_ms
                                               : 2000;
          if (overall_deadline != Clock::time_point::max()) {
            int64_t remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    overall_deadline - Clock::now())
                    .count();
            if (remaining < 1) remaining = 1;
            fetch_deadline = std::min(fetch_deadline, remaining);
          }
          // A failed fetch is not terminal: retranslation below routes
          // the slot into a re-query instead.
          (void)FetchSliceBlocking(i, static_cast<int>(fetch_deadline));
        }
        state->mu.Lock();
        for (size_t i : need_fetch) {
          ScatterState::Slot& slot = state->slots[i];
          if (!slot.ok || slot.translated_done) continue;
          auto list = translate(i, slot.answer);
          if (list.ok()) {
            slot.translated = std::move(*list);
            slot.translated_done = true;
          } else if (list.status().code() ==
                     util::StatusCode::kUnavailable) {
            need_requery.push_back(i);
          } else {
            slot.ok = false;
            slot.error = list.status();
          }
        }
      }
      due.clear();
      for (size_t i : need_requery) {
        ScatterState::Slot& slot = state->slots[i];
        if (!slot.ok) continue;  // failed terminally meanwhile
        epoch_requeries_->Increment();
        slot.state = ScatterState::SlotState::kPending;
        slot.ok = false;
        slot.translated_done = false;
        slot.translated.clear();
        slot.error = util::Status::OK();
        ++slot.attempt;
        due.emplace_back(i, slot.attempt);
      }
      if (due.empty()) continue;  // everything resolved by the fetches
      state->mu.Unlock();
      for (const auto& [i, attempt] : due) {
        state->retries.fetch_add(1, std::memory_order_relaxed);
        LaunchAttempt(state, i, attempt, share_bound, deadline_ms,
                      overall_deadline);
      }
      state->mu.Lock();
      continue;
    }
    if (options_.strict && hard_failure) {
      // Fail fast: the query is already lost, so don't wait out the
      // slowest shard's timeout to say so.
      for (ScatterState::Slot& slot : state->slots) {
        if (slot.state != ScatterState::SlotState::kDone) {
          slot.state = ScatterState::SlotState::kDone;
          slot.error = util::Status::Unavailable(
              "abandoned: strict scatter failing fast");
        }
      }
      break;
    }
    if (overall_deadline != Clock::time_point::max()) {
      if (now >= overall_deadline) {
        for (ScatterState::Slot& slot : state->slots) {
          if (slot.state != ScatterState::SlotState::kDone) {
            slot.state = ScatterState::SlotState::kDone;
            slot.error =
                util::Status::DeadlineExceeded("scatter deadline expired");
          }
        }
        break;
      }
      next = std::min(next, overall_deadline);
    }
    if (next == Clock::time_point::max()) {
      state->cv.Wait(&state->mu);
    } else {
      state->cv.WaitFor(&state->mu, next - now);
    }
  }

  // Gather under the same lock (late stale callbacks only ever see
  // kDone slots now and drop themselves).
  RoutedResult out;
  std::vector<std::vector<engine::RootCost>> lists;
  util::Status query_error = util::Status::OK();
  bool has_query_error = false;
  util::Status last_failure = util::Status::OK();
  uint64_t min_answer_epoch = UINT64_MAX;
  for (size_t i = 0; i < num_shards; ++i) {
    ScatterState::Slot& slot = state->slots[i];
    if (slot.ok) {
      if (view_ != nullptr) {
        // Reconciliation already translated through the epoch-exact
        // slice; an ok slot always carries its translated list here.
        lists.push_back(std::move(slot.translated));
        min_answer_epoch =
            std::min(min_answer_epoch, slot.answer.backend_epoch);
        continue;
      }
      std::vector<engine::RootCost>& list = lists.emplace_back();
      list.reserve(slot.answer.answers.size());
      // ToGlobal is strictly increasing per shard, so the shard's
      // (cost, root)-sorted list stays sorted after translation.
      for (const net::WireAnswer& answer : slot.answer.answers) {
        list.push_back({manifest_.ToGlobal(i, answer.root), answer.cost});
      }
    } else if (slot.query_error) {
      has_query_error = true;
      query_error = slot.error;
    } else {
      out.missing_shards.push_back(static_cast<uint32_t>(i));
      last_failure = slot.error;
    }
  }
  out.final_bound = state->bound.load(std::memory_order_relaxed);
  out.retries = state->retries.load(std::memory_order_relaxed);
  if (view_ != nullptr && min_answer_epoch != UINT64_MAX) {
    out.backend_epoch = min_answer_epoch;
  }
  state->mu.Unlock();

  scatter_us_->Record(static_cast<uint64_t>(MicrosSince(started)));
  if (has_query_error) return query_error;
  if (out.missing_shards.size() == num_shards) {
    shards_missing_->Increment(num_shards);
    return util::Status::Unavailable(
        "all " + std::to_string(num_shards) +
        " shards unavailable; last error: " + last_failure.message());
  }
  if (!out.missing_shards.empty()) {
    shards_missing_->Increment(out.missing_shards.size());
    if (options_.strict) {
      strict_failures_->Increment();
      std::string which;
      for (uint32_t i : out.missing_shards) {
        if (!which.empty()) which += ",";
        which += std::to_string(i);
      }
      return util::Status::Unavailable(
          "strict mode: shard(s) " + which +
          " unavailable: " + last_failure.message());
    }
    degraded_->Increment();
    out.degraded = true;
  }

  const std::vector<engine::RootCost> merged = engine::MergeTopN(lists, n);
  out.answers.reserve(merged.size());
  for (const engine::RootCost& rc : merged) {
    out.answers.push_back({rc.root, rc.cost});
  }
  return out;
}

void ShardRouter::UpdateHealthGauges() {
  int64_t up = 0, down = 0;
  for (const auto& backend : backends_) {
    switch (backend->health()) {
      case ShardHealth::kUp:
        ++up;
        break;
      case ShardHealth::kDown:
        ++down;
        break;
      case ShardHealth::kSuspect:
        break;
    }
  }
  shards_up_->Set(up);
  shards_down_->Set(down);
}

void ShardRouter::HealthLoop() {
  health_mu_.Lock();
  while (!health_stop_) {
    health_mu_.Unlock();
    for (size_t i = 0; i < backends_.size(); ++i) {
      health_pings_->Increment();
      backends_[i]->CallPing(
          options_.ping_deadline_ms,
          [this, i](util::Result<net::WirePong> pong) {
            // RemoteShardBackend already fed the health machine; only
            // the counter (and live-mode epoch staleness) is ours.
            if (!pong.ok()) {
              health_ping_failures_->Increment();
              return;
            }
            if (view_ != nullptr && pong->epoch > view_->epoch(
                                        static_cast<uint32_t>(i))) {
              // The shard advanced past our view: deltas were lost
              // (dropped push, or the transport reconnected and the
              // subscription died with the old connection). A full
              // fetch resyncs AND re-subscribes.
              RefetchSliceAsync(i);
            }
          });
    }
    UpdateHealthGauges();
    health_mu_.Lock();
    if (health_stop_) break;
    health_cv_.WaitFor(&health_mu_,
                       std::chrono::milliseconds(options_.health_period_ms));
  }
  health_mu_.Unlock();
}

void ShardRouter::OnDelta(size_t i, const net::WireManifestDelta& delta) {
  if (view_ == nullptr || delta.shard_index != i) return;
  manifest_deltas_->Increment();
  if (!view_->ApplyDelta(delta)) {
    // Gap (missed/reordered deltas) or inconsistency with the held
    // slice: the delta stream is no longer trustworthy as-is; a full
    // fetch re-bases it. Answers racing this window translate through
    // history or trigger their own fetch in Execute's reconciliation.
    manifest_delta_gaps_->Increment();
    RefetchSliceAsync(i);
  }
}

void ShardRouter::RefetchSliceAsync(size_t i) {
  if (refetch_inflight_[i].exchange(true, std::memory_order_acq_rel)) {
    return;  // a fetch for this shard is already on the wire
  }
  manifest_fetches_->Increment();
  const int deadline =
      options_.attempt_deadline_ms > 0 ? options_.attempt_deadline_ms : 2000;
  backends_[i]->CallManifestFetch(
      options_.manifest_subscribe, deadline,
      [this, i](util::Result<net::WireManifestSlice> slice) {
        refetch_inflight_[i].store(false, std::memory_order_release);
        if (!slice.ok()) {
          // Stale view is self-healing: the next delta gap, stale
          // pong, or query-side reconciliation retries the fetch.
          manifest_fetch_failures_->Increment();
          return;
        }
        view_->InstallSlice(static_cast<uint32_t>(i), slice->epoch,
                            std::move(slice->spans));
      });
}

util::Status ShardRouter::FetchSliceBlocking(size_t i, int deadline_ms) {
  manifest_fetches_->Increment();
  auto done =
      std::make_shared<std::promise<util::Result<net::WireManifestSlice>>>();
  std::future<util::Result<net::WireManifestSlice>> reply = done->get_future();
  backends_[i]->CallManifestFetch(
      options_.manifest_subscribe, deadline_ms,
      [done](util::Result<net::WireManifestSlice> slice) {
        done->set_value(std::move(slice));
      });
  util::Result<net::WireManifestSlice> slice = reply.get();
  if (!slice.ok()) {
    manifest_fetch_failures_->Increment();
    return slice.status();
  }
  // InstallSlice never regresses, so a fetch that raced a concurrent
  // async refetch (or a delta) cannot roll the view back.
  view_->InstallSlice(static_cast<uint32_t>(i), slice->epoch,
                      std::move(slice->spans));
  return util::Status::OK();
}

doc::NodeId ShardRouter::DocRootOfGlobal(doc::NodeId global) const {
  return view_ != nullptr ? view_->DocRootOf(global)
                          : manifest_.DocRootOf(global);
}

util::Result<net::WireIngestAck> ShardRouter::CallIngestBlocking(
    size_t i, const net::WireIngest& ingest, int deadline_ms) {
  auto done =
      std::make_shared<std::promise<util::Result<net::WireIngestAck>>>();
  std::future<util::Result<net::WireIngestAck>> reply = done->get_future();
  backends_[i]->CallIngest(ingest, deadline_ms,
                           [done](util::Result<net::WireIngestAck> ack) {
                             done->set_value(std::move(ack));
                           });
  return reply.get();
}

util::Status ShardRouter::ResyncGlobals(int deadline_ms) {
  // Every slice, blocking: the next global id must clear EVERY shard's
  // occupied range, or a reassigned id would collide with a document
  // whose ack we never saw (an "in doubt" add that actually landed).
  for (size_t i = 0; i < backends_.size(); ++i) {
    util::Status fetched = FetchSliceBlocking(i, deadline_ms);
    if (!fetched.ok()) {
      return util::Status(fetched.code(),
                          "cannot resync global id space: shard " +
                              std::to_string(i) + ": " + fetched.message());
    }
  }
  next_global_ = view_->NextGlobal();
  return util::Status::OK();
}

util::Result<net::WireIngestAck> ShardRouter::IngestLive(
    const net::WireIngest& ingest, int attempt_deadline_ms) {
  if (ingest.op == net::WireIngest::Op::kAdd) {
    // The router owns the cluster-global id space: it assigns the add's
    // root id up front so every shard's corpus-global ids ARE cluster-
    // global ids and answers merge without remapping. assign_mu_ is held
    // across assign→ack so ids are handed out in ack order — exactly the
    // order BuildFromXml(acked docs) reproduces.
    util::MutexLock lock(&assign_mu_);
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (next_global_ == 0) {
        // Fresh router, or the last add left us in doubt. Rebase on the
        // cluster's actual occupancy before assigning anything.
        util::Status resynced = ResyncGlobals(attempt_deadline_ms);
        if (!resynced.ok()) {
          ingest_failures_->Increment();
          return resynced;
        }
      }
      // Fewest docs among shards not known-DOWN: a dead server would
      // otherwise stay the argmin forever (it never gains documents)
      // and every add during its outage would go in-doubt against it.
      size_t target = SIZE_MAX;
      {
        util::MutexLock docs(&ingest_mu_);
        uint64_t fewest = UINT64_MAX;
        for (size_t s = 0; s < backends_.size(); ++s) {
          if (backends_[s]->health() == ShardHealth::kDown) continue;
          if (ingest_docs_[s] < fewest) {
            fewest = ingest_docs_[s];
            target = s;
          }
        }
      }
      if (target == SIZE_MAX) {
        ingest_failures_->Increment();
        return util::Status::Unavailable("every shard server is DOWN");
      }
      net::WireIngest assigned = ingest;
      assigned.assigned_global = next_global_;
      util::Result<net::WireIngestAck> ack =
          CallIngestBlocking(target, assigned, attempt_deadline_ms);
      if (!ack.ok()) {
        // In doubt: the add may have landed without us seeing the ack.
        // Never reuse the id — force a resync before the next assign.
        next_global_ = 0;
        ingest_failures_->Increment();
        return ack;
      }
      if (ack->status_code ==
          static_cast<uint32_t>(util::StatusCode::kInvalidArgument)) {
        // The shard rejected the assigned id (our floor is stale — e.g.
        // another router is also assigning). Resync and retry once.
        next_global_ = 0;
        continue;
      }
      if (ack->status_code != static_cast<uint32_t>(util::StatusCode::kOk)) {
        ingest_failures_->Increment();
        return util::Status(CodeOf(ack->status_code), ack->status_message);
      }
      next_global_ = ack->doc_root + ack->length;
      {
        util::MutexLock docs(&ingest_mu_);
        ++ingest_docs_[target];
      }
      return ack;
    }
    ingest_failures_->Increment();
    return util::Status::Unavailable(
        "cluster rejected the assigned global id twice after resync — "
        "another writer owns this id space?");
  }

  // Remove: the manifest view usually knows which shard holds the
  // document, so try that shard directly; fall back to the probe-all
  // loop (shared with static mode) if the view is stale or the call
  // fails.
  uint32_t holder = 0;
  shard::DocSpan span;
  if (view_->FindDocument(ingest.doc_root, &holder, &span)) {
    util::Result<net::WireIngestAck> ack =
        CallIngestBlocking(holder, ingest, attempt_deadline_ms);
    if (ack.ok() &&
        ack->status_code == static_cast<uint32_t>(util::StatusCode::kOk)) {
      util::MutexLock docs(&ingest_mu_);
      if (ingest_docs_[holder] > 0) --ingest_docs_[holder];
      return ack;
    }
    if (ack.ok() &&
        ack->status_code !=
            static_cast<uint32_t>(util::StatusCode::kNotFound)) {
      ingest_failures_->Increment();
      return util::Status(CodeOf(ack->status_code), ack->status_message);
    }
    // NOT_FOUND (stale view) or transport error: probe everything.
  }
  return util::Status::NotFound("fall through to probe");
}

util::Result<net::WireIngestAck> ShardRouter::Ingest(
    const net::WireIngest& ingest, int64_t deadline_ms) {
  if (backends_.empty()) {
    return util::Status::InvalidArgument("router has no shard endpoints");
  }
  ingest_calls_->Increment();
  const int attempt_deadline = deadline_ms > 0
                                   ? static_cast<int>(deadline_ms)
                                   : options_.attempt_deadline_ms;

  if (view_ != nullptr) {
    util::Result<net::WireIngestAck> live = IngestLive(ingest, attempt_deadline);
    // Adds are fully handled by IngestLive; removes fall through to the
    // probe-all loop below when the view couldn't place the document.
    if (ingest.op == net::WireIngest::Op::kAdd || live.ok() ||
        live.status().code() != util::StatusCode::kNotFound) {
      return live;
    }
  }

  // Ingest is synchronous end to end (the shard acks only after fsync),
  // so one blocking round trip per attempt is the honest shape — no
  // scatter, no retries (a resent add is a duplicate document).
  auto call_one = [&](size_t i) -> util::Result<net::WireIngestAck> {
    return CallIngestBlocking(i, ingest, attempt_deadline);
  };

  if (ingest.op == net::WireIngest::Op::kAdd) {
    size_t target;
    {
      // Fewest router-acked documents, ties to the lowest index — the
      // same argmin rule MutableCorpus applies in process, so a single
      // router driving fresh shards reproduces in-process placement.
      util::MutexLock lock(&ingest_mu_);
      target = static_cast<size_t>(
          std::min_element(ingest_docs_.begin(), ingest_docs_.end()) -
          ingest_docs_.begin());
    }
    util::Result<net::WireIngestAck> ack = call_one(target);
    if (!ack.ok()) {
      ingest_failures_->Increment();
      return ack;
    }
    if (ack->status_code != static_cast<uint32_t>(util::StatusCode::kOk)) {
      ingest_failures_->Increment();
      return util::Status(CodeOf(ack->status_code), ack->status_message);
    }
    {
      util::MutexLock lock(&ingest_mu_);
      ++ingest_docs_[target];
    }
    return ack;
  }

  // Remove: the router does not track which shard holds which document
  // (acked roots live with the caller), so probe shards in index order
  // until one answers anything but NOT_FOUND.
  util::Status failure = util::Status::OK();
  for (size_t i = 0; i < backends_.size(); ++i) {
    util::Result<net::WireIngestAck> ack = call_one(i);
    if (!ack.ok()) {
      // In doubt on this shard (the remove may have landed); keep
      // probing the rest but surface the error instead of NOT_FOUND.
      if (failure.ok()) failure = ack.status();
      continue;
    }
    if (ack->status_code ==
        static_cast<uint32_t>(util::StatusCode::kNotFound)) {
      continue;
    }
    if (ack->status_code != static_cast<uint32_t>(util::StatusCode::kOk)) {
      ingest_failures_->Increment();
      return util::Status(CodeOf(ack->status_code), ack->status_message);
    }
    {
      util::MutexLock lock(&ingest_mu_);
      if (ingest_docs_[i] > 0) --ingest_docs_[i];
    }
    return ack;
  }
  ingest_failures_->Increment();
  if (!failure.ok()) return failure;
  return util::Status::NotFound("document not found on any shard");
}

std::string ShardRouter::DumpMetrics() const {
  std::string out = metrics_.DumpText();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const std::string prefix = "dist_shard_" + std::to_string(i);
    const net::AsyncClient::Stats stats = backends_[i]->transport_stats();
    out += prefix + "_health " + ToString(backends_[i]->health()) + "\n";
    out += prefix + "_sent " + std::to_string(stats.sent) + "\n";
    out += prefix + "_completed " + std::to_string(stats.completed) + "\n";
    out += prefix + "_failed " + std::to_string(stats.failed) + "\n";
    out += prefix + "_timed_out " + std::to_string(stats.timed_out) + "\n";
    out += prefix + "_reconnects " + std::to_string(stats.reconnects) + "\n";
    {
      util::MutexLock lock(&ingest_mu_);
      out += prefix + "_ingested " + std::to_string(ingest_docs_[i]) + "\n";
    }
  }
  return out;
}

}  // namespace approxql::dist
