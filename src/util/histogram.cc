#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace approxql::util {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 4) return static_cast<size_t>(value);
  size_t b = 63 - static_cast<size_t>(std::countl_zero(value));
  if (b > 62) return kNumBuckets - 1;
  size_t sub = static_cast<size_t>(value >> (b - 2)) & 3;
  return 4 + (b - 2) * 4 + sub;
}

uint64_t Histogram::BucketLower(size_t index) {
  if (index < 4) return index;
  size_t i = index - 4;
  size_t b = i / 4 + 2;
  uint64_t sub = i % 4;
  return (uint64_t{1} << b) + sub * (uint64_t{1} << (b - 2));
}

uint64_t Histogram::BucketUpper(size_t index) {
  if (index < 4) return index + 1;
  size_t b = (index - 4) / 4 + 2;
  return BucketLower(index) + (uint64_t{1} << (b - 2));
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      double lower = static_cast<double>(BucketLower(i));
      double upper = static_cast<double>(BucketUpper(i));
      double fraction = (target - before) / static_cast<double>(buckets_[i]);
      double value = lower + (upper - lower) * fraction;
      // The true extremes are tracked exactly; never report outside them.
      return std::clamp(value, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() { *this = Histogram(); }

std::string Histogram::Summary(std::string_view unit) const {
  char buffer[256];
  std::string unit_str(unit);
  std::snprintf(buffer, sizeof(buffer),
                "count=%llu mean=%.1f%s p50=%.0f%s p90=%.0f%s p99=%.0f%s "
                "max=%llu%s",
                static_cast<unsigned long long>(count_), Mean(),
                unit_str.c_str(), Quantile(0.50), unit_str.c_str(),
                Quantile(0.90), unit_str.c_str(), Quantile(0.99),
                unit_str.c_str(), static_cast<unsigned long long>(max_),
                unit_str.c_str());
  return buffer;
}

}  // namespace approxql::util
