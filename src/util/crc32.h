// CRC-32C (Castagnoli), table-driven. Used as the page checksum of the
// storage engine.
#ifndef APPROXQL_UTIL_CRC32_H_
#define APPROXQL_UTIL_CRC32_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace approxql::util {

/// CRC-32C of `data`, optionally chained via `seed` (pass a previous
/// result to extend).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_CRC32_H_
