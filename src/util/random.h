// Deterministic pseudo-random generator (splitmix64 seeded xoshiro256**).
// All generators in the repo (data generator, query generator, property
// tests) derive from this so runs are reproducible from a single seed.
#ifndef APPROXQL_UTIL_RANDOM_H_
#define APPROXQL_UTIL_RANDOM_H_

#include <cstdint>

#include "util/logging.h"

namespace approxql::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    APPROXQL_DCHECK(bound > 0);
    // Debiased modulo via rejection; bias is negligible for our bounds but
    // rejection keeps the generator honest for property tests.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    APPROXQL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_RANDOM_H_
