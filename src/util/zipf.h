// Zipfian sampler over ranks 0..n-1: P(rank i) proportional to
// 1 / (i+1)^theta. The paper's synthetic collection draws its term
// occurrences from a Zipfian frequency distribution (Section 8.1).
#ifndef APPROXQL_UTIL_ZIPF_H_
#define APPROXQL_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace approxql::util {

class ZipfDistribution {
 public:
  /// Precondition: n >= 1, theta > 0.
  ZipfDistribution(uint64_t n, double theta = 1.0);

  /// Samples a rank in [0, n). Rank 0 is the most frequent.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of a rank (for tests).
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double theta_;
  // Cumulative distribution over ranks; binary-searched at sample time.
  // O(n) doubles of setup buys O(log n) exact samples, which is the right
  // trade for vocabulary-sized n (<= a few hundred thousand).
  std::vector<double> cdf_;
};

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_ZIPF_H_
