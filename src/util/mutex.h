// Annotated mutex / scoped-lock / condition-variable wrappers over the
// std primitives. std::mutex and std::condition_variable cannot carry
// Clang capability attributes, so every piece of locked state in the
// codebase goes through these types instead (tools/lint.py rejects raw
// std::mutex outside src/util/); thread_annotations.h explains the
// analysis and DESIGN.md §10 documents each module's locking model.
//
// The wrappers are deliberately thin — zero overhead beyond the std
// types they wrap — and deliberately small: Lock/TryLock/Unlock,
// RAII MutexLock (with an adopting constructor for the try-lock-then-
// lock contention probe in index::StoredLabelIndex), and a CondVar
// whose Wait REQUIRES the mutex. Predicate waits are written as
// explicit `while (!pred) cv.Wait(&mu);` loops rather than a
// lambda-predicate overload: the analysis checks guarded accesses in
// the loop body directly, whereas a lambda would be analyzed as a
// separate unannotated function and every guarded read inside it would
// need an escape hatch.
#ifndef APPROXQL_UTIL_MUTEX_H_
#define APPROXQL_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace approxql::util {

class CondVar;

/// A standard (non-reentrant, non-shared) mutex the thread-safety
/// analysis can track. Same cost as std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  /// Non-blocking acquisition; true = now held.
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock. The default constructor acquires; the std::adopt_lock
/// flavor takes ownership of a mutex the caller already holds (so a
/// manual TryLock/Lock sequence can still end in scoped release).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(Mutex* mu, std::adopt_lock_t) REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to util::Mutex. Wait atomically releases
/// the mutex and reacquires it before returning, exactly like
/// std::condition_variable::wait; the REQUIRES annotation makes the
/// analysis enforce that callers hold the mutex across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Timed wait; false if `timeout` elapsed without a notification
  /// (the mutex is reacquired either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_MUTEX_H_
