#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace approxql::util {

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  APPROXQL_CHECK(n >= 1) << "Zipf needs at least one rank";
  APPROXQL_CHECK(theta > 0) << "Zipf exponent must be positive";
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t rank) const {
  APPROXQL_CHECK(rank < n_);
  double prev = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - prev;
}

}  // namespace approxql::util
