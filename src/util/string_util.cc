#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace approxql::util {

std::string AsciiToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  return out;
}

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

std::vector<std::string> SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                             : c);
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

std::vector<std::string_view> SplitView(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool IsBlank(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || value < 0) return false;
  *out = value;
  return true;
}

}  // namespace approxql::util
