#include "util/varint.h"

namespace approxql::util {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

Status VarintReader::GetVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint longer than 64 bits");
}

Status VarintReader::GetVarint32(uint32_t* value) {
  uint64_t v64 = 0;
  RETURN_IF_ERROR(GetVarint64(&v64));
  if (v64 > UINT32_MAX) {
    return Status::Corruption("varint32 out of range");
  }
  *value = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status VarintReader::GetBytes(size_t n, std::string_view* out) {
  if (remaining() < n) {
    return Status::Corruption("truncated byte range");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace approxql::util
