// Minimal CHECK/LOG facility. CHECK aborts on violated invariants (the
// library's contract-violation path; recoverable errors use Status).
#ifndef APPROXQL_UTIL_LOGGING_H_
#define APPROXQL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace approxql::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for APPROXQL_LOG output (default kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log/check message; emits it (and aborts for fatal
/// messages) in the destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal)
      : level_(level), fatal_(fatal) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (fatal_ || level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (fatal_) std::abort();
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
};

/// Swallows a streamed expression when a check passes; lets the compiler
/// elide the whole statement.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// `Voidify() & stream` turns a streamed LogMessage chain into void so it
/// can sit on one arm of a ternary (& binds looser than <<).
struct Voidify {
  void operator&(LogMessage&) {}
  void operator&(LogMessage&&) {}
  void operator&(NullStream&) {}
  void operator&(NullStream&&) {}
};

}  // namespace internal

#define APPROXQL_LOG(level)                                             \
  ::approxql::util::internal::LogMessage(                               \
      ::approxql::util::LogLevel::k##level, __FILE__, __LINE__, false)

#define APPROXQL_CHECK(cond)                                              \
  (cond) ? (void)0                                                        \
         : ::approxql::util::internal::Voidify() &                        \
               ::approxql::util::internal::LogMessage(                    \
                   ::approxql::util::LogLevel::kError, __FILE__,          \
                   __LINE__, true)                                        \
                   << "Check failed: " #cond " "

#ifndef NDEBUG
#define APPROXQL_DCHECK(cond) APPROXQL_CHECK(cond)
#else
#define APPROXQL_DCHECK(cond)                       \
  true ? (void)0                                    \
       : ::approxql::util::internal::Voidify() &    \
             ::approxql::util::internal::NullStream()
#endif

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_LOGGING_H_
