// A fixed-footprint histogram for latency-style values (non-negative,
// heavy-tailed): power-of-two buckets with four linear sub-buckets each,
// so relative error per recorded value stays under 25% while the whole
// structure is 2 KiB of plain counters — cheap to copy, merge and
// snapshot. Not thread-safe; the service metrics layer serializes access.
#ifndef APPROXQL_UTIL_HISTOGRAM_H_
#define APPROXQL_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace approxql::util {

class Histogram {
 public:
  /// 4 sub-buckets per power of two up to 2^62; values above saturate
  /// into the last bucket.
  static constexpr size_t kNumBuckets = 248;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bucket. 0 when empty.
  double Quantile(double q) const;

  /// Adds all of `other`'s recorded values to this histogram.
  void Merge(const Histogram& other);

  void Reset();

  /// One-line summary: "count=… mean=… p50=… p90=… p99=… max=…".
  /// `unit` is appended to each value (e.g. "us").
  std::string Summary(std::string_view unit = "") const;

 private:
  static size_t BucketIndex(uint64_t value);
  /// Inclusive lower / exclusive upper bound of a bucket's value range.
  static uint64_t BucketLower(size_t index);
  static uint64_t BucketUpper(size_t index);

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_HISTOGRAM_H_
