// Clang Thread Safety Analysis attribute macros ("C/C++ Thread Safety
// Analysis", Hutchins et al.; the GUARDED_BY / REQUIRES vocabulary
// popularized by Abseil). The macros expand to Clang attributes when
// the compiler supports them and to nothing otherwise, so annotated
// code compiles unchanged under GCC while a Clang build with
// -Wthread-safety -Wthread-safety-beta -Werror (the APPROXQL_THREAD_SAFETY
// CMake option, and a dedicated CI leg) proves every lock invariant at
// compile time, for every interleaving.
//
// Conventions used across the codebase (see DESIGN.md §10):
//   - Every mutex-protected member is declared with GUARDED_BY(mu_)
//     (or PT_GUARDED_BY for the pointee of a guarded pointer).
//   - Private methods that assume a lock is held carry REQUIRES(mu_)
//     instead of re-locking.
//   - Raw std::mutex / std::condition_variable never appear outside
//     src/util/ (tools/lint.py enforces this): std types cannot carry
//     capability attributes, so locked state always goes through the
//     annotated util::Mutex / util::CondVar wrappers in util/mutex.h.
#ifndef APPROXQL_UTIL_THREAD_ANNOTATIONS_H_
#define APPROXQL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define APPROXQL_THREAD_ANNOTATION(x) __has_attribute(x)
#else
#define APPROXQL_THREAD_ANNOTATION(x) 0
#endif

#if APPROXQL_THREAD_ANNOTATION(guarded_by)
#define THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex"): lockable state the
/// analysis tracks. Applied to util::Mutex only.
#define CAPABILITY(x) THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor (util::MutexLock).
#define SCOPED_CAPABILITY THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define GUARDED_BY(x) THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex (the
/// pointer itself may be read freely).
#define PT_GUARDED_BY(x) THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller
/// (and does not release them).
#define REQUIRES(...) \
  THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities to NOT be held (deadlock
/// prevention for non-reentrant mutexes).
#define EXCLUDES(...) THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define RELEASE(...) \
  THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts to acquire; the first argument is the return value
/// that signals success.
#define TRY_ACQUIRE(...) \
  THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is already held —
/// for code reachable only with the lock taken through an alias the
/// analysis cannot follow.
#define ASSERT_CAPABILITY(x) \
  THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Return value of a function is a reference to a guarded object.
#define RETURN_CAPABILITY(x) THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the invariant cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // APPROXQL_UTIL_THREAD_ANNOTATIONS_H_
