// LEB128 variable-length integer codec, used to delta-encode index
// postings (the dominant on-disk representation in the system).
#ifndef APPROXQL_UTIL_VARINT_H_
#define APPROXQL_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace approxql::util {

/// Appends `value` to `dst` in LEB128 (7 bits per byte, MSB = more).
void PutVarint64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);

/// ZigZag-maps a signed value so small magnitudes encode small.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Streaming decoder over a byte range. All Get* calls fail with
/// Corruption on truncated or oversized encodings.
class VarintReader {
 public:
  explicit VarintReader(std::string_view data) : data_(data), pos_(0) {}

  bool empty() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  Status GetVarint64(uint64_t* value);
  Status GetVarint32(uint32_t* value);

  /// Reads `n` raw bytes.
  Status GetBytes(size_t n, std::string_view* out);

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_VARINT_H_
