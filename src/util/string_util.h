// Small string helpers shared by the tokenizer, the query language and
// the config parsers.
#ifndef APPROXQL_UTIL_STRING_UTIL_H_
#define APPROXQL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace approxql::util {

/// ASCII lowercase copy (the data model folds case, Section 4: text
/// selectors match words case-insensitively in our implementation).
std::string AsciiToLower(std::string_view s);

/// True for ASCII letters/digits; word characters for the tokenizer.
bool IsWordChar(char c);

/// Splits `text` into lowercase words at non-word characters; empty
/// tokens are dropped.
std::vector<std::string> SplitWords(std::string_view text);

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string_view> SplitView(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` consists only of ASCII whitespace (or is empty).
bool IsBlank(std::string_view s);

/// Parses a non-negative decimal integer; returns false on any
/// non-digit or overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a non-negative decimal with optional fraction ("3", "3.5").
bool ParseDouble(std::string_view s, double* out);

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_STRING_UTIL_H_
