// Status and Result<T>: exception-free error handling in the style of
// Arrow / RocksDB. Library code never throws; fallible operations return
// Status (no payload) or Result<T> (payload or error).
#ifndef APPROXQL_UTIL_STATUS_H_
#define APPROXQL_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace approxql::util {

/// Broad classification of an error. Kept small on purpose: callers
/// branch on a handful of conditions, everything else is in the message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,  // admission queue full, capacity limit hit
  kDeadlineExceeded,   // request deadline passed before completion
  kUnavailable,        // service shutting down; retry against another
};

/// Returns a stable human-readable name ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
/// [[nodiscard]]: silently dropping a Status hides failures (a lost
/// KV put, an unsent wire frame); deliberate discards must say so with
/// an explicit cast through util::IgnoreError.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse
  // (`return 42;` / `return Status::NotFound(...)`), mirroring
  // arrow::Result. NOLINT on purpose.
  Result(T value) : repr_(std::move(value)) {}                 // NOLINT
  Result(Status status) : repr_(std::move(status)) {           // NOLINT
    APPROXQL_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  T& value() & {
    APPROXQL_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    APPROXQL_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(repr_);
  }
  T&& value() && {
    APPROXQL_CHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// The one sanctioned way to drop a Status on the floor. Grep-able, and
/// every call site owes a comment saying why the failure is ignorable.
inline void IgnoreError(const Status&) {}

// Internal helpers for the macros below.
#define APPROXQL_CONCAT_IMPL(x, y) x##y
#define APPROXQL_CONCAT(x, y) APPROXQL_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::approxql::util::Status _st = (expr);          \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(APPROXQL_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                          \
  if (!result.ok()) return result.status();       \
  lhs = std::move(result).value()

}  // namespace approxql::util

#endif  // APPROXQL_UTIL_STATUS_H_
