// From-scratch, non-validating XML parser (SAX-style). This is the
// substrate the paper implicitly depends on for loading document
// collections; we implement the subset of XML 1.0 that data-centric
// collections use: elements, attributes, character data, CDATA sections,
// comments, processing instructions, a skipped DOCTYPE, and the five
// predefined entities plus numeric character references.
//
// Deliberately out of scope (documented, returns ParseError where
// ambiguous): DTD-defined entities, namespaces-aware validation (prefixes
// are kept as part of the name), and non-UTF-8 encodings.
#ifndef APPROXQL_XML_XML_PARSER_H_
#define APPROXQL_XML_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace approxql::xml {

struct XmlAttribute {
  std::string name;
  std::string value;
};

/// SAX-style event receiver. Returning a non-OK status from any callback
/// aborts the parse and propagates the status to the ParseXml caller.
class XmlHandler {
 public:
  virtual ~XmlHandler() = default;

  virtual util::Status OnStartElement(std::string_view name,
                                      const std::vector<XmlAttribute>& attrs) {
    (void)name;
    (void)attrs;
    return util::Status::OK();
  }
  virtual util::Status OnEndElement(std::string_view name) {
    (void)name;
    return util::Status::OK();
  }
  /// Character data with entities already resolved. May be called several
  /// times per text node (e.g. around CDATA sections).
  virtual util::Status OnCharacters(std::string_view text) {
    (void)text;
    return util::Status::OK();
  }
};

/// Parses a complete XML document (optional prolog, optional DOCTYPE,
/// exactly one root element). Errors carry 1-based line numbers.
util::Status ParseXml(std::string_view input, XmlHandler* handler);

/// Escapes `text` for use as element character data (&, <, >).
std::string EscapeText(std::string_view text);

/// Escapes `text` for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view text);

}  // namespace approxql::xml

#endif  // APPROXQL_XML_XML_PARSER_H_
