#include "xml/xml_dom.h"

namespace approxql::xml {

using util::Result;
using util::Status;

const std::string* XmlElement::FindAttribute(std::string_view attr_name) const {
  for (const auto& attr : attributes) {
    if (attr.name == attr_name) return &attr.value;
  }
  return nullptr;
}

std::string XmlElement::Text() const {
  std::string out;
  for (const auto& child : children) {
    if (const auto* text = std::get_if<std::string>(&child)) {
      out += *text;
    }
  }
  return out;
}

const XmlElement* XmlElement::FindChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (const auto* elem = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      if ((*elem)->name == child_name) return elem->get();
    }
  }
  return nullptr;
}

size_t XmlElement::CountChildElements() const {
  size_t n = 0;
  for (const auto& child : children) {
    if (std::holds_alternative<std::unique_ptr<XmlElement>>(child)) ++n;
  }
  return n;
}

namespace {

/// Builds the DOM from SAX events.
class DomBuilder : public XmlHandler {
 public:
  Status OnStartElement(std::string_view name,
                        const std::vector<XmlAttribute>& attrs) override {
    auto element = std::make_unique<XmlElement>();
    element->name = std::string(name);
    element->attributes = attrs;
    XmlElement* raw = element.get();
    if (stack_.empty()) {
      root_ = std::move(element);
    } else {
      stack_.back()->children.emplace_back(std::move(element));
    }
    stack_.push_back(raw);
    return Status::OK();
  }

  Status OnEndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }

  Status OnCharacters(std::string_view text) override {
    if (stack_.empty()) {
      return Status::ParseError("character data outside root element");
    }
    auto& children = stack_.back()->children;
    // Coalesce adjacent runs so CDATA boundaries are invisible to users.
    if (!children.empty() &&
        std::holds_alternative<std::string>(children.back())) {
      std::get<std::string>(children.back()).append(text);
    } else {
      children.emplace_back(std::string(text));
    }
    return Status::OK();
  }

  std::unique_ptr<XmlElement> TakeRoot() { return std::move(root_); }

 private:
  std::unique_ptr<XmlElement> root_;
  std::vector<XmlElement*> stack_;
};

void WriteElement(const XmlElement& element, const WriteOptions& options,
                  int depth, std::string* out) {
  auto indent = [&](int d) {
    if (options.pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  out->push_back('<');
  out->append(element.name);
  for (const auto& attr : element.attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeAttribute(attr.value));
    out->push_back('"');
  }
  if (element.children.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool has_element_child = false;
  for (const auto& child : element.children) {
    if (const auto* elem = std::get_if<std::unique_ptr<XmlElement>>(&child)) {
      has_element_child = true;
      indent(depth + 1);
      WriteElement(**elem, options, depth + 1, out);
    } else {
      out->append(EscapeText(std::get<std::string>(child)));
    }
  }
  if (has_element_child) indent(depth);
  out->append("</");
  out->append(element.name);
  out->push_back('>');
}

}  // namespace

Result<XmlDocument> ParseXmlDocument(std::string_view input) {
  DomBuilder builder;
  RETURN_IF_ERROR(ParseXml(input, &builder));
  XmlDocument doc;
  doc.root = builder.TakeRoot();
  if (doc.root == nullptr) {
    return Status::ParseError("document has no root element");
  }
  return doc;
}

std::string WriteXml(const XmlElement& element, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += "\n";
  }
  WriteElement(element, options, 0, &out);
  return out;
}

}  // namespace approxql::xml
