// Owned DOM built on top of the SAX parser, plus a serializer. Used by
// the document-tree builder, the data generator (to emit collections)
// and result materialization.
#ifndef APPROXQL_XML_XML_DOM_H_
#define APPROXQL_XML_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"
#include "xml/xml_parser.h"

namespace approxql::xml {

struct XmlElement;

/// A child of an element: either a nested element or a run of character
/// data (entities already resolved).
using XmlContent = std::variant<std::unique_ptr<XmlElement>, std::string>;

struct XmlElement {
  std::string name;
  std::vector<XmlAttribute> attributes;
  std::vector<XmlContent> children;

  /// Returns the attribute value or nullptr.
  const std::string* FindAttribute(std::string_view attr_name) const;

  /// Concatenation of all directly contained character data.
  std::string Text() const;

  /// First child element with the given name, or nullptr.
  const XmlElement* FindChild(std::string_view child_name) const;

  /// Number of element children.
  size_t CountChildElements() const;
};

struct XmlDocument {
  std::unique_ptr<XmlElement> root;
};

/// Parses a complete document into a DOM.
util::Result<XmlDocument> ParseXmlDocument(std::string_view input);

struct WriteOptions {
  bool pretty = false;    // newline + two-space indent per depth
  bool declaration = false;  // emit <?xml version="1.0"?> header
};

/// Serializes an element subtree; round-trips through ParseXmlDocument.
std::string WriteXml(const XmlElement& element, const WriteOptions& options = {});

}  // namespace approxql::xml

#endif  // APPROXQL_XML_XML_DOM_H_
