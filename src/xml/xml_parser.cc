#include "xml/xml_parser.h"

#include <cctype>

namespace approxql::xml {
namespace {

using util::Status;

// Maximum element nesting accepted from an input document. Real corpora
// (XMark, DBLP) stay under ~20; anything deeper is hostile input aimed at
// the recursive consumers downstream of the SAX events.
constexpr size_t kMaxElementDepth = 512;

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Appends the UTF-8 encoding of `cp` to `out`; false for invalid code
/// points.
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

class Parser {
 public:
  Parser(std::string_view input, XmlHandler* handler)
      : input_(input), handler_(handler) {}

  Status Parse() {
    SkipBom();
    RETURN_IF_ERROR(SkipProlog());
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    RETURN_IF_ERROR(ParseElement());
    RETURN_IF_ERROR(SkipMiscAfterRoot());
    if (!AtEnd()) return Error("content after root element");
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (input_.substr(pos_).starts_with(lit)) {
      for (size_t i = 0; i < lit.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string message) const {
    return Status::ParseError("XML line " + std::to_string(line_) + ": " +
                              std::move(message));
  }

  void SkipBom() {
    if (input_.substr(pos_).starts_with("\xEF\xBB\xBF")) pos_ += 3;
  }

  // Prolog: XML declaration, comments, PIs, DOCTYPE — all optional.
  Status SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (ConsumeLiteral("<?")) {
        RETURN_IF_ERROR(SkipUntil("?>", "unterminated processing instruction"));
      } else if (input_.substr(pos_).starts_with("<!--")) {
        RETURN_IF_ERROR(SkipComment());
      } else if (ConsumeLiteral("<!DOCTYPE")) {
        RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipUntil(std::string_view terminator, const char* error) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) return Error(error);
    while (pos_ < found + terminator.size()) Advance();
    return Status::OK();
  }

  Status SkipComment() {
    // Caller verified the "<!--" prefix.
    ConsumeLiteral("<!--");
    size_t found = input_.find("--", pos_);
    if (found == std::string_view::npos) return Error("unterminated comment");
    while (pos_ < found) Advance();
    if (!ConsumeLiteral("-->")) {
      return Error("'--' not allowed inside comment");
    }
    return Status::OK();
  }

  // Skips <!DOCTYPE ...> including a bracketed internal subset.
  Status SkipDoctype() {
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
        if (bracket_depth < 0) return Error("unbalanced ']' in DOCTYPE");
      } else if (c == '>' && bracket_depth == 0) {
        Advance();
        return Status::OK();
      }
      Advance();
    }
    return Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string* name) {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    name->assign(input_.substr(start, pos_ - start));
    return Status::OK();
  }

  // Decodes one entity reference starting at '&'; appends to out.
  Status ParseEntity(std::string* out) {
    Advance();  // consume '&'
    size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 10) {
      return Error("unterminated entity reference");
    }
    std::string_view body = input_.substr(pos_, semi - pos_);
    while (pos_ <= semi) Advance();
    if (body == "lt") {
      out->push_back('<');
    } else if (body == "gt") {
      out->push_back('>');
    } else if (body == "amp") {
      out->push_back('&');
    } else if (body == "apos") {
      out->push_back('\'');
    } else if (body == "quot") {
      out->push_back('"');
    } else if (body.starts_with("#")) {
      uint32_t cp = 0;
      bool hex = body.size() > 1 && (body[1] == 'x' || body[1] == 'X');
      std::string_view digits = body.substr(hex ? 2 : 1);
      if (digits.empty()) return Error("empty character reference");
      for (char c : digits) {
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Error("invalid character reference");
        }
        cp = cp * (hex ? 16 : 10) + digit;
        if (cp > 0x10FFFF) return Error("character reference out of range");
      }
      if (!AppendUtf8(cp, out)) {
        return Error("character reference out of range");
      }
    } else {
      return Error("unknown entity '&" + std::string(body) + ";'");
    }
    return Status::OK();
  }

  Status ParseAttributeValue(std::string* value) {
    char quote = Peek();
    if (quote != '"' && quote != '\'') {
      return Error("attribute value must be quoted");
    }
    Advance();
    while (!AtEnd() && Peek() != quote) {
      char c = Peek();
      if (c == '&') {
        RETURN_IF_ERROR(ParseEntity(value));
      } else if (c == '<') {
        return Error("'<' not allowed in attribute value");
      } else {
        value->push_back(c);
        Advance();
      }
    }
    if (!Consume(quote)) return Error("unterminated attribute value");
    return Status::OK();
  }

  Status ParseAttributes(std::vector<XmlAttribute>* attrs) {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/' || c == '?') return Status::OK();
      XmlAttribute attr;
      RETURN_IF_ERROR(ParseName(&attr.name));
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' after attribute name");
      SkipWhitespace();
      RETURN_IF_ERROR(ParseAttributeValue(&attr.value));
      for (const auto& existing : *attrs) {
        if (existing.name == attr.name) {
          return Error("duplicate attribute '" + attr.name + "'");
        }
      }
      attrs->push_back(std::move(attr));
    }
  }

  // Parses one element (including its subtree). Iterative over an explicit
  // stack of open element names so pathological depth cannot overflow the
  // call stack.
  Status ParseElement() {
    std::vector<std::string> open;
    do {
      if (!Consume('<')) return Error("expected '<'");
      std::string name;
      RETURN_IF_ERROR(ParseName(&name));
      std::vector<XmlAttribute> attrs;
      RETURN_IF_ERROR(ParseAttributes(&attrs));
      bool self_closing = Consume('/');
      if (!Consume('>')) return Error("expected '>' in start tag");
      RETURN_IF_ERROR(handler_->OnStartElement(name, attrs));
      if (self_closing) {
        RETURN_IF_ERROR(handler_->OnEndElement(name));
      } else {
        // The SAX loop itself is iterative, but consumers build recursive
        // structures (DOM subtrees, whose destructors and writers recurse
        // per level) — bound the depth here so a hostile "<a><a><a>…"
        // stream cannot overflow their stacks.
        if (open.size() >= kMaxElementDepth) {
          return Error("element nesting exceeds depth limit " +
                       std::to_string(kMaxElementDepth));
        }
        open.push_back(std::move(name));
      }
      RETURN_IF_ERROR(ParseContentUntilTag(&open));
    } while (!open.empty());
    return Status::OK();
  }

  // Consumes character data, comments, PIs, CDATA and end tags until the
  // next start tag or until all open elements are closed.
  Status ParseContentUntilTag(std::vector<std::string>* open) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (!text.empty()) {
        Status s = handler_->OnCharacters(text);
        text.clear();
        return s;
      }
      return Status::OK();
    };
    while (!open->empty()) {
      if (AtEnd()) {
        return Error("unexpected end of input inside <" + open->back() + ">");
      }
      char c = Peek();
      if (c == '<') {
        if (input_.substr(pos_).starts_with("<!--")) {
          RETURN_IF_ERROR(flush_text());
          RETURN_IF_ERROR(SkipComment());
        } else if (input_.substr(pos_).starts_with("<![CDATA[")) {
          ConsumeLiteral("<![CDATA[");
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          text.append(input_.substr(pos_, end - pos_));
          while (pos_ < end + 3) Advance();
        } else if (input_.substr(pos_).starts_with("<?")) {
          RETURN_IF_ERROR(flush_text());
          ConsumeLiteral("<?");
          RETURN_IF_ERROR(
              SkipUntil("?>", "unterminated processing instruction"));
        } else if (PeekAt(1) == '/') {
          RETURN_IF_ERROR(flush_text());
          Advance();  // '<'
          Advance();  // '/'
          std::string name;
          RETURN_IF_ERROR(ParseName(&name));
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' in end tag");
          if (name != open->back()) {
            return Error("mismatched end tag </" + name + ">, expected </" +
                         open->back() + ">");
          }
          RETURN_IF_ERROR(handler_->OnEndElement(name));
          open->pop_back();
        } else {
          // Start tag: hand control back to ParseElement's loop.
          RETURN_IF_ERROR(flush_text());
          return Status::OK();
        }
      } else if (c == '&') {
        RETURN_IF_ERROR(ParseEntity(&text));
      } else {
        text.push_back(c);
        Advance();
      }
    }
    return flush_text();
  }

  Status SkipMiscAfterRoot() {
    for (;;) {
      SkipWhitespace();
      if (input_.substr(pos_).starts_with("<!--")) {
        RETURN_IF_ERROR(SkipComment());
      } else if (input_.substr(pos_).starts_with("<?")) {
        ConsumeLiteral("<?");
        RETURN_IF_ERROR(SkipUntil("?>", "unterminated processing instruction"));
      } else {
        return Status::OK();
      }
    }
  }

  std::string_view input_;
  XmlHandler* handler_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

util::Status ParseXml(std::string_view input, XmlHandler* handler) {
  APPROXQL_CHECK(handler != nullptr);
  return Parser(input, handler).Parse();
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace approxql::xml
