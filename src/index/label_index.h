// The label indexes I_struct and I_text (paper Section 6.2): each maps a
// label to the posting of all nodes carrying that label, in preorder.
// Postings store only preorder numbers — the four encoding numbers
// (pre, bound, pathcost, inscost) live in the tree the index refers to
// and are materialized into list entries at fetch time.
//
// The same class indexes a data tree or a schema tree (the paper's
// schema-driven evaluation runs the identical algorithm over schema
// indexes, Section 7.2).
#ifndef APPROXQL_INDEX_LABEL_INDEX_H_
#define APPROXQL_INDEX_LABEL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "doc/label_table.h"
#include "storage/kv_store.h"
#include "util/status.h"

namespace approxql::index {

using Posting = std::vector<doc::NodeId>;

/// Where the evaluator gets postings from. Implementations: LabelIndex
/// (in-memory, the default) and StoredLabelIndex (lazily fetched from a
/// KvStore, the paper's Berkeley-DB-style deployment).
class PostingSource {
 public:
  /// EstimateSize's "cannot say without doing the fetch" sentinel.
  static constexpr size_t kUnknownSize = static_cast<size_t>(-1);

  virtual ~PostingSource() = default;

  /// The posting for (type, label) or nullptr if the label is unknown.
  /// The pointer stays valid for the lifetime of the source.
  virtual const Posting* Fetch(NodeType type, doc::LabelId label) const = 0;

  /// Estimated entry count of (type, label)'s posting, from statistics
  /// already in memory — never triggers IO or decode (the adaptive
  /// fan-out granularity decision runs before any fetch and must stay
  /// cheap). Returns kUnknownSize when the source cannot say; callers
  /// should treat unknown as "large enough to be worth a task".
  virtual size_t EstimateSize(NodeType type, doc::LabelId label) const {
    (void)type;
    (void)label;
    return kUnknownSize;
  }
};

class LabelIndex : public PostingSource {
 public:
  LabelIndex() = default;
  LabelIndex(const LabelIndex&) = delete;
  LabelIndex& operator=(const LabelIndex&) = delete;
  LabelIndex(LabelIndex&&) = default;
  LabelIndex& operator=(LabelIndex&&) = default;

  /// Appends `node` to the posting of (type, label). Nodes must be added
  /// in ascending preorder so postings stay sorted.
  void Add(NodeType type, doc::LabelId label, doc::NodeId node);

  /// The posting for (type, label), or nullptr if the label is unknown.
  const Posting* Fetch(NodeType type, doc::LabelId label) const override;

  /// Exact: the in-memory posting's length (0 for unknown labels).
  size_t EstimateSize(NodeType type, doc::LabelId label) const override {
    const Posting* posting = Fetch(type, label);
    return posting != nullptr ? posting->size() : 0;
  }

  /// Number of distinct labels of a type.
  size_t LabelCount(NodeType type) const {
    return postings_[static_cast<int>(type)].size();
  }

  /// All postings of a type (for the query generator's label sampling and
  /// for persistence).
  const std::unordered_map<doc::LabelId, Posting>& postings(
      NodeType type) const {
    return postings_[static_cast<int>(type)];
  }

  /// Builds I_struct and I_text over a data tree (or schema tree).
  static LabelIndex BuildFromTree(const doc::DataTree& tree);

  /// Persists all postings under `prefix` ("is"/"it" + label id).
  util::Status PersistTo(storage::KvStore* store,
                         std::string_view prefix) const;
  static util::Result<LabelIndex> LoadFrom(const storage::KvStore& store,
                                           std::string_view prefix);

 private:
  std::unordered_map<doc::LabelId, Posting> postings_[2];
};

/// Serializes a sorted posting with delta-varint encoding.
void SerializePosting(const Posting& posting, std::string* out);
util::Result<Posting> DeserializePosting(std::string_view data);

}  // namespace approxql::index

#endif  // APPROXQL_INDEX_LABEL_INDEX_H_
