// A PostingSource that reads postings out of a KvStore on first use and
// caches the decoded lists — the paper's deployment shape ("implemented
// in C++ on top of the Berkeley DB", Section 8.1): queries hit the
// store for exactly the labels they mention instead of loading the
// whole index up front.
#ifndef APPROXQL_INDEX_STORED_LABEL_INDEX_H_
#define APPROXQL_INDEX_STORED_LABEL_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "index/label_index.h"
#include "storage/kv_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::index {

class StoredLabelIndex : public PostingSource {
 public:
  /// Reads postings persisted by LabelIndex::PersistTo(store, prefix).
  /// The store must outlive this object.
  ///
  /// `node_limit` bounds what this index can see: decoded postings are
  /// truncated to ids strictly below it (kInvalidNode = unbounded).
  /// Snapshot isolation for live ingest rests on it — appending a
  /// document only ever appends ids >= the old tree size to stored
  /// postings, so an older snapshot reading the same store through its
  /// own limit reproduces exactly the postings it was built over.
  StoredLabelIndex(const storage::KvStore* store, std::string prefix,
                   doc::NodeId node_limit = doc::kInvalidNode)
      : store_(store), prefix_(std::move(prefix)), node_limit_(node_limit) {}

  /// Copies every posting of `index` (truncated to the node limit) into
  /// the cache and seals this object: later cache misses return nullptr
  /// instead of touching the store. Document removal renumbers node ids
  /// and rewrites stored postings in place, which truncation cannot mask
  /// — live snapshots are preloaded first so they never read the store
  /// again. Postings already cached keep their (stable) pointers.
  void Preload(const LabelIndex& index);

  /// Fetches from the cache or the store. Unknown labels and postings
  /// that fail to decode return nullptr (a decode failure is also
  /// recorded; see corrupt_fetches()).
  const Posting* Fetch(NodeType type, doc::LabelId label) const override;

  /// Exact for postings already decoded into the cache; kUnknownSize
  /// otherwise — estimating would cost the very store read + decode the
  /// estimate exists to schedule, so an un-fetched posting reports
  /// unknown and the granularity layer assumes it is worth a task.
  size_t EstimateSize(NodeType type, doc::LabelId label) const override {
    util::MutexLock lock(&mu_);
    auto it = cache_.find(Key(type, label));
    return it != cache_.end() && it->second != nullptr ? it->second->size()
                                                       : kUnknownSize;
  }

  /// Number of postings materialized so far.
  size_t CachedCount() const {
    util::MutexLock lock(&mu_);
    return cache_.size();
  }
  /// Store reads that returned corrupt bytes (should stay 0).
  size_t corrupt_fetches() const {
    util::MutexLock lock(&mu_);
    return corrupt_fetches_;
  }

  /// Contention counters: fetches that found the store mutex held by
  /// another thread, and the total time they spent waiting for it. The
  /// sharding bench reports these against the single-shared-store
  /// baseline (per-shard stores should drive both toward zero).
  uint64_t lock_waits() const {
    util::MutexLock lock(&mu_);
    return lock_waits_;
  }
  uint64_t lock_wait_us() const {
    util::MutexLock lock(&mu_);
    return lock_wait_us_;
  }

 private:
  static uint64_t Key(NodeType type, doc::LabelId label) {
    return (static_cast<uint64_t>(type) << 32) | label;
  }

  const storage::KvStore* store_;
  std::string prefix_;
  doc::NodeId node_limit_;
  // Guards the lazy cache: Fetch is const but materializes postings on
  // first use, and concurrent Execute calls share one index. Returned
  // Posting pointers stay stable outside the lock because entries are
  // heap-allocated and never erased. The underlying KvStore read also
  // happens under the lock — DiskKvStore's page cache is not itself
  // thread-safe.
  mutable util::Mutex mu_;
  // Pointers into the map stay valid under rehash (node-based), which
  // is what lets Fetch hand out stable Posting pointers.
  mutable std::unordered_map<uint64_t, std::unique_ptr<Posting>> cache_
      GUARDED_BY(mu_);
  mutable bool sealed_ GUARDED_BY(mu_) = false;
  mutable size_t corrupt_fetches_ GUARDED_BY(mu_) = 0;
  mutable uint64_t lock_waits_ GUARDED_BY(mu_) = 0;
  mutable uint64_t lock_wait_us_ GUARDED_BY(mu_) = 0;
};

}  // namespace approxql::index

#endif  // APPROXQL_INDEX_STORED_LABEL_INDEX_H_
