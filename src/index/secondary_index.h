// The path-dependent secondary index I_sec (paper Section 7.3): maps a
// schema node (by its preorder number in the schema) plus a label to the
// posting of all data-node instances of that class carrying the label.
// For struct classes the label is the class's element name (one posting
// per class); for the compacted text class the label is a word, so one
// text class fans out into per-word postings — exactly the paper's
// `pre(u)#label(u)` key.
#ifndef APPROXQL_INDEX_SECONDARY_INDEX_H_
#define APPROXQL_INDEX_SECONDARY_INDEX_H_

#include <cstdint>
#include <unordered_map>

#include "index/label_index.h"

namespace approxql::index {

class SecondaryIndex {
 public:
  SecondaryIndex() = default;
  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;
  SecondaryIndex(SecondaryIndex&&) = default;
  SecondaryIndex& operator=(SecondaryIndex&&) = default;

  /// Appends a data node to the posting of (schema node, label). Must be
  /// called in ascending data preorder per key.
  void Add(uint32_t schema_pre, doc::LabelId label, doc::NodeId node);

  /// The instance posting, or nullptr.
  const Posting* Fetch(uint32_t schema_pre, doc::LabelId label) const;

  size_t KeyCount() const { return postings_.size(); }

  util::Status PersistTo(storage::KvStore* store,
                         std::string_view prefix) const;
  static util::Result<SecondaryIndex> LoadFrom(const storage::KvStore& store,
                                               std::string_view prefix);

 private:
  static uint64_t Key(uint32_t schema_pre, doc::LabelId label) {
    return (static_cast<uint64_t>(schema_pre) << 32) | label;
  }

  std::unordered_map<uint64_t, Posting> postings_;
};

}  // namespace approxql::index

#endif  // APPROXQL_INDEX_SECONDARY_INDEX_H_
