#include "index/label_index.h"

#include <algorithm>

#include "util/varint.h"

namespace approxql::index {

using util::Result;
using util::Status;

void LabelIndex::Add(NodeType type, doc::LabelId label, doc::NodeId node) {
  Posting& posting = postings_[static_cast<int>(type)][label];
  APPROXQL_DCHECK(posting.empty() || posting.back() < node)
      << "postings must be built in ascending preorder";
  posting.push_back(node);
}

const Posting* LabelIndex::Fetch(NodeType type, doc::LabelId label) const {
  const auto& map = postings_[static_cast<int>(type)];
  auto it = map.find(label);
  return it == map.end() ? nullptr : &it->second;
}

LabelIndex LabelIndex::BuildFromTree(const doc::DataTree& tree) {
  LabelIndex index;
  // Skip the super-root (node 0): it is synthetic and never queried.
  for (doc::NodeId id = 1; id < tree.size(); ++id) {
    const doc::DataNode& n = tree.node(id);
    index.Add(n.type, n.label, id);
  }
  return index;
}

void SerializePosting(const Posting& posting, std::string* out) {
  util::PutVarint64(out, posting.size());
  doc::NodeId prev = 0;
  for (doc::NodeId id : posting) {
    util::PutVarint32(out, id - prev);
    prev = id;
  }
}

Result<Posting> DeserializePosting(std::string_view data) {
  util::VarintReader reader(data);
  uint64_t count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&count));
  // Each delta is at least one byte; a count past the remaining bytes is
  // corrupt and must not size the allocation.
  if (count > reader.remaining()) {
    return Status::Corruption("posting count overruns data");
  }
  Posting posting;
  posting.reserve(count);
  doc::NodeId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    RETURN_IF_ERROR(reader.GetVarint32(&delta));
    if (i > 0 && delta == 0) {
      return Status::Corruption("posting deltas must be positive");
    }
    // Hostile deltas must not wrap the 32-bit id space — a wrapped
    // posting is no longer sorted and would corrupt downstream merges.
    if (delta > UINT32_MAX - prev) {
      return Status::Corruption("posting id overflows 32-bit id space");
    }
    prev += delta;
    posting.push_back(prev);
  }
  if (!reader.empty()) {
    return Status::Corruption("trailing bytes after posting");
  }
  return posting;
}

Status LabelIndex::PersistTo(storage::KvStore* store,
                             std::string_view prefix) const {
  // Deterministic Put order (sorted by type, label): the durable layer
  // requires that persisting identical logical content produces an
  // identical store + value-log layout, and unordered_map iteration
  // order is anything but stable across processes.
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    std::vector<doc::LabelId> labels;
    labels.reserve(postings(type).size());
    for (const auto& [label, posting] : postings(type)) {
      labels.push_back(label);
    }
    std::sort(labels.begin(), labels.end());
    for (doc::LabelId label : labels) {
      std::string key(prefix);
      key.push_back(type == NodeType::kStruct ? 's' : 't');
      util::PutVarint32(&key, label);
      std::string value;
      SerializePosting(*Fetch(type, label), &value);
      RETURN_IF_ERROR(store->Put(key, value));
    }
  }
  return Status::OK();
}

Result<LabelIndex> LabelIndex::LoadFrom(const storage::KvStore& store,
                                        std::string_view prefix) {
  LabelIndex index;
  auto it = store.NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    std::string_view key = it->key();
    if (!key.starts_with(prefix)) break;
    key.remove_prefix(prefix.size());
    if (key.empty()) return Status::Corruption("truncated index key");
    NodeType type = key[0] == 's' ? NodeType::kStruct : NodeType::kText;
    if (key[0] != 's' && key[0] != 't') {
      return Status::Corruption("bad index key type byte");
    }
    util::VarintReader key_reader(key.substr(1));
    uint32_t label = 0;
    RETURN_IF_ERROR(key_reader.GetVarint32(&label));
    if (!key_reader.empty()) {
      return Status::Corruption("trailing bytes in index key");
    }
    ASSIGN_OR_RETURN(Posting posting, DeserializePosting(it->value()));
    index.postings_[static_cast<int>(type)][label] = std::move(posting);
  }
  return index;
}

}  // namespace approxql::index
