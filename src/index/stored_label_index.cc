#include "index/stored_label_index.h"

#include <chrono>

#include "util/varint.h"

namespace approxql::index {

const Posting* StoredLabelIndex::Fetch(NodeType type,
                                       doc::LabelId label) const {
  uint64_t key = Key(type, label);
  // Contention probe: a failed try_lock means another thread holds the
  // store mutex right now — the signal the sharded bench compares
  // against the single-shared-store baseline. The wait itself is timed.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    auto wait_started = std::chrono::steady_clock::now();
    lock.lock();
    ++lock_waits_;
    lock_wait_us_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_started)
            .count());
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.get();

  std::string store_key(prefix_);
  store_key.push_back(type == NodeType::kStruct ? 's' : 't');
  util::PutVarint32(&store_key, label);
  auto value = store_->Get(store_key);
  if (!value.ok()) {
    if (!value.status().IsNotFound()) ++corrupt_fetches_;
    cache_.emplace(key, nullptr);  // negative-cache misses too
    return nullptr;
  }
  auto posting = DeserializePosting(*value);
  if (!posting.ok()) {
    ++corrupt_fetches_;
    cache_.emplace(key, nullptr);
    return nullptr;
  }
  auto owned = std::make_unique<Posting>(std::move(posting).value());
  const Posting* raw = owned.get();
  cache_.emplace(key, std::move(owned));
  return raw;
}

}  // namespace approxql::index
