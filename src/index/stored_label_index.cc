#include "index/stored_label_index.h"

#include <algorithm>
#include <chrono>

#include "util/varint.h"

namespace approxql::index {

void StoredLabelIndex::Preload(const LabelIndex& index) {
  util::MutexLock lock(&mu_);
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    for (const auto& [label, posting] : index.postings(type)) {
      auto copy = std::make_unique<Posting>(posting);
      if (node_limit_ != doc::kInvalidNode) {
        auto cut = std::lower_bound(copy->begin(), copy->end(), node_limit_);
        copy->erase(cut, copy->end());
        if (copy->empty()) copy = nullptr;
      }
      // No overwrite: an already-cached entry was decoded from the same
      // logical content, and queries may hold its pointer.
      cache_.emplace(Key(type, label), std::move(copy));
    }
  }
  sealed_ = true;
}

const Posting* StoredLabelIndex::Fetch(NodeType type,
                                       doc::LabelId label) const {
  uint64_t key = Key(type, label);
  // Contention probe: a failed TryLock means another thread holds the
  // store mutex right now — the signal the sharded bench compares
  // against the single-shared-store baseline. The wait itself is timed.
  // Both branches end with mu_ held; the adopting MutexLock scopes the
  // release across the early returns below.
  if (!mu_.TryLock()) {
    auto wait_started = std::chrono::steady_clock::now();
    mu_.Lock();
    ++lock_waits_;
    lock_wait_us_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_started)
            .count());
  }
  util::MutexLock lock(&mu_, std::adopt_lock);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.get();
  if (sealed_) {
    cache_.emplace(key, nullptr);
    return nullptr;
  }

  std::string store_key(prefix_);
  store_key.push_back(type == NodeType::kStruct ? 's' : 't');
  util::PutVarint32(&store_key, label);
  auto value = store_->Get(store_key);
  if (!value.ok()) {
    if (!value.status().IsNotFound()) ++corrupt_fetches_;
    cache_.emplace(key, nullptr);  // negative-cache misses too
    return nullptr;
  }
  auto posting = DeserializePosting(*value);
  if (!posting.ok()) {
    ++corrupt_fetches_;
    cache_.emplace(key, nullptr);
    return nullptr;
  }
  auto owned = std::make_unique<Posting>(std::move(posting).value());
  if (node_limit_ != doc::kInvalidNode) {
    // Drop ids appended by documents ingested after this snapshot.
    auto cut = std::lower_bound(owned->begin(), owned->end(), node_limit_);
    owned->erase(cut, owned->end());
    if (owned->empty()) {
      cache_.emplace(key, nullptr);
      return nullptr;
    }
  }
  const Posting* raw = owned.get();
  cache_.emplace(key, std::move(owned));
  return raw;
}

}  // namespace approxql::index
