#include "index/secondary_index.h"

#include "util/varint.h"

namespace approxql::index {

using util::Result;
using util::Status;

void SecondaryIndex::Add(uint32_t schema_pre, doc::LabelId label,
                         doc::NodeId node) {
  Posting& posting = postings_[Key(schema_pre, label)];
  APPROXQL_DCHECK(posting.empty() || posting.back() < node)
      << "instance postings must be built in ascending preorder";
  posting.push_back(node);
}

const Posting* SecondaryIndex::Fetch(uint32_t schema_pre,
                                     doc::LabelId label) const {
  auto it = postings_.find(Key(schema_pre, label));
  return it == postings_.end() ? nullptr : &it->second;
}

Status SecondaryIndex::PersistTo(storage::KvStore* store,
                                 std::string_view prefix) const {
  for (const auto& [key, posting] : postings_) {
    std::string k(prefix);
    util::PutVarint32(&k, static_cast<uint32_t>(key >> 32));
    k.push_back('#');
    util::PutVarint32(&k, static_cast<uint32_t>(key));
    std::string value;
    SerializePosting(posting, &value);
    RETURN_IF_ERROR(store->Put(k, value));
  }
  return Status::OK();
}

Result<SecondaryIndex> SecondaryIndex::LoadFrom(const storage::KvStore& store,
                                                std::string_view prefix) {
  SecondaryIndex index;
  auto it = store.NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    std::string_view key = it->key();
    if (!key.starts_with(prefix)) break;
    util::VarintReader reader(key.substr(prefix.size()));
    uint32_t schema_pre = 0;
    RETURN_IF_ERROR(reader.GetVarint32(&schema_pre));
    std::string_view hash;
    RETURN_IF_ERROR(reader.GetBytes(1, &hash));
    if (hash != "#") return Status::Corruption("bad secondary index key");
    uint32_t label = 0;
    RETURN_IF_ERROR(reader.GetVarint32(&label));
    if (!reader.empty()) {
      return Status::Corruption("trailing bytes in secondary index key");
    }
    ASSIGN_OR_RETURN(Posting posting, DeserializePosting(it->value()));
    index.postings_[Key(schema_pre, label)] = std::move(posting);
  }
  return index;
}

}  // namespace approxql::index
