// Label interning: element names and words are mapped to dense 32-bit
// ids shared across the data tree, the indexes and the schema.
#ifndef APPROXQL_DOC_LABEL_TABLE_H_
#define APPROXQL_DOC_LABEL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace approxql::doc {

using LabelId = uint32_t;
inline constexpr LabelId kInvalidLabel = UINT32_MAX;

class LabelTable {
 public:
  LabelTable() = default;

  // The table hands out string_views into its own storage; moving it would
  // not invalidate them (deque-like growth), but copying is still the
  // clearer contract for a shared component: non-copyable, movable.
  LabelTable(const LabelTable&) = delete;
  LabelTable& operator=(const LabelTable&) = delete;
  LabelTable(LabelTable&&) = default;
  LabelTable& operator=(LabelTable&&) = default;

  /// Returns the id for `label`, creating one if needed.
  LabelId Intern(std::string_view label) {
    auto it = ids_.find(label);
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(labels_.size());
    labels_.emplace_back(label);
    ids_.emplace(labels_.back(), id);
    return id;
  }

  /// Returns the id for `label` or kInvalidLabel if never interned.
  LabelId Find(std::string_view label) const {
    auto it = ids_.find(label);
    return it == ids_.end() ? kInvalidLabel : it->second;
  }

  std::string_view Get(LabelId id) const {
    APPROXQL_DCHECK(id < labels_.size());
    return labels_[id];
  }

  size_t size() const { return labels_.size(); }

 private:
  // ids_ stores its own string copies (heterogeneous lookup avoids
  // temporary allocations on the hot Find path); labels_ provides the
  // id -> label direction.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId, StringHash, StringEq> ids_;
};

}  // namespace approxql::doc

#endif  // APPROXQL_DOC_LABEL_TABLE_H_
