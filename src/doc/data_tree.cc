#include "doc/data_tree.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/varint.h"

namespace approxql::doc {

using cost::Cost;
using cost::CostModel;
using util::Result;
using util::Status;

void DataTree::ApplyCosts(const CostModel& model) {
  // Parents precede children in preorder, so one forward pass suffices.
  // Text nodes are always leaves and are never inserted: inscost 0.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    DataNode& n = nodes_[id];
    n.inscost = n.type == NodeType::kStruct
                    ? model.InsertCost(NodeType::kStruct, labels_.Get(n.label))
                    : 0;
    if (n.parent == kInvalidNode) {
      n.pathcost = 0;
    } else {
      const DataNode& p = nodes_[n.parent];
      n.pathcost = cost::Add(p.pathcost, p.inscost);
    }
  }
}

xml::XmlElement DataTree::ToXml(NodeId id) const {
  APPROXQL_CHECK(node(id).type == NodeType::kStruct)
      << "ToXml requires a struct node";
  xml::XmlElement out;
  out.name = std::string(label(id));
  std::string pending_words;
  for (NodeId child = FirstChild(id); child != kInvalidNode;
       child = NextSibling(child)) {
    if (node(child).type == NodeType::kText) {
      if (!pending_words.empty()) pending_words.push_back(' ');
      pending_words.append(label(child));
    } else {
      if (!pending_words.empty()) {
        out.children.emplace_back(std::move(pending_words));
        pending_words.clear();
      }
      out.children.emplace_back(
          std::make_unique<xml::XmlElement>(ToXml(child)));
    }
  }
  if (!pending_words.empty()) {
    out.children.emplace_back(std::move(pending_words));
  }
  return out;
}

void DataTree::Serialize(std::string* out) const {
  using util::PutVarint32;
  using util::PutVarint64;
  PutVarint64(out, labels_.size());
  for (LabelId id = 0; id < labels_.size(); ++id) {
    std::string_view label = labels_.Get(id);
    PutVarint64(out, label.size());
    out->append(label);
  }
  PutVarint64(out, nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const DataNode& n = nodes_[id];
    // parent+1 so the rootless super-root encodes as 0; parents are always
    // smaller than the node id, so the delta id - parent is positive and
    // small for deep trees.
    PutVarint32(out, n.parent == kInvalidNode ? 0 : id - n.parent);
    PutVarint32(out, (n.label << 1) | static_cast<uint32_t>(n.type));
  }
}

Result<DataTree> DataTree::Deserialize(std::string_view data,
                                       const CostModel& model) {
  util::VarintReader reader(data);
  DataTree tree;
  uint64_t label_count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&label_count));
  for (uint64_t i = 0; i < label_count; ++i) {
    uint64_t len = 0;
    RETURN_IF_ERROR(reader.GetVarint64(&len));
    std::string_view bytes;
    RETURN_IF_ERROR(reader.GetBytes(len, &bytes));
    if (tree.labels_.Intern(bytes) != i) {
      return Status::Corruption("duplicate label in serialized data tree");
    }
  }
  uint64_t node_count = 0;
  RETURN_IF_ERROR(reader.GetVarint64(&node_count));
  if (node_count > UINT32_MAX) {
    return Status::Corruption("node count exceeds 32-bit id space");
  }
  // Each node is at least two 1-byte varints; a claimed count past that
  // bound cannot be satisfied by the remaining bytes, so reject it before
  // the resize instead of attempting a multi-gigabyte allocation.
  if (node_count > reader.remaining() / 2) {
    return Status::Corruption("node count overruns serialized data tree");
  }
  tree.nodes_.resize(node_count);
  for (NodeId id = 0; id < node_count; ++id) {
    uint32_t parent_delta = 0;
    uint32_t label_type = 0;
    RETURN_IF_ERROR(reader.GetVarint32(&parent_delta));
    RETURN_IF_ERROR(reader.GetVarint32(&label_type));
    DataNode& n = tree.nodes_[id];
    if (parent_delta == 0) {
      if (id != 0) return Status::Corruption("non-root node without parent");
      n.parent = kInvalidNode;
    } else {
      if (parent_delta > id) return Status::Corruption("parent after child");
      n.parent = id - parent_delta;
    }
    n.label = label_type >> 1;
    if (n.label >= tree.labels_.size()) {
      return Status::Corruption("label id out of range");
    }
    n.type = (label_type & 1) ? NodeType::kText : NodeType::kStruct;
  }
  if (!reader.empty()) {
    return Status::Corruption("trailing bytes after serialized data tree");
  }
  // Recompute bounds: every node's subtree interval ends at the maximum
  // preorder number among its descendants.
  for (NodeId id = 0; id < node_count; ++id) tree.nodes_[id].bound = id;
  for (NodeId id = static_cast<NodeId>(node_count); id-- > 1;) {
    DataNode& n = tree.nodes_[id];
    DataNode& p = tree.nodes_[n.parent];
    p.bound = std::max(p.bound, n.bound);
  }
  tree.ApplyCosts(model);
  return tree;
}

DataTreeBuilder::DataTreeBuilder() {
  DataNode root;
  root.parent = kInvalidNode;
  root.type = NodeType::kStruct;
  root.label = tree_.labels_.Intern(kSuperRootLabel);
  tree_.nodes_.push_back(root);
  stack_.push_back(0);
}

void DataTreeBuilder::StartElement(std::string_view name) {
  DataNode n;
  n.parent = stack_.back();
  n.type = NodeType::kStruct;
  n.label = tree_.labels_.Intern(name);
  NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  tree_.nodes_.push_back(n);
  stack_.push_back(id);
}

void DataTreeBuilder::EndElement() {
  APPROXQL_CHECK(stack_.size() > 1) << "EndElement without StartElement";
  stack_.pop_back();
}

void DataTreeBuilder::AddWord(std::string_view word) {
  DataNode n;
  n.parent = stack_.back();
  n.type = NodeType::kText;
  n.label = tree_.labels_.Intern(word);
  tree_.nodes_.push_back(n);
}

void DataTreeBuilder::AddText(std::string_view text) {
  for (const std::string& word : util::SplitWords(text)) {
    AddWord(word);
  }
}

void DataTreeBuilder::AddAttribute(std::string_view name,
                                   std::string_view value) {
  StartElement(name);
  AddText(value);
  EndElement();
}

void DataTreeBuilder::AddDocument(const xml::XmlElement& element) {
  StartElement(element.name);
  for (const auto& attr : element.attributes) {
    AddAttribute(attr.name, attr.value);
  }
  for (const auto& child : element.children) {
    if (const auto* elem = std::get_if<std::unique_ptr<xml::XmlElement>>(
            &child)) {
      AddDocument(**elem);
    } else {
      AddText(std::get<std::string>(child));
    }
  }
  EndElement();
}

namespace {

/// Streams SAX events straight into a DataTreeBuilder (no DOM).
class BuilderHandler : public xml::XmlHandler {
 public:
  explicit BuilderHandler(DataTreeBuilder* builder) : builder_(builder) {}

  Status OnStartElement(std::string_view name,
                        const std::vector<xml::XmlAttribute>& attrs) override {
    builder_->StartElement(name);
    for (const auto& attr : attrs) {
      builder_->AddAttribute(attr.name, attr.value);
    }
    return Status::OK();
  }
  Status OnEndElement(std::string_view) override {
    builder_->EndElement();
    return Status::OK();
  }
  Status OnCharacters(std::string_view text) override {
    builder_->AddText(text);
    return Status::OK();
  }

 private:
  DataTreeBuilder* builder_;
};

}  // namespace

Status DataTreeBuilder::AddDocumentXml(std::string_view xml_text) {
  BuilderHandler handler(this);
  return xml::ParseXml(xml_text, &handler);
}

void DataTreeBuilder::AppendSubtree(const DataTree& tree,
                                    NodeId subtree_root) {
  std::vector<NodeId> open;  // struct nodes awaiting EndElement
  const NodeId bound = tree.node(subtree_root).bound;
  for (NodeId id = subtree_root; id <= bound; ++id) {
    while (!open.empty() && tree.node(open.back()).bound < id) {
      EndElement();
      open.pop_back();
    }
    if (tree.node(id).type == NodeType::kStruct) {
      StartElement(tree.label(id));
      open.push_back(id);
    } else {
      AddWord(tree.label(id));
    }
  }
  while (!open.empty()) {
    EndElement();
    open.pop_back();
  }
}

Result<DataTree> DataTreeBuilder::Snapshot(const CostModel& model) const {
  if (stack_.size() != 1) {
    return Status::InvalidArgument("snapshot inside an open element");
  }
  // Serialize/Deserialize round-trip: O(n) like any copy, and reuses the
  // single tested path that recomputes bounds and the cost encoding.
  std::string bytes;
  tree_.Serialize(&bytes);
  return DataTree::Deserialize(bytes, model);
}

DataTreeBuilder DataTreeBuilder::FromTree(const DataTree& tree) {
  DataTreeBuilder builder;
  builder.tree_.nodes_ = tree.nodes_;
  builder.tree_.labels_ = doc::LabelTable();
  for (LabelId id = 0; id < tree.labels().size(); ++id) {
    LabelId interned = builder.tree_.labels_.Intern(tree.labels().Get(id));
    APPROXQL_CHECK(interned == id) << "label re-intern changed ids";
  }
  builder.stack_.assign(1, tree.root());
  return builder;
}

Result<DataTree> DataTreeBuilder::Build(const CostModel& model) && {
  if (stack_.size() != 1) {
    return Status::InvalidArgument("unbalanced StartElement/EndElement");
  }
  auto& nodes = tree_.nodes_;
  for (NodeId id = 0; id < nodes.size(); ++id) nodes[id].bound = id;
  for (NodeId id = static_cast<NodeId>(nodes.size()); id-- > 1;) {
    nodes[nodes[id].parent].bound =
        std::max(nodes[nodes[id].parent].bound, nodes[id].bound);
  }
  tree_.ApplyCosts(model);
  return std::move(tree_);
}

}  // namespace approxql::doc
