// The data tree (paper Section 4) and its evaluation encoding (Section
// 6.2). A collection of XML documents is normalized into one labeled
// tree of struct and text nodes under a synthetic super-root; each node
// carries the four numbers (pre, bound, inscost, pathcost) that the list
// algebra uses to test ancestorship and to price node insertions.
#ifndef APPROXQL_DOC_DATA_TREE_H_
#define APPROXQL_DOC_DATA_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "doc/label_table.h"
#include "util/status.h"
#include "xml/xml_dom.h"

namespace approxql::doc {

/// Node ids are preorder numbers; the super-root is node 0.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Label of the synthetic super-root; '<' keeps it out of the XML name
/// space so it cannot collide with element names (paper: "a new root
/// node with a unique label").
inline constexpr std::string_view kSuperRootLabel = "<root>";

struct DataNode {
  NodeId parent = kInvalidNode;
  NodeId bound = 0;  // largest preorder number in this node's subtree
  LabelId label = kInvalidLabel;
  NodeType type = NodeType::kStruct;
  cost::Cost inscost = 0;   // cost of inserting this node into a query
  cost::Cost pathcost = 0;  // sum of the insert costs of all ancestors
};

class DataTree {
 public:
  DataTree() = default;
  DataTree(const DataTree&) = delete;
  DataTree& operator=(const DataTree&) = delete;
  DataTree(DataTree&&) = default;
  DataTree& operator=(DataTree&&) = default;

  NodeId root() const { return 0; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const DataNode& node(NodeId id) const {
    APPROXQL_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  std::string_view label(NodeId id) const {
    return labels_.Get(node(id).label);
  }

  const LabelTable& labels() const { return labels_; }
  LabelTable& mutable_labels() { return labels_; }

  /// True iff u is a proper ancestor of v (paper invariant:
  /// pre(u) < pre(v) && bound(u) >= pre(v)).
  bool IsAncestor(NodeId u, NodeId v) const {
    return u < v && node(u).bound >= v;
  }

  /// Sum of the insert costs of the nodes strictly between u and v.
  /// Precondition: IsAncestor(u, v).
  cost::Cost Distance(NodeId u, NodeId v) const {
    APPROXQL_DCHECK(IsAncestor(u, v));
    return node(v).pathcost - node(u).pathcost - node(u).inscost;
  }

  /// First child of u, or kInvalidNode. With preorder ids the first child
  /// is u+1 when the subtree has more nodes than u itself.
  NodeId FirstChild(NodeId u) const {
    return node(u).bound > u ? u + 1 : kInvalidNode;
  }

  /// Next sibling of u, or kInvalidNode.
  NodeId NextSibling(NodeId u) const {
    const DataNode& n = node(u);
    if (n.parent == kInvalidNode) return kInvalidNode;
    NodeId next = n.bound + 1;
    return next <= node(n.parent).bound ? next : kInvalidNode;
  }

  /// Recomputes inscost/pathcost for every node from `model`. Must be
  /// called (by the builder or after changing the model) before Distance.
  void ApplyCosts(const cost::CostModel& model);

  /// Reconstructs the subtree rooted at `id` as XML. Attribute/element
  /// distinctions and original word separators were normalized away
  /// (Section 4); words are re-joined with single spaces. Precondition:
  /// node `id` has type struct.
  xml::XmlElement ToXml(NodeId id) const;

  /// Compact binary serialization (labels + structure; the encoding is
  /// recomputed on load from the cost model supplied to Deserialize).
  void Serialize(std::string* out) const;
  static util::Result<DataTree> Deserialize(std::string_view data,
                                            const cost::CostModel& model);

 private:
  friend class DataTreeBuilder;

  std::vector<DataNode> nodes_;
  LabelTable labels_;
};

/// Incremental construction of a data tree from SAX-like events or from
/// parsed XML documents. Creates the super-root automatically; every
/// added document becomes one child subtree of it. Normalization per
/// Section 4: element text is split into lowercase words (one text node
/// per word); an attribute becomes a struct node labeled with the
/// attribute name whose children are the words of the value.
class DataTreeBuilder {
 public:
  DataTreeBuilder();

  void StartElement(std::string_view name);
  void EndElement();
  /// Splits `text` into words and adds one text node per word.
  void AddText(std::string_view text);
  /// Adds a single pre-tokenized word (lowercased by the caller).
  void AddWord(std::string_view word);
  void AddAttribute(std::string_view name, std::string_view value);

  /// Parses `xml` and adds its root element as a document (streaming; no
  /// intermediate DOM). On a parse error the builder may hold a partial
  /// document and should be discarded.
  util::Status AddDocumentXml(std::string_view xml);
  void AddDocument(const xml::XmlElement& element);

  /// Replays the subtree of `tree` rooted at `subtree_root` as SAX
  /// events. Labels were normalized when `tree` was first built
  /// (attributes are struct nodes, text is one lowercase word per node),
  /// so the subtree is reproduced exactly.
  void AppendSubtree(const DataTree& tree, NodeId subtree_root);

  size_t node_count() const { return tree_.nodes_.size(); }

  /// The tree under construction. Structure (parent/label/type) is valid
  /// for every node already added; bounds and the cost encoding are NOT
  /// finalized — callers may only read per-node labels and types (the
  /// incremental posting maintenance of live ingest does exactly that).
  const DataTree& pending() const { return tree_; }

  /// Finalizes bounds and the encoding. The builder is consumed.
  /// Precondition: every StartElement has a matching EndElement.
  util::Result<DataTree> Build(const cost::CostModel& model) &&;

  /// Like Build, but the builder stays usable — the backbone of live
  /// ingest, where every accepted document produces a fresh immutable
  /// tree while the builder keeps accumulating. Precondition: balanced
  /// (between documents, not inside one).
  util::Result<DataTree> Snapshot(const cost::CostModel& model) const;

  /// Reconstructs a builder holding exactly the documents of `tree`, as
  /// if they had just been added — recovery resumes ingest from a
  /// checkpointed tree. Label ids and node ids are preserved.
  static DataTreeBuilder FromTree(const DataTree& tree);

 private:
  DataTree tree_;
  std::vector<NodeId> stack_;
};

}  // namespace approxql::doc

#endif  // APPROXQL_DOC_DATA_TREE_H_
