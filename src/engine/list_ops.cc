#include "engine/list_ops.h"

#include <algorithm>
#include <unordered_set>

namespace approxql::engine {

using cost::Add;
using cost::Cost;
using cost::IsFinite;
using cost::kInfinite;

EntryList Fetch(const EncodedTree& tree, const index::Posting* posting,
                bool as_leaf) {
  EntryList list;
  if (posting == nullptr) return list;
  list.reserve(posting->size());
  for (doc::NodeId id : *posting) {
    const doc::DataNode& n = tree.node(id);
    Entry e;
    e.pre = id;
    e.bound = n.bound;
    e.pathcost = n.pathcost;
    e.inscost = n.inscost;
    e.cost_any = 0;
    e.cost_leaf = as_leaf ? 0 : kInfinite;
    list.push_back(e);
  }
  return list;
}

EntryList Merge(const EntryList& left, const EntryList& right,
                Cost rename_cost) {
  EntryList out;
  out.reserve(left.size() + right.size());
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() || j < right.size()) {
    bool take_left =
        j >= right.size() || (i < left.size() && left[i].pre <= right[j].pre);
    if (take_left && j < right.size() && i < left.size() &&
        left[i].pre == right[j].pre) {
      // Defensive: identical node via two label variants — keep minima.
      Entry e = left[i];
      e.cost_any = std::min(e.cost_any, Add(right[j].cost_any, rename_cost));
      e.cost_leaf = std::min(e.cost_leaf, Add(right[j].cost_leaf, rename_cost));
      out.push_back(e);
      ++i;
      ++j;
    } else if (take_left) {
      out.push_back(left[i++]);
    } else {
      Entry e = right[j++];
      e.cost_any = Add(e.cost_any, rename_cost);
      e.cost_leaf = Add(e.cost_leaf, rename_cost);
      out.push_back(e);
    }
  }
  return out;
}

namespace {

/// Distance between an ancestor entry and a descendant entry: the sum of
/// the insert costs of the nodes strictly between them (Section 6.2).
Cost Distance(const Entry& ancestor, const Entry& descendant) {
  return descendant.pathcost - ancestor.pathcost - ancestor.inscost;
}

/// Shared structural pass of join/outerjoin: for every ancestor, the
/// componentwise minimum of distance + descendant cost over all its
/// descendants. Returns per-ancestor best costs (kInfinite if none).
/// Linear in |ancestors| + |descendants| * stack depth; the stack holds
/// only nested ancestors, so its depth is bounded by the maximal number
/// of label repetitions along a path (the paper's l).
std::vector<std::pair<Cost, Cost>> BestDescendantCosts(
    const EntryList& ancestors, const EntryList& descendants) {
  std::vector<std::pair<Cost, Cost>> best(ancestors.size(),
                                          {kInfinite, kInfinite});
  std::vector<size_t> stack;
  size_t next = 0;
  for (const Entry& d : descendants) {
    // Open all ancestors starting before d.
    while (next < ancestors.size() && ancestors[next].pre < d.pre) {
      // Ancestors not containing the newcomer are finished for good
      // (lists are sorted, so no later descendant can fall inside them).
      while (!stack.empty() &&
             ancestors[stack.back()].bound < ancestors[next].pre) {
        stack.pop_back();
      }
      stack.push_back(next++);
    }
    // Close ancestors that end before d. The stack nests (outermost at
    // the bottom), so remaining entries all contain d.
    while (!stack.empty() && ancestors[stack.back()].bound < d.pre) {
      stack.pop_back();
    }
    for (size_t idx : stack) {
      const Entry& a = ancestors[idx];
      APPROXQL_DCHECK(a.pre < d.pre && a.bound >= d.pre);
      Cost dist = Distance(a, d);
      auto& [best_any, best_leaf] = best[idx];
      best_any = std::min(best_any, Add(dist, d.cost_any));
      best_leaf = std::min(best_leaf, Add(dist, d.cost_leaf));
    }
  }
  return best;
}

}  // namespace

EntryList Join(const EntryList& ancestors, const EntryList& descendants,
               Cost edge_cost) {
  std::vector<std::pair<Cost, Cost>> best =
      BestDescendantCosts(ancestors, descendants);
  EntryList out;
  for (size_t i = 0; i < ancestors.size(); ++i) {
    if (!IsFinite(best[i].first)) continue;
    Entry e = ancestors[i];
    e.cost_any = Add(best[i].first, edge_cost);
    e.cost_leaf = Add(best[i].second, edge_cost);
    out.push_back(e);
  }
  return out;
}

EntryList OuterJoin(const EntryList& ancestors, const EntryList& descendants,
                    Cost edge_cost, Cost delete_cost) {
  std::vector<std::pair<Cost, Cost>> best =
      BestDescendantCosts(ancestors, descendants);
  EntryList out;
  for (size_t i = 0; i < ancestors.size(); ++i) {
    Cost any = std::min(best[i].first, delete_cost);
    if (!IsFinite(any)) continue;
    Entry e = ancestors[i];
    e.cost_any = Add(any, edge_cost);
    // The deletion option matches no leaf: only real matches count.
    e.cost_leaf = Add(best[i].second, edge_cost);
    out.push_back(e);
  }
  return out;
}

EntryList Intersect(const EntryList& left, const EntryList& right,
                    Cost edge_cost) {
  EntryList out;
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() && j < right.size()) {
    if (left[i].pre < right[j].pre) {
      ++i;
    } else if (left[i].pre > right[j].pre) {
      ++j;
    } else {
      Entry e = left[i];
      e.cost_any = Add(Add(left[i].cost_any, right[j].cost_any), edge_cost);
      e.cost_leaf =
          Add(std::min(Add(left[i].cost_leaf, right[j].cost_any),
                       Add(left[i].cost_any, right[j].cost_leaf)),
              edge_cost);
      if (IsFinite(e.cost_any)) out.push_back(e);
      ++i;
      ++j;
    }
  }
  return out;
}

EntryList Union(const EntryList& left, const EntryList& right,
                Cost edge_cost) {
  EntryList out;
  out.reserve(left.size() + right.size());
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() || j < right.size()) {
    if (j >= right.size() || (i < left.size() && left[i].pre < right[j].pre)) {
      Entry e = left[i++];
      e.cost_any = Add(e.cost_any, edge_cost);
      e.cost_leaf = Add(e.cost_leaf, edge_cost);
      out.push_back(e);
    } else if (i >= left.size() || right[j].pre < left[i].pre) {
      Entry e = right[j++];
      e.cost_any = Add(e.cost_any, edge_cost);
      e.cost_leaf = Add(e.cost_leaf, edge_cost);
      out.push_back(e);
    } else {
      Entry e = left[i];
      e.cost_any =
          Add(std::min(left[i].cost_any, right[j].cost_any), edge_cost);
      e.cost_leaf =
          Add(std::min(left[i].cost_leaf, right[j].cost_leaf), edge_cost);
      out.push_back(e);
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

bool RootCostLess(const RootCost& a, const RootCost& b) {
  return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
}

}  // namespace

std::vector<RootCost> SortBestN(const EntryList& list, size_t n) {
  std::vector<RootCost> results;
  results.reserve(list.size());
  for (const Entry& e : list) {
    if (IsFinite(e.cost_leaf)) {
      results.push_back({e.pre, e.cost_leaf});
    }
  }
  SortTopN(&results, n);
  return results;
}

void SortTopN(std::vector<RootCost>* results, size_t n) {
  if (n < results->size()) {
    std::partial_sort(results->begin(), results->begin() + n, results->end(),
                      RootCostLess);
    results->resize(n);
  } else {
    std::sort(results->begin(), results->end(), RootCostLess);
  }
}

std::vector<RootCost> MergeTopN(const std::vector<std::vector<RootCost>>& lists,
                                size_t n) {
  struct Cursor {
    const std::vector<RootCost>* list;
    size_t index;
    size_t tie;  // source list position, for a deterministic heap order
  };
  // Min-heap on (cost, root, tie): std::*_heap is a max-heap, so the
  // comparator is "greater".
  auto after = [](const Cursor& a, const Cursor& b) {
    const RootCost& x = (*a.list)[a.index];
    const RootCost& y = (*b.list)[b.index];
    if (x.cost != y.cost) return x.cost > y.cost;
    if (x.root != y.root) return x.root > y.root;
    return a.tie > b.tie;
  };

  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) heap.push_back({&lists[i], 0, i});
  }
  std::make_heap(heap.begin(), heap.end(), after);

  std::vector<RootCost> out;
  std::unordered_set<doc::NodeId> seen;
  while (out.size() < n && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Cursor cur = heap.back();
    heap.pop_back();
    const RootCost& rc = (*cur.list)[cur.index];
    // Entries pop in ascending (cost, root) order, so the first time a
    // root appears its cost is the minimum over all lists.
    if (seen.insert(rc.root).second) out.push_back(rc);
    if (++cur.index < cur.list->size()) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
  return out;
}

}  // namespace approxql::engine
