// A per-query fetch plan: the set of (type, label, as_leaf) postings an
// expanded query will read, collected up front so the reads can be
// materialized concurrently before evaluation starts. The evaluators
// treat a plan as an optional read-through cache: a slot that was never
// materialized (cancellation struck first, or the label is missing from
// the plan) makes Find return nullptr and the evaluator falls back to
// its inline fetch, so a partially materialized plan is always safe.
//
// Thread safety: Materialize may run concurrently for *distinct* slots;
// the caller must establish a barrier (e.g. ParallelFor's join) between
// the materialization phase and any Find call. After that barrier the
// plan is immutable and may be shared read-only across threads.
#ifndef APPROXQL_ENGINE_FETCH_PLAN_H_
#define APPROXQL_ENGINE_FETCH_PLAN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "doc/label_table.h"
#include "engine/entry_list.h"
#include "index/label_index.h"
#include "query/expanded.h"

namespace approxql::engine {

class FetchPlan {
 public:
  FetchPlan() = default;
  FetchPlan(FetchPlan&&) = default;
  FetchPlan& operator=(FetchPlan&&) = default;

  /// Collects every fetch the direct evaluation of `query` will issue
  /// (labels and their renamings, with the same as_leaf flags the
  /// evaluator uses).
  explicit FetchPlan(const query::ExpandedQuery& query);

  /// Number of distinct (type, label, as_leaf) slots.
  size_t size() const { return slots_.size(); }

  /// Materializes slot `i` from the index. Safe to call concurrently
  /// for distinct i.
  void Materialize(size_t i, const EncodedTree& tree,
                   const index::PostingSource& index,
                   const doc::LabelTable& labels);

  /// Estimated entry count of slot `i`, from the source's statistics
  /// only (never fetches): 0 for labels absent from the table,
  /// index::PostingSource::kUnknownSize when the source cannot say.
  /// Input to the adaptive fan-out decision (service/granularity.h).
  size_t EstimateEntries(size_t i, const index::PostingSource& index,
                         const doc::LabelTable& labels) const;

  /// The materialized list for (type, label, as_leaf), or nullptr if the
  /// slot is absent or was never materialized.
  const EntryList* Find(NodeType type, std::string_view label,
                        bool as_leaf) const;

 private:
  struct Slot {
    NodeType type;
    std::string label;
    bool as_leaf;
    bool ready = false;
    EntryList list;
  };

  void Add(NodeType type, std::string_view label, bool as_leaf);
  static std::string Key(NodeType type, std::string_view label, bool as_leaf);

  std::vector<Slot> slots_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_FETCH_PLAN_H_
