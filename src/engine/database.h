// Public facade: build a database from XML documents, persist/load it
// through the storage engine, and execute approXQL queries with either
// evaluation strategy. This is the API the examples and benchmarks use.
#ifndef APPROXQL_ENGINE_DATABASE_H_
#define APPROXQL_ENGINE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "engine/direct_eval.h"
#include "engine/topk_eval.h"
#include "index/label_index.h"
#include "query/ast.h"
#include "schema/schema.h"

namespace approxql::engine {

/// How a query is evaluated.
enum class Strategy {
  kDirect,    // Section 6: compute all results over the data indexes
  kSchema,    // Section 7: schema-driven incremental top-k
  kFullScan,  // baseline: direct algorithm without indexes
};

struct ExecOptions {
  Strategy strategy = Strategy::kSchema;
  /// Best-n-pairs bound; SIZE_MAX = all results.
  size_t n = 10;
  /// Transformation costs for this query (renamings/deletions). Null =
  /// the database's build-time model. Insert costs must equal the
  /// build-time model's (they are baked into the tree encoding).
  const cost::CostModel* cost_model = nullptr;
  SchemaEvaluator::Options schema;
  DirectEvaluator::Options direct;
  /// Posting source for the direct strategy instead of the database's
  /// in-memory label index (e.g. a shard's own stored postings, so
  /// concurrent fetches hit disjoint storage partitions). Must index the
  /// same tree — postings are identical, only their storage differs.
  /// Ignored by kSchema/kFullScan. Must outlive the call.
  const index::PostingSource* posting_source = nullptr;
  /// Optional out-parameters: filled with the evaluator's counters when
  /// non-null (benchmarks and tests inspect these).
  SchemaEvalStats* schema_stats_out = nullptr;
  EvalStats* direct_stats_out = nullptr;
};

/// One query answer with its materializable result subtree.
struct QueryAnswer {
  doc::NodeId root = 0;
  cost::Cost cost = 0;
};

/// Thread-safety: a Database is immutable after construction (Build*/
/// Load), and every const member is safe to call from any number of
/// threads concurrently — Execute/ExecuteStream/Explain construct their
/// evaluator state per call and only read tree_, schema_, label_index_
/// and model_, none of which have lazy/mutable components (audited:
/// LabelIndex::Fetch and SecondaryIndex::Fetch are pure map lookups;
/// the lazily-caching StoredLabelIndex is not used by Database — it
/// locks internally for callers that do share one). The exceptions:
///   - Save() is const but writes `path` + ".tmp"; concurrent Saves to
///     the same path race on the temp file. Serialize externally.
///   - Move assignment/destruction must not overlap any other call.
/// The service layer (src/service/) relies on this contract to run one
/// shared Database across a thread pool without locking.
class Database {
 public:
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Builds from XML document strings (each a complete document).
  static util::Result<Database> BuildFromXml(
      const std::vector<std::string>& documents,
      cost::CostModel model = cost::CostModel());

  /// Builds from XML files on disk (each a complete document).
  static util::Result<Database> BuildFromFiles(
      const std::vector<std::string>& paths,
      cost::CostModel model = cost::CostModel());

  /// Builds from an already-normalized data tree (e.g. the synthetic
  /// generator's output). The tree must have been encoded with `model`.
  static util::Result<Database> FromDataTree(doc::DataTree tree,
                                             cost::CostModel model);

  /// Parses and executes an approXQL query.
  util::Result<std::vector<QueryAnswer>> Execute(
      std::string_view query_text, const ExecOptions& options) const;
  util::Result<std::vector<QueryAnswer>> Execute(
      const query::Query& query, const ExecOptions& options) const;

  /// The result subtree of an answer, serialized as XML.
  std::string MaterializeXml(doc::NodeId root,
                             bool pretty = false) const;

  /// Incremental retrieval (schema strategy only): results are pulled
  /// one at a time in non-decreasing cost order, so the first answers
  /// reach the caller before the full best-n computation finishes.
  class AnswerStream {
   public:
    std::optional<QueryAnswer> Next();
    bool truncated_by_k_cap() const { return stream_->stats().k_capped; }

   private:
    friend class Database;
    // The expanded query embeds all transformation costs, so nothing
    // else needs pinning; the stream points into expanded_, which is
    // why both live here and the type is move-only.
    AnswerStream(std::unique_ptr<query::ExpandedQuery> expanded,
                 std::unique_ptr<ResultStream> stream)
        : expanded_(std::move(expanded)), stream_(std::move(stream)) {}

    std::unique_ptr<query::ExpandedQuery> expanded_;
    std::unique_ptr<ResultStream> stream_;
  };
  util::Result<AnswerStream> ExecuteStream(std::string_view query_text,
                                           const ExecOptions& options) const;
  util::Result<AnswerStream> ExecuteStream(const query::Query& query,
                                           const ExecOptions& options) const;

  /// One ranked second-level query of the schema strategy, for
  /// EXPLAIN-style output: its cost, its skeleton pattern (schema paths
  /// of all matched classes) and how many results it retrieves.
  struct Explanation {
    cost::Cost cost = 0;
    std::string skeleton;
    size_t result_count = 0;
  };
  /// The best (up to) n second-level queries for `query_text`.
  util::Result<std::vector<Explanation>> Explain(
      std::string_view query_text, const ExecOptions& options) const;

  /// Persists tree, cost model and all indexes into a single-file
  /// B+tree store; Load restores an identical database.
  util::Status Save(const std::string& path) const;
  static util::Result<Database> Load(const std::string& path);

  const doc::DataTree& tree() const { return *tree_; }
  const schema::Schema& schema() const { return *schema_; }
  const index::LabelIndex& label_index() const { return label_index_; }
  const cost::CostModel& cost_model() const { return model_; }

  /// Collection statistics (for README examples and sanity checks).
  struct Stats {
    size_t nodes = 0;
    size_t struct_nodes = 0;
    size_t text_nodes = 0;
    size_t distinct_labels = 0;
    size_t schema_nodes = 0;
  };
  Stats GetStats() const;

 private:
  Database(cost::CostModel model, std::unique_ptr<doc::DataTree> tree)
      : model_(std::move(model)), tree_(std::move(tree)) {}

  /// Rejects per-query cost models that try to change insert costs
  /// (those are baked into the encoding at build time).
  util::Status CheckQueryCostModel(const ExecOptions& options) const;

  void BuildDerivedState();

  cost::CostModel model_;
  std::unique_ptr<doc::DataTree> tree_;
  index::LabelIndex label_index_;
  std::unique_ptr<schema::Schema> schema_;
};

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_DATABASE_H_
