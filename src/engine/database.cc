#include "engine/database.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "query/expanded.h"
#include "storage/bptree.h"

namespace approxql::engine {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kTreeKey = "meta#tree";
constexpr std::string_view kCostsKey = "meta#costs";
constexpr std::string_view kLabelIndexPrefix = "ix#";
constexpr std::string_view kSecondaryPrefix = "sec#";

}  // namespace

util::Status Database::CheckQueryCostModel(const ExecOptions& options) const {
  if (options.cost_model == nullptr) return Status::OK();
  // Insert costs are baked into the tree/schema encoding at build time;
  // a per-query model may only change deletions and renamings. A full
  // comparison would be O(labels), so the cheap canary is the default
  // insert cost (the generator and all sane callers leave per-label
  // insert costs untouched).
  if (options.cost_model->default_insert_cost() !=
      model_.default_insert_cost()) {
    return Status::InvalidArgument(
        "per-query cost model changes insert costs; rebuild the database "
        "with the new model instead (insert costs are part of the tree "
        "encoding)");
  }
  return Status::OK();
}

void Database::BuildDerivedState() {
  label_index_ = index::LabelIndex::BuildFromTree(*tree_);
  schema_ = std::make_unique<schema::Schema>(
      schema::Schema::Build(tree_.get(), model_));
}

Result<Database> Database::BuildFromXml(
    const std::vector<std::string>& documents, cost::CostModel model) {
  doc::DataTreeBuilder builder;
  for (const auto& document : documents) {
    RETURN_IF_ERROR(builder.AddDocumentXml(document));
  }
  ASSIGN_OR_RETURN(doc::DataTree tree, std::move(builder).Build(model));
  return FromDataTree(std::move(tree), std::move(model));
}

Result<Database> Database::BuildFromFiles(const std::vector<std::string>& paths,
                                          cost::CostModel model) {
  doc::DataTreeBuilder builder;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot read " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    util::Status parsed = builder.AddDocumentXml(buffer.str());
    if (!parsed.ok()) {
      return Status(parsed.code(), path + ": " + parsed.message());
    }
  }
  ASSIGN_OR_RETURN(doc::DataTree tree, std::move(builder).Build(model));
  return FromDataTree(std::move(tree), std::move(model));
}

Result<Database> Database::FromDataTree(doc::DataTree tree,
                                        cost::CostModel model) {
  Database db(std::move(model),
              std::make_unique<doc::DataTree>(std::move(tree)));
  db.BuildDerivedState();
  return db;
}

Result<std::vector<QueryAnswer>> Database::Execute(
    std::string_view query_text, const ExecOptions& options) const {
  ASSIGN_OR_RETURN(query::Query query, query::Parse(query_text));
  return Execute(query, options);
}

Result<std::vector<QueryAnswer>> Database::Execute(
    const query::Query& query, const ExecOptions& options) const {
  RETURN_IF_ERROR(CheckQueryCostModel(options));
  const cost::CostModel& model =
      options.cost_model != nullptr ? *options.cost_model : model_;
  ASSIGN_OR_RETURN(query::ExpandedQuery expanded,
                   query::ExpandedQuery::Build(query, model));
  std::vector<RootCost> results;
  switch (options.strategy) {
    case Strategy::kDirect: {
      const index::PostingSource& source = options.posting_source != nullptr
                                               ? *options.posting_source
                                               : label_index_;
      DirectEvaluator evaluator(EncodedTree::Of(*tree_), source,
                                tree_->labels(), options.direct);
      results = evaluator.BestN(expanded, options.n);
      if (options.direct_stats_out != nullptr) {
        *options.direct_stats_out = evaluator.stats();
      }
      break;
    }
    case Strategy::kFullScan: {
      DirectEvaluator::Options scan = options.direct;
      scan.full_scan = true;
      DirectEvaluator evaluator(EncodedTree::Of(*tree_), label_index_,
                                tree_->labels(), scan);
      results = evaluator.BestN(expanded, options.n);
      if (options.direct_stats_out != nullptr) {
        *options.direct_stats_out = evaluator.stats();
      }
      break;
    }
    case Strategy::kSchema: {
      SchemaEvaluator evaluator(*schema_, *tree_, options.schema);
      results = evaluator.BestN(expanded, options.n);
      if (options.schema_stats_out != nullptr) {
        *options.schema_stats_out = evaluator.stats();
      }
      break;
    }
  }
  std::vector<QueryAnswer> answers;
  answers.reserve(results.size());
  for (const RootCost& rc : results) {
    answers.push_back({rc.root, rc.cost});
  }
  return answers;
}

std::optional<QueryAnswer> Database::AnswerStream::Next() {
  std::optional<RootCost> next = stream_->Next();
  if (!next.has_value()) return std::nullopt;
  return QueryAnswer{next->root, next->cost};
}

Result<Database::AnswerStream> Database::ExecuteStream(
    std::string_view query_text, const ExecOptions& options) const {
  ASSIGN_OR_RETURN(query::Query query, query::Parse(query_text));
  return ExecuteStream(query, options);
}

Result<Database::AnswerStream> Database::ExecuteStream(
    const query::Query& query, const ExecOptions& options) const {
  RETURN_IF_ERROR(CheckQueryCostModel(options));
  const cost::CostModel& model =
      options.cost_model != nullptr ? *options.cost_model : model_;
  ASSIGN_OR_RETURN(query::ExpandedQuery expanded,
                   query::ExpandedQuery::Build(query, model));
  auto owned = std::make_unique<query::ExpandedQuery>(std::move(expanded));
  auto stream = std::make_unique<ResultStream>(*schema_, *tree_, owned.get(),
                                               options.schema);
  return AnswerStream(std::move(owned), std::move(stream));
}

Result<std::vector<Database::Explanation>> Database::Explain(
    std::string_view query_text, const ExecOptions& options) const {
  RETURN_IF_ERROR(CheckQueryCostModel(options));
  ASSIGN_OR_RETURN(query::Query query, query::Parse(query_text));
  const cost::CostModel& model =
      options.cost_model != nullptr ? *options.cost_model : model_;
  ASSIGN_OR_RETURN(query::ExpandedQuery expanded,
                   query::ExpandedQuery::Build(query, model));
  SchemaEvaluator evaluator(*schema_, *tree_, options.schema);
  TopKList skeletons = evaluator.TopKQueries(expanded, options.n);
  std::vector<Explanation> explanations;
  explanations.reserve(skeletons.size());
  for (const SkeletonRef& skeleton : skeletons) {
    Explanation explanation;
    explanation.cost = skeleton->cost;
    explanation.skeleton = evaluator.DescribeSkeleton(*skeleton);
    explanation.result_count = evaluator.ExecuteSecondary(skeleton).size();
    explanations.push_back(std::move(explanation));
  }
  return explanations;
}

std::string Database::MaterializeXml(doc::NodeId root, bool pretty) const {
  xml::WriteOptions options;
  options.pretty = pretty;
  return xml::WriteXml(tree_->ToXml(root), options);
}

Status Database::Save(const std::string& path) const {
  // Write-to-temp + rename: a crash or failure mid-save never corrupts
  // an existing database file at `path`.
  const std::string temp_path = path + ".tmp";
  std::error_code ec;
  std::filesystem::remove(temp_path, ec);
  {
    ASSIGN_OR_RETURN(
        std::unique_ptr<storage::DiskKvStore> store,
        storage::DiskKvStore::Open(temp_path, /*create_if_missing=*/true));
    std::string tree_blob;
    tree_->Serialize(&tree_blob);
    RETURN_IF_ERROR(store->Put(kTreeKey, tree_blob));
    RETURN_IF_ERROR(store->Put(kCostsKey, model_.ToConfigString()));
    RETURN_IF_ERROR(label_index_.PersistTo(store.get(), kLabelIndexPrefix));
    RETURN_IF_ERROR(
        schema_->secondary_index().PersistTo(store.get(), kSecondaryPrefix));
    RETURN_IF_ERROR(store->Flush());
  }
  std::filesystem::rename(temp_path, path, ec);
  if (ec) {
    return Status::IoError("rename " + temp_path + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<Database> Database::Load(const std::string& path) {
  ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DiskKvStore> store,
      storage::DiskKvStore::Open(path, /*create_if_missing=*/false));
  ASSIGN_OR_RETURN(std::string costs_blob, store->Get(kCostsKey));
  ASSIGN_OR_RETURN(cost::CostModel model,
                   cost::CostModel::ParseConfig(costs_blob));
  ASSIGN_OR_RETURN(std::string tree_blob, store->Get(kTreeKey));
  ASSIGN_OR_RETURN(doc::DataTree tree,
                   doc::DataTree::Deserialize(tree_blob, model));
  Database db(std::move(model),
              std::make_unique<doc::DataTree>(std::move(tree)));
  // The schema rebuild is deterministic, so its class numbering matches
  // the persisted secondary postings; the persisted label index replaces
  // the rebuilt one (identical by construction — tests verify).
  db.BuildDerivedState();
  ASSIGN_OR_RETURN(index::LabelIndex label_index,
                   index::LabelIndex::LoadFrom(*store, kLabelIndexPrefix));
  db.label_index_ = std::move(label_index);
  ASSIGN_OR_RETURN(index::SecondaryIndex secondary,
                   index::SecondaryIndex::LoadFrom(*store, kSecondaryPrefix));
  // Keep the rebuilt schema label index (it is derived from the schema
  // itself) but attach the persisted instance postings.
  db.schema_->ReplaceSecondaryIndex(std::move(secondary));
  return db;
}

Database::Stats Database::GetStats() const {
  Stats stats;
  stats.nodes = tree_->size();
  for (doc::NodeId id = 0; id < tree_->size(); ++id) {
    if (tree_->node(id).type == NodeType::kStruct) {
      ++stats.struct_nodes;
    } else {
      ++stats.text_nodes;
    }
  }
  stats.distinct_labels = tree_->labels().size();
  stats.schema_nodes = schema_->size();
  return stats;
}

}  // namespace approxql::engine
