// Algorithm `primary` (paper Section 6.5, Figure 4): direct evaluation
// of the expanded query representation against an encoded tree using the
// list algebra. Includes the "full version" refinements:
//   - the at-least-one-leaf rule via the two-component entry costs;
//   - dynamic programming: the merged descendant list of every
//     node/leaf DAG vertex is independent of the ancestor list passed
//     in, so it is computed once and memoized (renaming loops in
//     ancestors then only redo the final join/outerjoin).
//
// The same evaluator runs over a data tree (direct evaluation) — and, in
// the schema-driven strategy, its adapted sibling in topk_eval.h runs
// over the schema.
#ifndef APPROXQL_ENGINE_DIRECT_EVAL_H_
#define APPROXQL_ENGINE_DIRECT_EVAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/entry_list.h"
#include "engine/fetch_plan.h"
#include "engine/list_ops.h"
#include "index/label_index.h"
#include "query/expanded.h"

namespace approxql::engine {

/// Operation counters for benchmarks and ablations.
struct EvalStats {
  uint64_t fetches = 0;
  uint64_t entries_fetched = 0;
  uint64_t list_ops = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t and_short_circuits = 0;  // right conjuncts skipped
};

class DirectEvaluator {
 public:
  struct Options {
    /// Disable to measure the ablation A1 (no DP cache).
    bool use_cache = true;
    /// Baseline A4: ignore the index and materialize fetch lists by
    /// scanning every tree node, like the matching algorithms the paper
    /// criticizes in Section 2 ("touches every data node").
    bool full_scan = false;
    /// Optional pre-materialized fetch lists (see fetch_plan.h). Slots
    /// found in the plan are copied instead of fetched from the index;
    /// misses fall back to the inline fetch. Ignored under full_scan.
    /// Must outlive the evaluator and be immutable while it runs.
    const FetchPlan* fetch_plan = nullptr;
  };

  /// `tree`, `index` and `labels` must outlive the evaluator. `labels`
  /// resolves query label strings to the tree's label ids.
  DirectEvaluator(EncodedTree tree, const index::PostingSource& index,
                  const doc::LabelTable& labels, Options options)
      : tree_(tree), index_(index), labels_(labels), options_(options) {}
  DirectEvaluator(EncodedTree tree, const index::PostingSource& index,
                  const doc::LabelTable& labels)
      : DirectEvaluator(tree, index, labels, Options()) {}

  /// Solves the best-n-pairs problem (Definition 12): all approximate
  /// results are computed, sorted by cost, and pruned after n. Pass
  /// n = SIZE_MAX for every result.
  std::vector<RootCost> BestN(const query::ExpandedQuery& query, size_t n);

  /// The full root list (all root-cost pairs, unsorted); exposed for the
  /// schema evaluator's tests and the oracle comparison.
  EntryList EvaluateRootList(const query::ExpandedQuery& query);

  const EvalStats& stats() const { return stats_; }

 private:
  EntryList FetchLabel(NodeType type, std::string_view label, bool as_leaf);
  /// The merged, ancestor-independent descendant list of a node/leaf
  /// vertex (memoized).
  const EntryList& InnerList(const query::ExpandedNode* node);
  EntryList ComputeInnerList(const query::ExpandedNode* node);
  EntryList Eval(const query::ExpandedNode* node, cost::Cost edge_cost,
                 const EntryList& ancestors);

  EncodedTree tree_;
  const index::PostingSource& index_;
  const doc::LabelTable& labels_;
  Options options_;
  EvalStats stats_;
  std::unordered_map<int, EntryList> cache_;
  EntryList scratch_;  // holds the latest inner list when the cache is off
};

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_DIRECT_EVAL_H_
