// List entries of the direct evaluation algorithm (paper Section 6.3):
//   e = (pre, bound, pathcost, inscost, embcost)
// Our entries carry two embedding costs instead of one:
//   cost_any  — the paper's embcost (cheapest embedding of the query
//               subtree, deletions included);
//   cost_leaf — cheapest embedding that matches at least one query leaf
//               (kInfinite if none). Root results report cost_leaf, which
//               implements the full algorithm's rule of Section 6.5
//               ("reject data subtrees that do not contain matches of any
//               query leaf") in a single bottom-up pass.
#ifndef APPROXQL_ENGINE_ENTRY_LIST_H_
#define APPROXQL_ENGINE_ENTRY_LIST_H_

#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "schema/schema.h"

namespace approxql::engine {

struct Entry {
  doc::NodeId pre = 0;
  doc::NodeId bound = 0;
  cost::Cost pathcost = 0;
  cost::Cost inscost = 0;
  cost::Cost cost_any = 0;
  cost::Cost cost_leaf = cost::kInfinite;
};

/// Sorted by pre, unique pre values.
using EntryList = std::vector<Entry>;

/// A uniform view over the encoded nodes of a data tree or a schema tree
/// (the same algorithm runs over either, Section 7.2).
struct EncodedTree {
  const doc::DataNode* nodes = nullptr;
  size_t size = 0;

  static EncodedTree Of(const doc::DataTree& tree) {
    // DataTree exposes nodes one at a time; the vector is contiguous.
    return {&tree.node(0), tree.size()};
  }
  static EncodedTree Of(const schema::Schema& schema) {
    return {schema.nodes().data(), schema.size()};
  }

  const doc::DataNode& node(doc::NodeId id) const {
    APPROXQL_DCHECK(id < size);
    return nodes[id];
  }
};

/// One result of a query: the embedding root and the lowest cost of any
/// embedding group rooted there (Definition 11).
struct RootCost {
  doc::NodeId root = 0;
  cost::Cost cost = 0;

  friend bool operator==(const RootCost& a, const RootCost& b) {
    return a.root == b.root && a.cost == b.cost;
  }
};

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_ENTRY_LIST_H_
