// Schema-driven evaluation (paper Section 7): the adapted algorithm
// `primary` runs over the schema and tracks, per query subtree and per
// schema subtree, the best k embedding skeletons ("second-level
// queries", Section 7.2); algorithm `secondary` executes each skeleton
// against the data tree through the path-dependent secondary index
// (Section 7.3); the incremental driver grows k until the best n results
// are found (Section 7.4, Figure 6).
//
// List entries here extend the direct-evaluation entries with the
// paper's `label` and `pointers` components:
//   e = (pre, bound, pathcost, inscost, embcost, label, pointers)
// A list may contain several entries per schema node — a *segment*,
// sorted by ascending cost. Because an entry that matches no query leaf
// can still become part of a valid skeleton through `intersect`,
// segments keep up to k best leaf-valid entries plus up to k best
// invalid ones; only leaf-valid skeletons are emitted as second-level
// queries (the Section 6.5 rule again).
#ifndef APPROXQL_ENGINE_TOPK_EVAL_H_
#define APPROXQL_ENGINE_TOPK_EVAL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/entry_list.h"
#include "index/label_index.h"
#include "index/secondary_index.h"
#include "query/expanded.h"
#include "schema/schema.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::engine {

/// One entry of the top-k algorithm; immutable once created, shared via
/// shared_ptr so pointer sets (skeleton edges) stay valid across list
/// copies. An entry whose `pointers` are followed transitively spans one
/// embedding skeleton = one second-level query.
struct SkeletonEntry {
  uint32_t pre = 0;       // schema node (class) preorder number
  uint32_t bound = 0;
  cost::Cost pathcost = 0;
  cost::Cost inscost = 0;
  cost::Cost cost = 0;    // embedding cost of the skeleton
  bool leaf_matched = false;
  doc::LabelId label = doc::kInvalidLabel;  // possibly renamed query label
  uint64_t seq = 0;       // creation order; deterministic tie-break
  std::vector<std::shared_ptr<const SkeletonEntry>> pointers;
};

using SkeletonRef = std::shared_ptr<const SkeletonEntry>;
/// Sorted by pre; within a segment (equal pre) by (cost, seq).
using TopKList = std::vector<SkeletonRef>;

struct SchemaEvalStats {
  uint64_t rounds = 0;             // incremental iterations
  uint64_t final_k = 0;
  uint64_t entries_created = 0;
  uint64_t second_level_executed = 0;
  uint64_t instances_scanned = 0;  // posting entries touched by secondary
  uint64_t shared_memo_hits = 0;   // skeletons answered by a shared memo
  /// True if BestN stopped at Options::max_k before either finding n
  /// results or exhausting the closure. The returned results are still
  /// the true best ones found so far; the list may just be short.
  bool k_capped = false;
  /// True if Options::cancelled fired and evaluation stopped early. Like
  /// k_capped, everything returned up to that point is correct — the
  /// list may just be short.
  bool cancelled = false;
};

/// A signature-keyed memo of second-level (skeleton) results shared
/// across SchemaEvaluators running against the *same* schema and tree —
/// the PR 2 disjunct fan-out: disjuncts differ only in or-branch
/// choices, so most of their skeletons overlap and per-evaluator memos
/// re-execute them. Thread-safe; results are deterministic per
/// signature, so whichever evaluator computes one first stores the same
/// posting every other would. Never share one memo across different
/// schemas (signatures embed schema preorder numbers).
class SharedSkeletonMemo {
 public:
  SharedSkeletonMemo() = default;
  SharedSkeletonMemo(const SharedSkeletonMemo&) = delete;
  SharedSkeletonMemo& operator=(const SharedSkeletonMemo&) = delete;

  /// The memoized posting for a skeleton signature, or nullptr.
  std::shared_ptr<const index::Posting> Lookup(
      const std::string& signature) const;

  /// Stores (or keeps the existing, identical) posting for `signature`.
  void Insert(const std::string& signature, index::Posting posting);

  size_t size() const;

 private:
  mutable util::Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const index::Posting>> map_
      GUARDED_BY(mu_);
};

class SchemaEvaluator {
 public:
  struct Options {
    /// Initial k of the incremental algorithm (Figure 6).
    size_t initial_k = 16;
    /// Additive increment delta (Figure 6: "k <- k + delta").
    size_t delta_k = 16;
    /// Multiplicative growth applied on top of the additive delta
    /// (k' = max(k + delta_k, k * growth)); 1.0 is the paper's purely
    /// additive schedule, the default 2.0 bounds the number of rounds
    /// when a query has few or no results. Ablation A2 sweeps this.
    double growth = 2.0;
    /// Hard bound on k. Queries whose results require more second-level
    /// queries than this return what was found (with a logged warning);
    /// the bound is what keeps zero-result queries from enumerating the
    /// full schema closure — the known degenerate case of the
    /// schema-driven strategy (the paper's Figure 7 shows it losing
    /// against direct evaluation exactly when n approaches all results).
    size_t max_k = 4096;
    /// Cooperative cancellation (deadlines): polled between incremental
    /// rounds and between second-level executions, never mid-round, so a
    /// fired check still yields the correct (possibly short) prefix of
    /// results. Null = never cancelled.
    std::function<bool()> cancelled;
    /// External *inclusive* upper bound on useful skeleton cost, polled
    /// before each second-level execution (sharded scatter-gather: the
    /// best known cost of a competing n-th answer). Skeletons with cost
    /// strictly above the bound are pruned — they can never enter the
    /// global top n — so the answers BestN returns are exactly its
    /// answers with cost <= bound (up to n). Null = no bound.
    std::function<cost::Cost()> cost_bound;
    /// Called at most once per BestN, when the evaluation first
    /// accumulates n results, with the crossing skeleton's cost — an
    /// upper bound on this evaluation's true n-th cost. Scatter-gather
    /// feeds it back into other shards' cost_bound.
    std::function<void(cost::Cost)> publish_bound;
    /// Optional cross-evaluator memo of second-level results (see
    /// SharedSkeletonMemo). Must outlive the evaluator and refer to the
    /// same schema/tree.
    SharedSkeletonMemo* shared_memo = nullptr;
    /// Injected by the service layer (src/engine cannot depend on the
    /// thread pool): runner(count, fn) must invoke fn(0..count-1) —
    /// every index exactly once, possibly concurrently — and return
    /// after all complete. When set, BestN precomputes each round's
    /// fresh second-level batch through it as concurrent waves; the
    /// consumption loop is unchanged, so results stay bit-identical to
    /// serial execution (second-level results are deterministic per
    /// signature). Null = serial second level.
    std::function<void(size_t, const std::function<void(size_t)>&)>
        parallel_runner;
    /// Fewer fresh skeletons than this in a round and the wave is not
    /// worth its fork-join barrier; the round runs serially. 0 = wave
    /// every round (tests).
    size_t parallel_min_batch = 8;
  };

  /// `schema`, `tree` (its labels and encoding) must outlive this.
  SchemaEvaluator(const schema::Schema& schema, const doc::DataTree& tree,
                  Options options);
  SchemaEvaluator(const schema::Schema& schema, const doc::DataTree& tree)
      : SchemaEvaluator(schema, tree, Options()) {}

  /// The best k second-level queries, sorted by (cost, pre, seq); only
  /// skeletons satisfying the leaf rule are returned.
  TopKList TopKQueries(const query::ExpandedQuery& query, size_t k);

  /// Algorithm secondary (Figure 5): all data roots of one second-level
  /// query, in preorder.
  index::Posting ExecuteSecondary(const SkeletonRef& skeleton);

  /// The incremental best-n driver (Figure 6). Results sorted by
  /// (cost, root). Pass n = SIZE_MAX for all results.
  std::vector<RootCost> BestN(const query::ExpandedQuery& query, size_t n);

  /// Canonical signature of a skeleton (for dedup and tests).
  static std::string Signature(const SkeletonEntry& entry);

  /// Renders a skeleton as a readable pattern, e.g.
  /// "cd@/catalog/cd{title@/catalog/cd/title{piano}}" — the schema path
  /// of every matched class plus its (possibly renamed) label.
  std::string DescribeSkeleton(const SkeletonEntry& entry) const;

  const schema::Schema& schema() const { return schema_; }
  const doc::DataTree& tree() const { return tree_; }
  const Options& options() const { return options_; }

  const SchemaEvalStats& stats() const { return stats_; }

 private:
  friend class ResultStream;  // sets stats_.k_capped on cap exhaustion

  SkeletonRef NewEntry(const SkeletonEntry& base);

  /// Thread-safe flavor of ExecuteSecondary for wave workers: reads
  /// only immutable state (schema_, tree_) plus the thread-safe `memo`,
  /// and accumulates counters into the caller-owned `stats` instead of
  /// stats_. Results are identical to ExecuteSecondary's.
  index::Posting ComputeSecondaryShared(const SkeletonEntry& skeleton,
                                        SharedSkeletonMemo* memo,
                                        SchemaEvalStats* stats) const;

  /// Runs the round's fresh (unexecuted, in-bound) skeletons through
  /// options_.parallel_runner in bounded waves, installing each wave's
  /// results into secondary_memo_ at the barrier so the serial
  /// consumption loop finds them memoized.
  void PrecomputeRound(const TopKList& queries,
                       const std::unordered_set<std::string>& executed,
                       bool have_boundary, cost::Cost boundary);

  TopKList FetchLabel(NodeType type, std::string_view label, bool as_leaf);
  const TopKList& InnerList(const query::ExpandedNode* node, size_t k);
  TopKList ComputeInnerList(const query::ExpandedNode* node, size_t k);
  TopKList Eval(const query::ExpandedNode* node, cost::Cost edge_cost,
                const TopKList& ancestors, size_t k);

  // List operations of Section 7.2.
  TopKList MergeK(const TopKList& left, const TopKList& right,
                  cost::Cost rename_cost);
  TopKList JoinK(const TopKList& ancestors, const TopKList& descendants,
                 cost::Cost edge_cost, cost::Cost delete_cost, bool outer,
                 size_t k);
  TopKList IntersectK(const TopKList& left, const TopKList& right,
                      cost::Cost edge_cost, size_t k);
  TopKList UnionK(const TopKList& left, const TopKList& right,
                  cost::Cost edge_cost, size_t k);

  const schema::Schema& schema_;
  const doc::DataTree& tree_;
  Options options_;
  SchemaEvalStats stats_;
  uint64_t next_seq_ = 0;
  std::unordered_map<int, TopKList> cache_;
  std::unordered_map<const SkeletonEntry*, index::Posting> secondary_memo_;
  // Keeps memoized entries alive so raw-pointer keys cannot be reused.
  std::vector<SkeletonRef> memo_guard_;
  // Wave workers need a signature-keyed thread-safe memo; when the
  // caller supplied none, BestN installs an owned one so waves and the
  // serial consumption path share sub-skeleton results uniformly.
  std::unique_ptr<SharedSkeletonMemo> owned_memo_;
};

/// Pull-based incremental retrieval (the paper's conclusion: "once the
/// best k second-level queries have been generated, they can be
/// evaluated successively, and the results can be sent immediately to
/// the user"). Results arrive in non-decreasing cost order; equal-cost
/// results in discovery order. The stream owns its evaluator state;
/// `schema`, `tree` and `query` must outlive it.
class ResultStream {
 public:
  ResultStream(const schema::Schema& schema, const doc::DataTree& tree,
               const query::ExpandedQuery* query,
               SchemaEvaluator::Options options);

  /// The next result, or nullopt when no further results exist (or the
  /// k cap was reached; see stats().k_capped).
  std::optional<RootCost> Next();

  const SchemaEvalStats& stats() const { return evaluator_.stats(); }

 private:
  /// Refills pending_ with the roots of the next unexecuted skeleton;
  /// grows k when the current round is used up. False when exhausted.
  bool Advance();

  SchemaEvaluator evaluator_;
  const query::ExpandedQuery* query_;
  TopKList round_;
  size_t round_index_ = 0;
  size_t k_ = 0;
  bool exhausted_ = false;
  std::unordered_set<std::string> executed_;
  std::unordered_set<doc::NodeId> seen_roots_;
  index::Posting pending_;
  size_t pending_index_ = 0;
  cost::Cost pending_cost_ = 0;
};

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_TOPK_EVAL_H_
