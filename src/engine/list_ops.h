// The list algebra of Section 6.4: fetch, merge, join, outerjoin,
// intersect, union, sort. All lists are sorted by pre with unique pre
// values; join/outerjoin use a stack-based structural merge whose stack
// depth is bounded by the label recursivity l, giving the paper's
// O(s * l) bound.
#ifndef APPROXQL_ENGINE_LIST_OPS_H_
#define APPROXQL_ENGINE_LIST_OPS_H_

#include <cstddef>

#include "engine/entry_list.h"
#include "index/label_index.h"

namespace approxql::engine {

/// Initializes a list from an index posting (function fetch). Entries
/// copy the node's four numbers; cost_any = 0. `as_leaf` marks entries
/// that are themselves query-leaf matches (cost_leaf = 0); lists fetched
/// for inner query nodes start with cost_leaf = infinite.
EntryList Fetch(const EncodedTree& tree, const index::Posting* posting,
                bool as_leaf);

/// Function merge: combines the lists of a label and one of its
/// renamings; entries from `right` pay the rename cost on both costs.
/// Inputs share no pre values in normal operation (different labels);
/// collisions keep the componentwise minimum.
EntryList Merge(const EntryList& left, const EntryList& right,
                cost::Cost rename_cost);

/// Function join: ancestors from `ancestors` that have at least one
/// descendant in `descendants`; cost = min over descendants of
/// (distance + descendant cost) + edge_cost, per cost component.
EntryList Join(const EntryList& ancestors, const EntryList& descendants,
               cost::Cost edge_cost);

/// Function outerjoin: like join, but every ancestor survives; ancestors
/// without a (finite) descendant option pay delete_cost instead. Entries
/// whose cost_any ends up infinite are dropped (they can never contribute
/// a finite result).
EntryList OuterJoin(const EntryList& ancestors, const EntryList& descendants,
                    cost::Cost edge_cost, cost::Cost delete_cost);

/// Function intersect: nodes present in both lists; costs add.
/// cost_leaf combines as min(leaf+any, any+leaf) — at least one side
/// must contribute a leaf match.
EntryList Intersect(const EntryList& left, const EntryList& right,
                    cost::Cost edge_cost);

/// Function union: nodes present in either list; matching nodes keep the
/// componentwise minimum.
EntryList Union(const EntryList& left, const EntryList& right,
                cost::Cost edge_cost);

/// Function sort: the best (up to) n root-cost pairs by cost_leaf,
/// ties broken by pre; entries without a leaf match are skipped.
std::vector<RootCost> SortBestN(const EntryList& list, size_t n);

/// The shared final ranking step of both evaluators: orders `results`
/// by (cost, root) and truncates to the best n. Partial-sorts when n is
/// smaller than the list, so ranking costs O(|results| + n log n)
/// instead of sorting every finite entry.
void SortTopN(std::vector<RootCost>* results, size_t n);

/// K-way merge of per-disjunct best-n lists (each sorted by
/// (cost, root) with unique roots) into the global best n. A root
/// appearing in several lists keeps its cheapest cost: entries pop in
/// ascending (cost, root) order, so the first occurrence of a root is
/// its minimum and later ones are skipped. A bounded heap of one cursor
/// per list replaces concatenate-and-sort: O(n log k) pops instead of
/// sorting the concatenation.
std::vector<RootCost> MergeTopN(const std::vector<std::vector<RootCost>>& lists,
                                size_t n);

}  // namespace approxql::engine

#endif  // APPROXQL_ENGINE_LIST_OPS_H_
