#include "engine/fetch_plan.h"

#include <unordered_set>

#include "engine/list_ops.h"

namespace approxql::engine {

using query::ExpandedNode;
using query::RepType;

std::string FetchPlan::Key(NodeType type, std::string_view label,
                           bool as_leaf) {
  std::string key;
  key.reserve(label.size() + 2);
  key.push_back(type == NodeType::kText ? 't' : 's');
  key.push_back(as_leaf ? 'l' : 'n');
  key.append(label);
  return key;
}

void FetchPlan::Add(NodeType type, std::string_view label, bool as_leaf) {
  auto [it, inserted] =
      index_.emplace(Key(type, label, as_leaf), slots_.size());
  if (!inserted) return;
  Slot slot;
  slot.type = type;
  slot.label = std::string(label);
  slot.as_leaf = as_leaf;
  slots_.push_back(std::move(slot));
}

FetchPlan::FetchPlan(const query::ExpandedQuery& query) {
  // Iterative DAG walk; deletion bridges share subtrees, so vertices are
  // visited once by id.
  std::unordered_set<int> visited;
  std::vector<const ExpandedNode*> stack;
  if (query.root() != nullptr) stack.push_back(query.root());
  while (!stack.empty()) {
    const ExpandedNode* node = stack.back();
    stack.pop_back();
    if (node == nullptr || !visited.insert(node->id).second) continue;
    switch (node->rep) {
      case RepType::kLeaf: {
        Add(node->type, node->label, /*as_leaf=*/true);
        for (const auto& renaming : node->renamings) {
          Add(node->type, renaming.to, /*as_leaf=*/true);
        }
        break;
      }
      case RepType::kNode: {
        // Mirrors DirectEvaluator::ComputeInnerList: a bare root (no
        // content) counts its own matches as leaf matches.
        bool bare_root = node->left == nullptr;
        Add(node->type, node->label, bare_root);
        for (const auto& renaming : node->renamings) {
          Add(node->type, renaming.to, bare_root);
        }
        stack.push_back(node->left);
        break;
      }
      case RepType::kAnd:
      case RepType::kOr:
        stack.push_back(node->left);
        stack.push_back(node->right);
        break;
    }
  }
}

void FetchPlan::Materialize(size_t i, const EncodedTree& tree,
                            const index::PostingSource& index,
                            const doc::LabelTable& labels) {
  Slot& slot = slots_[i];
  doc::LabelId id = labels.Find(slot.label);
  const index::Posting* posting =
      id == doc::kInvalidLabel ? nullptr : index.Fetch(slot.type, id);
  slot.list = Fetch(tree, posting, slot.as_leaf);
  slot.ready = true;
}

size_t FetchPlan::EstimateEntries(size_t i, const index::PostingSource& index,
                                  const doc::LabelTable& labels) const {
  const Slot& slot = slots_[i];
  doc::LabelId id = labels.Find(slot.label);
  if (id == doc::kInvalidLabel) return 0;
  return index.EstimateSize(slot.type, id);
}

const EntryList* FetchPlan::Find(NodeType type, std::string_view label,
                                 bool as_leaf) const {
  auto it = index_.find(Key(type, label, as_leaf));
  if (it == index_.end()) return nullptr;
  const Slot& slot = slots_[it->second];
  return slot.ready ? &slot.list : nullptr;
}

}  // namespace approxql::engine
