#include "engine/direct_eval.h"

namespace approxql::engine {

using query::ExpandedNode;
using query::ExpandedQuery;
using query::RepType;

EntryList DirectEvaluator::FetchLabel(NodeType type, std::string_view label,
                                      bool as_leaf) {
  ++stats_.fetches;
  if (!options_.full_scan && options_.fetch_plan != nullptr) {
    const EntryList* planned = options_.fetch_plan->Find(type, label, as_leaf);
    if (planned != nullptr) {
      stats_.entries_fetched += planned->size();
      return *planned;
    }
  }
  doc::LabelId id = labels_.Find(label);
  EntryList list;
  if (options_.full_scan) {
    // Baseline: no index; filter every node (skipping the super-root).
    for (doc::NodeId node_id = 1; node_id < tree_.size; ++node_id) {
      const doc::DataNode& n = tree_.node(node_id);
      if (n.type != type || n.label != id) continue;
      Entry e;
      e.pre = node_id;
      e.bound = n.bound;
      e.pathcost = n.pathcost;
      e.inscost = n.inscost;
      e.cost_any = 0;
      e.cost_leaf = as_leaf ? 0 : cost::kInfinite;
      list.push_back(e);
    }
  } else {
    const index::Posting* posting =
        id == doc::kInvalidLabel ? nullptr : index_.Fetch(type, id);
    list = Fetch(tree_, posting, as_leaf);
  }
  stats_.entries_fetched += list.size();
  return list;
}

EntryList DirectEvaluator::ComputeInnerList(const ExpandedNode* node) {
  if (node->rep == RepType::kLeaf) {
    EntryList list = FetchLabel(node->type, node->label, /*as_leaf=*/true);
    for (const auto& renaming : node->renamings) {
      EntryList renamed =
          FetchLabel(node->type, renaming.to, /*as_leaf=*/true);
      ++stats_.list_ops;
      list = Merge(list, renamed, renaming.cost);
    }
    return list;
  }
  APPROXQL_DCHECK(node->rep == RepType::kNode);
  // A root without content has no leaves below it; its own matches are
  // the information the query asks for, so they count as leaf matches.
  bool bare_root = node->left == nullptr;
  EntryList list = FetchLabel(node->type, node->label, bare_root);
  if (node->left != nullptr) {
    list = Eval(node->left, 0, list);
  }
  for (const auto& renaming : node->renamings) {
    EntryList renamed = FetchLabel(node->type, renaming.to, bare_root);
    if (node->left != nullptr) {
      renamed = Eval(node->left, 0, renamed);
    }
    ++stats_.list_ops;
    list = Merge(list, renamed, renaming.cost);
  }
  return list;
}

const EntryList& DirectEvaluator::InnerList(const ExpandedNode* node) {
  if (!options_.use_cache) {
    // Compute fully before storing: ComputeInnerList recurses through
    // child vertices whose results also pass through scratch_, so the
    // assignment must happen after the recursion has finished (it does —
    // no caller holds a scratch_ reference across a nested InnerList).
    EntryList list = ComputeInnerList(node);
    scratch_ = std::move(list);
    return scratch_;
  }
  auto it = cache_.find(node->id);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  EntryList list = ComputeInnerList(node);
  return cache_.emplace(node->id, std::move(list)).first->second;
}

EntryList DirectEvaluator::Eval(const ExpandedNode* node, cost::Cost edge_cost,
                                const EntryList& ancestors) {
  switch (node->rep) {
    case RepType::kLeaf: {
      const EntryList& inner = InnerList(node);
      ++stats_.list_ops;
      return OuterJoin(ancestors, inner, edge_cost, node->delcost);
    }
    case RepType::kNode: {
      const EntryList& inner = InnerList(node);
      if (node->is_root) return inner;
      ++stats_.list_ops;
      return Join(ancestors, inner, edge_cost);
    }
    case RepType::kAnd: {
      EntryList left = Eval(node->left, 0, ancestors);
      if (left.empty()) {
        // Short-circuit: intersect with an empty list is empty, so the
        // right conjunct's fetches and joins can be skipped entirely.
        ++stats_.and_short_circuits;
        return left;
      }
      EntryList right = Eval(node->right, 0, ancestors);
      ++stats_.list_ops;
      return Intersect(left, right, edge_cost);
    }
    case RepType::kOr: {
      EntryList left = Eval(node->left, 0, ancestors);
      EntryList right = Eval(node->right, node->edgecost, ancestors);
      ++stats_.list_ops;
      return Union(left, right, edge_cost);
    }
  }
  APPROXQL_CHECK(false) << "unreachable representation type";
  return {};
}

EntryList DirectEvaluator::EvaluateRootList(const ExpandedQuery& query) {
  cache_.clear();
  EntryList empty;
  return Eval(query.root(), 0, empty);
}

std::vector<RootCost> DirectEvaluator::BestN(const ExpandedQuery& query,
                                             size_t n) {
  return SortBestN(EvaluateRootList(query), n);
}

}  // namespace approxql::engine
