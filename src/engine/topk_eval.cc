#include "engine/topk_eval.h"

#include <algorithm>

#include "engine/list_ops.h"
#include "util/varint.h"

namespace approxql::engine {

using cost::Add;
using cost::Cost;
using cost::IsFinite;
using cost::kInfinite;
using query::ExpandedNode;
using query::ExpandedQuery;
using query::RepType;

namespace {

/// Orders entries within a segment.
bool SegmentLess(const SkeletonRef& a, const SkeletonRef& b) {
  if (a->cost != b->cost) return a->cost < b->cost;
  return a->seq < b->seq;
}

/// A prospective segment entry, described without allocating it: cost,
/// validity, a deterministic tie-break (enumeration order), and the up
/// to two source entries the real entry would be derived from.
struct Candidate {
  Cost cost = kInfinite;
  bool leaf_matched = false;
  uint64_t order = 0;  // deterministic enumeration index
  const SkeletonRef* primary = nullptr;    // entry the copy derives from
  const SkeletonRef* secondary = nullptr;  // intersect: the other side
};

bool CandidateLess(const Candidate& a, const Candidate& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.order < b.order;
}

/// Keeps the best k leaf-valid and best k invalid candidates, sorted by
/// (cost, order). Only survivors are later materialized as entries, so
/// segment construction never allocates more than 2k entries.
void TrimCandidates(std::vector<Candidate>* candidates, size_t k) {
  std::sort(candidates->begin(), candidates->end(), CandidateLess);
  std::vector<Candidate> kept;
  kept.reserve(std::min(candidates->size(), 2 * k));
  size_t valid = 0;
  size_t invalid = 0;
  for (auto& candidate : *candidates) {
    size_t& count = candidate.leaf_matched ? valid : invalid;
    if (count < k) {
      ++count;
      kept.push_back(candidate);
    }
  }
  *candidates = std::move(kept);
}

/// Top-k pairs (by cost sum) from two cost-sorted index lists — the
/// classic sorted-pair frontier expansion, O(k log k) instead of the
/// naive |L|*|R| enumeration (the paper's k^2 factor).
template <typename Emit>
void TopKPairs(const std::vector<const SkeletonRef*>& left,
               const std::vector<const SkeletonRef*>& right, size_t k,
               const Emit& emit) {
  if (left.empty() || right.empty() || k == 0) return;
  struct Frontier {
    Cost cost;
    size_t i;
    size_t j;
  };
  auto cmp = [](const Frontier& a, const Frontier& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    if (a.i != b.i) return a.i > b.i;
    return a.j > b.j;
  };
  std::vector<Frontier> heap;
  std::unordered_set<uint64_t> visited;
  auto push = [&](size_t i, size_t j) {
    if (i >= left.size() || j >= right.size()) return;
    uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
    if (!visited.insert(key).second) return;
    heap.push_back({Add((*left[i])->cost, (*right[j])->cost), i, j});
    std::push_heap(heap.begin(), heap.end(), cmp);
  };
  push(0, 0);
  for (size_t emitted = 0; emitted < k && !heap.empty(); ++emitted) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    Frontier top = heap.back();
    heap.pop_back();
    emit(top.cost, *left[top.i], *right[top.j], top.i, top.j);
    push(top.i + 1, top.j);
    push(top.i, top.j + 1);
  }
}

}  // namespace

std::shared_ptr<const index::Posting> SharedSkeletonMemo::Lookup(
    const std::string& signature) const {
  util::MutexLock lock(&mu_);
  auto it = map_.find(signature);
  return it != map_.end() ? it->second : nullptr;
}

void SharedSkeletonMemo::Insert(const std::string& signature,
                                index::Posting posting) {
  auto shared = std::make_shared<const index::Posting>(std::move(posting));
  util::MutexLock lock(&mu_);
  // First writer wins; concurrent inserts for one signature carry the
  // same deterministic posting, so dropping the copy is safe.
  map_.emplace(signature, std::move(shared));
}

size_t SharedSkeletonMemo::size() const {
  util::MutexLock lock(&mu_);
  return map_.size();
}

SchemaEvaluator::SchemaEvaluator(const schema::Schema& schema,
                                 const doc::DataTree& tree, Options options)
    : schema_(schema), tree_(tree), options_(options) {}

SkeletonRef SchemaEvaluator::NewEntry(const SkeletonEntry& base) {
  auto entry = std::make_shared<SkeletonEntry>(base);
  entry->seq = next_seq_++;
  ++stats_.entries_created;
  return entry;
}

TopKList SchemaEvaluator::FetchLabel(NodeType type, std::string_view label,
                                     bool as_leaf) {
  TopKList list;
  doc::LabelId id = tree_.labels().Find(label);
  if (id == doc::kInvalidLabel) return list;
  const index::Posting* posting = schema_.label_index().Fetch(type, id);
  if (posting == nullptr) return list;
  list.reserve(posting->size());
  for (uint32_t pre : *posting) {
    const doc::DataNode& n = schema_.nodes()[pre];
    SkeletonEntry e;
    e.pre = pre;
    e.bound = n.bound;
    e.pathcost = n.pathcost;
    e.inscost = n.inscost;
    e.cost = 0;
    e.leaf_matched = as_leaf;
    e.label = id;
    list.push_back(NewEntry(e));
  }
  return list;
}

TopKList SchemaEvaluator::MergeK(const TopKList& left, const TopKList& right,
                                 Cost rename_cost) {
  TopKList out;
  out.reserve(left.size() + right.size());
  size_t i = 0;
  size_t j = 0;
  auto push_right = [&](const SkeletonRef& src) {
    SkeletonEntry e = *src;
    e.cost = Add(e.cost, rename_cost);
    e.pointers = src->pointers;
    out.push_back(NewEntry(e));
  };
  while (i < left.size() || j < right.size()) {
    if (j >= right.size() ||
        (i < left.size() && left[i]->pre < right[j]->pre)) {
      out.push_back(left[i++]);
    } else if (i >= left.size() || right[j]->pre < left[i]->pre) {
      push_right(right[j++]);
    } else {
      // Same schema node reachable via two label variants: interleave
      // the segments by cost (defensive; distinct labels are distinct
      // classes in practice).
      uint32_t pre = left[i]->pre;
      std::vector<SkeletonRef> segment;
      while (i < left.size() && left[i]->pre == pre) segment.push_back(left[i++]);
      while (j < right.size() && right[j]->pre == pre) {
        SkeletonEntry e = *right[j];
        e.cost = Add(e.cost, rename_cost);
        segment.push_back(NewEntry(e));
        ++j;
      }
      std::sort(segment.begin(), segment.end(), SegmentLess);
      for (auto& entry : segment) out.push_back(std::move(entry));
    }
  }
  return out;
}

TopKList SchemaEvaluator::JoinK(const TopKList& ancestors,
                                const TopKList& descendants, Cost edge_cost,
                                Cost delete_cost, bool outer, size_t k) {
  TopKList out;
  std::vector<Candidate> candidates;
  for (const SkeletonRef& a : ancestors) {
    candidates.clear();
    // Descendant interval: entries with a->pre < pre <= a->bound.
    auto first = std::upper_bound(
        descendants.begin(), descendants.end(), a->pre,
        [](uint32_t pre, const SkeletonRef& e) { return pre < e->pre; });
    uint64_t order = 0;
    for (auto it = first; it != descendants.end() && (*it)->pre <= a->bound;
         ++it) {
      const SkeletonRef& d = *it;
      Cost dist = d->pathcost - a->pathcost - a->inscost;
      Cost total = Add(Add(dist, d->cost), edge_cost);
      if (!IsFinite(total)) continue;
      candidates.push_back({total, d->leaf_matched, order++, &d, nullptr});
    }
    if (outer && IsFinite(delete_cost)) {
      Cost total = Add(delete_cost, edge_cost);
      candidates.push_back({total, false, order++, nullptr, nullptr});
    }
    TrimCandidates(&candidates, k);
    for (const Candidate& c : candidates) {
      SkeletonEntry e = *a;
      e.cost = c.cost;
      e.leaf_matched = c.leaf_matched;
      e.pointers.clear();
      if (c.primary != nullptr) e.pointers = {*c.primary};
      out.push_back(NewEntry(e));
    }
  }
  return out;
}

TopKList SchemaEvaluator::IntersectK(const TopKList& left,
                                     const TopKList& right, Cost edge_cost,
                                     size_t k) {
  TopKList out;
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() && j < right.size()) {
    if (left[i]->pre < right[j]->pre) {
      ++i;
    } else if (right[j]->pre < left[i]->pre) {
      ++j;
    } else {
      uint32_t pre = left[i]->pre;
      size_t i_end = i;
      while (i_end < left.size() && left[i_end]->pre == pre) ++i_end;
      size_t j_end = j;
      while (j_end < right.size() && right[j_end]->pre == pre) ++j_end;
      // Split each side by validity; segments are cost-sorted, so the
      // sublists stay sorted and the frontier expansion below yields the
      // k cheapest pairs per validity class without enumerating all
      // |L|*|R| combinations.
      std::vector<const SkeletonRef*> valid_l, invalid_l, valid_r, invalid_r;
      for (size_t li = i; li < i_end; ++li) {
        (left[li]->leaf_matched ? valid_l : invalid_l).push_back(&left[li]);
      }
      for (size_t rj = j; rj < j_end; ++rj) {
        (right[rj]->leaf_matched ? valid_r : invalid_r).push_back(&right[rj]);
      }
      std::vector<Candidate> candidates;
      // The tie-break (quadrant, i, j) is independent of k so that
      // larger k keeps the smaller k's selection as a prefix.
      auto emit = [&](bool leaf_matched, uint64_t quadrant) {
        return [&candidates, leaf_matched, quadrant, edge_cost](
                   Cost pair_cost, const SkeletonRef& l, const SkeletonRef& r,
                   size_t li, size_t rj) {
          Cost total = Add(pair_cost, edge_cost);
          if (!IsFinite(total)) return;
          uint64_t order = (quadrant << 60) |
                           (static_cast<uint64_t>(li) << 30) |
                           static_cast<uint64_t>(rj);
          candidates.push_back({total, leaf_matched, order, &l, &r});
        };
      };
      // Valid result = at least one valid side (V*V, V*I, I*V).
      TopKPairs(valid_l, valid_r, k, emit(true, 0));
      TopKPairs(valid_l, invalid_r, k, emit(true, 1));
      TopKPairs(invalid_l, valid_r, k, emit(true, 2));
      TopKPairs(invalid_l, invalid_r, k, emit(false, 3));
      TrimCandidates(&candidates, k);
      for (const Candidate& c : candidates) {
        const SkeletonEntry& l = **c.primary;
        const SkeletonEntry& r = **c.secondary;
        SkeletonEntry e = l;
        e.cost = c.cost;
        e.leaf_matched = c.leaf_matched;
        e.pointers = l.pointers;
        e.pointers.insert(e.pointers.end(), r.pointers.begin(),
                          r.pointers.end());
        out.push_back(NewEntry(e));
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

TopKList SchemaEvaluator::UnionK(const TopKList& left, const TopKList& right,
                                 Cost edge_cost, size_t k) {
  TopKList out;
  size_t i = 0;
  size_t j = 0;
  auto take_segment = [](const TopKList& list, size_t* idx,
                         std::vector<SkeletonRef>* segment) {
    uint32_t pre = list[*idx]->pre;
    while (*idx < list.size() && list[*idx]->pre == pre) {
      segment->push_back(list[(*idx)++]);
    }
  };
  while (i < left.size() || j < right.size()) {
    std::vector<SkeletonRef> segment;
    if (j >= right.size() ||
        (i < left.size() && left[i]->pre < right[j]->pre)) {
      take_segment(left, &i, &segment);
    } else if (i >= left.size() || right[j]->pre < left[i]->pre) {
      take_segment(right, &j, &segment);
    } else {
      take_segment(left, &i, &segment);
      take_segment(right, &j, &segment);
    }
    std::vector<Candidate> candidates;
    candidates.reserve(segment.size());
    uint64_t order = 0;
    for (const SkeletonRef& src : segment) {
      Cost total = Add(src->cost, edge_cost);
      if (!IsFinite(total)) continue;
      candidates.push_back({total, src->leaf_matched, order++, &src, nullptr});
    }
    TrimCandidates(&candidates, k);
    for (const Candidate& c : candidates) {
      SkeletonEntry e = **c.primary;
      e.cost = c.cost;
      out.push_back(NewEntry(e));
    }
  }
  return out;
}

TopKList SchemaEvaluator::ComputeInnerList(const ExpandedNode* node,
                                           size_t k) {
  if (node->rep == RepType::kLeaf) {
    TopKList list = FetchLabel(node->type, node->label, /*as_leaf=*/true);
    for (const auto& renaming : node->renamings) {
      TopKList renamed = FetchLabel(node->type, renaming.to, /*as_leaf=*/true);
      list = MergeK(list, renamed, renaming.cost);
    }
    return list;
  }
  APPROXQL_DCHECK(node->rep == RepType::kNode);
  bool bare_root = node->left == nullptr;
  TopKList list = FetchLabel(node->type, node->label, bare_root);
  if (node->left != nullptr) {
    list = Eval(node->left, 0, list, k);
  }
  for (const auto& renaming : node->renamings) {
    TopKList renamed = FetchLabel(node->type, renaming.to, bare_root);
    if (node->left != nullptr) {
      renamed = Eval(node->left, 0, renamed, k);
    }
    list = MergeK(list, renamed, renaming.cost);
  }
  return list;
}

const TopKList& SchemaEvaluator::InnerList(const ExpandedNode* node,
                                           size_t k) {
  auto it = cache_.find(node->id);
  if (it != cache_.end()) return it->second;
  TopKList list = ComputeInnerList(node, k);
  return cache_.emplace(node->id, std::move(list)).first->second;
}

TopKList SchemaEvaluator::Eval(const ExpandedNode* node, Cost edge_cost,
                               const TopKList& ancestors, size_t k) {
  switch (node->rep) {
    case RepType::kLeaf:
      return JoinK(ancestors, InnerList(node, k), edge_cost, node->delcost,
                   /*outer=*/true, k);
    case RepType::kNode: {
      const TopKList& inner = InnerList(node, k);
      if (node->is_root) return inner;
      return JoinK(ancestors, inner, edge_cost, kInfinite, /*outer=*/false,
                   k);
    }
    case RepType::kAnd: {
      TopKList left = Eval(node->left, 0, ancestors, k);
      if (left.empty()) return left;  // intersect with nothing is nothing
      TopKList right = Eval(node->right, 0, ancestors, k);
      return IntersectK(left, right, edge_cost, k);
    }
    case RepType::kOr: {
      TopKList left = Eval(node->left, 0, ancestors, k);
      TopKList right = Eval(node->right, node->edgecost, ancestors, k);
      return UnionK(left, right, edge_cost, k);
    }
  }
  APPROXQL_CHECK(false) << "unreachable representation type";
  return {};
}

TopKList SchemaEvaluator::TopKQueries(const ExpandedQuery& query, size_t k) {
  cache_.clear();
  next_seq_ = 0;
  TopKList empty;
  TopKList roots = Eval(query.root(), 0, empty, k);
  // Function sort (Section 7.2 variant): globally best k, valid only.
  TopKList valid;
  valid.reserve(roots.size());
  for (auto& entry : roots) {
    if (entry->leaf_matched && IsFinite(entry->cost)) {
      valid.push_back(std::move(entry));
    }
  }
  std::sort(valid.begin(), valid.end(),
            [](const SkeletonRef& a, const SkeletonRef& b) {
              if (a->cost != b->cost) return a->cost < b->cost;
              if (a->pre != b->pre) return a->pre < b->pre;
              return a->seq < b->seq;
            });
  if (valid.size() > k) valid.resize(k);
  return valid;
}

index::Posting SchemaEvaluator::ExecuteSecondary(const SkeletonRef& skeleton) {
  auto it = secondary_memo_.find(skeleton.get());
  if (it != secondary_memo_.end()) return it->second;
  // The cross-evaluator memo is consulted (and filled) per skeleton,
  // including the recursive child executions below, so overlapping
  // sub-skeletons computed by a concurrent disjunct are reused too.
  std::string shared_key;
  if (options_.shared_memo != nullptr) {
    shared_key = Signature(*skeleton);
    if (auto shared = options_.shared_memo->Lookup(shared_key);
        shared != nullptr) {
      ++stats_.shared_memo_hits;
      secondary_memo_.emplace(skeleton.get(), *shared);
      memo_guard_.push_back(skeleton);
      return *shared;
    }
  }
  ++stats_.second_level_executed;
  index::Posting result;
  const index::Posting* posting =
      schema_.secondary_index().Fetch(skeleton->pre, skeleton->label);
  if (posting != nullptr) {
    result = *posting;
    stats_.instances_scanned += posting->size();
    for (const SkeletonRef& child : skeleton->pointers) {
      if (result.empty()) break;
      index::Posting child_instances = ExecuteSecondary(child);
      // Keep instances with at least one descendant in child_instances.
      // Instances of one class never nest (equal path length), so a
      // single monotone cursor suffices.
      index::Posting filtered;
      size_t cursor = 0;
      for (doc::NodeId u : result) {
        while (cursor < child_instances.size() && child_instances[cursor] <= u) {
          ++cursor;
        }
        if (cursor < child_instances.size() &&
            child_instances[cursor] <= tree_.node(u).bound) {
          filtered.push_back(u);
        }
      }
      result = std::move(filtered);
    }
  }
  if (options_.shared_memo != nullptr) {
    options_.shared_memo->Insert(shared_key, result);
  }
  secondary_memo_.emplace(skeleton.get(), result);
  memo_guard_.push_back(skeleton);
  return result;
}

index::Posting SchemaEvaluator::ComputeSecondaryShared(
    const SkeletonEntry& skeleton, SharedSkeletonMemo* memo,
    SchemaEvalStats* stats) const {
  // Mirrors ExecuteSecondary with the per-evaluator state factored out:
  // the pointer memo is replaced by the thread-safe signature memo and
  // counters land in a wave-local stats block, folded in at the
  // barrier. Keep the filtering logic in lockstep with
  // ExecuteSecondary — the two must compute identical postings.
  std::string key = Signature(skeleton);
  if (auto shared = memo->Lookup(key); shared != nullptr) {
    ++stats->shared_memo_hits;
    return *shared;
  }
  ++stats->second_level_executed;
  index::Posting result;
  const index::Posting* posting =
      schema_.secondary_index().Fetch(skeleton.pre, skeleton.label);
  if (posting != nullptr) {
    result = *posting;
    stats->instances_scanned += posting->size();
    for (const SkeletonRef& child : skeleton.pointers) {
      if (result.empty()) break;
      index::Posting child_instances =
          ComputeSecondaryShared(*child, memo, stats);
      index::Posting filtered;
      size_t cursor = 0;
      for (doc::NodeId u : result) {
        while (cursor < child_instances.size() && child_instances[cursor] <= u) {
          ++cursor;
        }
        if (cursor < child_instances.size() &&
            child_instances[cursor] <= tree_.node(u).bound) {
          filtered.push_back(u);
        }
      }
      result = std::move(filtered);
    }
  }
  memo->Insert(key, result);
  return result;
}

void SchemaEvaluator::PrecomputeRound(
    const TopKList& queries, const std::unordered_set<std::string>& executed,
    bool have_boundary, cost::Cost boundary) {
  // Fresh = not yet executed, not beyond any stopping bound the serial
  // consumption loop would hit. The bounds are snapshots: the external
  // cost_bound only tightens (scatter-gather CAS-min), so a skeleton
  // above it now stays above it — the serial loop would never run it.
  std::vector<SkeletonRef> fresh;
  std::unordered_set<std::string> in_wave;
  for (const SkeletonRef& skeleton : queries) {
    if (have_boundary && skeleton->cost > boundary) break;
    if (options_.cost_bound && skeleton->cost > options_.cost_bound()) break;
    if (secondary_memo_.count(skeleton.get()) != 0) continue;
    std::string signature = Signature(*skeleton);
    if (executed.count(signature) != 0) continue;
    if (!in_wave.insert(std::move(signature)).second) continue;
    fresh.push_back(skeleton);
  }
  if (fresh.size() < options_.parallel_min_batch) return;

  SharedSkeletonMemo* memo = options_.shared_memo;  // BestN guarantees one
  // Bounded waves keep the fork-join barrier short and let the
  // cancellation poll between waves stay responsive — the serial
  // consumption loop's own poll granularity.
  constexpr size_t kWave = 32;
  std::vector<index::Posting> postings(std::min(kWave, fresh.size()));
  std::vector<SchemaEvalStats> wave_stats(postings.size());
  for (size_t start = 0; start < fresh.size(); start += kWave) {
    if (options_.cancelled && options_.cancelled()) return;
    const size_t count = std::min(kWave, fresh.size() - start);
    options_.parallel_runner(count, [&](size_t i) {
      wave_stats[i] = SchemaEvalStats();
      postings[i] =
          ComputeSecondaryShared(*fresh[start + i], memo, &wave_stats[i]);
    });
    // Install at the barrier: the consumption loop (and later rounds'
    // freshness filter) now see these as memoized.
    for (size_t i = 0; i < count; ++i) {
      stats_.second_level_executed += wave_stats[i].second_level_executed;
      stats_.instances_scanned += wave_stats[i].instances_scanned;
      stats_.shared_memo_hits += wave_stats[i].shared_memo_hits;
      secondary_memo_.emplace(fresh[start + i].get(), std::move(postings[i]));
      memo_guard_.push_back(fresh[start + i]);
    }
  }
}

std::string SchemaEvaluator::DescribeSkeleton(
    const SkeletonEntry& entry) const {
  std::string out(tree_.labels().Get(entry.label));
  out += "@";
  out += schema_.PathOf(entry.pre, tree_.labels());
  if (!entry.pointers.empty()) {
    out += "{";
    for (size_t i = 0; i < entry.pointers.size(); ++i) {
      if (i > 0) out += ", ";
      out += DescribeSkeleton(*entry.pointers[i]);
    }
    out += "}";
  }
  return out;
}

std::string SchemaEvaluator::Signature(const SkeletonEntry& entry) {
  std::string out;
  util::PutVarint32(&out, entry.pre);
  util::PutVarint32(&out, entry.label);
  if (entry.pointers.empty()) return out;
  std::vector<std::string> children;
  children.reserve(entry.pointers.size());
  for (const auto& child : entry.pointers) {
    children.push_back(Signature(*child));
  }
  std::sort(children.begin(), children.end());
  out.push_back('(');
  for (const auto& child : children) {
    out += child;
    out.push_back(',');
  }
  out.push_back(')');
  return out;
}

std::vector<RootCost> SchemaEvaluator::BestN(const ExpandedQuery& query,
                                             size_t n) {
  std::vector<RootCost> results;
  std::unordered_set<doc::NodeId> seen_roots;
  std::unordered_set<std::string> executed;
  secondary_memo_.clear();
  memo_guard_.clear();
  if (options_.parallel_runner && options_.shared_memo == nullptr) {
    // Wave workers coordinate through a signature-keyed memo; give this
    // evaluation a private one when the caller shared none, so waves
    // and the serial consumption path reuse sub-skeleton results
    // uniformly. Fresh per BestN, like the pointer memo.
    owned_memo_ = std::make_unique<SharedSkeletonMemo>();
    options_.shared_memo = owned_memo_.get();
  }
  size_t k = options_.initial_k;
  // Once n results exist, `boundary` is the cost of the skeleton that
  // crossed n. Skeletons run in ascending cost order, so draining every
  // remaining skeleton that ties with the boundary before stopping makes
  // the (cost, root)-truncated list canonical: the same n answers
  // regardless of enumeration order, which is what lets the parallel
  // per-disjunct path reproduce this list bit-for-bit.
  bool have_boundary = false;
  cost::Cost boundary = 0;
  bool done = false;
  for (;;) {
    if (options_.cancelled && options_.cancelled()) {
      stats_.cancelled = true;
      break;
    }
    ++stats_.rounds;
    stats_.final_k = k;
    TopKList queries = TopKQueries(query, k);
    // Precompute the round's second-level batch as concurrent waves;
    // the loop below then consumes memoized results in the exact serial
    // order, so the (cost, root) ranking is bit-identical either way.
    if (options_.parallel_runner) {
      PrecomputeRound(queries, executed, have_boundary, boundary);
    }
    for (const SkeletonRef& skeleton : queries) {
      // Second-level queries run in ascending cost order, so stopping on
      // a fired deadline between them still leaves a correct (short)
      // prefix of the best results.
      if (options_.cancelled && options_.cancelled()) {
        stats_.cancelled = true;
        break;
      }
      if (have_boundary && skeleton->cost > boundary) {
        done = true;
        break;
      }
      // External bound (scatter-gather): a competing evaluation already
      // holds n answers at or below this cost, so costlier skeletons are
      // globally useless — even when *this* evaluation has fewer than n
      // results. Inclusive: ties at the bound still run, which is what
      // keeps the merged (cost, root) ranking bit-identical.
      if (options_.cost_bound && skeleton->cost > options_.cost_bound()) {
        done = true;
        break;
      }
      std::string signature = Signature(*skeleton);
      if (!executed.insert(std::move(signature)).second) continue;
      index::Posting roots = ExecuteSecondary(skeleton);
      for (doc::NodeId root : roots) {
        // Second-level queries run in ascending cost order, so the first
        // hit per root carries its minimal cost.
        if (seen_roots.insert(root).second) {
          results.push_back({root, skeleton->cost});
        }
      }
      if (!have_boundary && results.size() >= n) {
        have_boundary = true;
        boundary = skeleton->cost;
        if (options_.publish_bound) options_.publish_bound(boundary);
      }
    }
    if (stats_.cancelled) break;
    if (done) break;
    // Fewer valid skeletons than requested means the schema closure is
    // exhausted (per-segment trims only bind once a segment reaches k,
    // which forces the global list to k as well) — growing k adds
    // nothing.
    if (queries.size() < k) break;
    if (k >= options_.max_k) {
      APPROXQL_LOG(Warning) << "incremental k cap reached at " << k;
      stats_.k_capped = true;
      break;
    }
    size_t grown = static_cast<size_t>(static_cast<double>(k) *
                                       std::max(options_.growth, 1.0));
    k = std::min(std::max(k + options_.delta_k, grown), options_.max_k);
  }
  SortTopN(&results, n);
  return results;
}

// ---------------------------------------------------------------------------
// ResultStream

ResultStream::ResultStream(const schema::Schema& schema,
                           const doc::DataTree& tree,
                           const query::ExpandedQuery* query,
                           SchemaEvaluator::Options options)
    : evaluator_(schema, tree, options),
      query_(query),
      k_(options.initial_k) {
  round_ = evaluator_.TopKQueries(*query_, k_);
}

bool ResultStream::Advance() {
  // Find the next unexecuted skeleton, growing k across rounds exactly
  // like SchemaEvaluator::BestN.
  for (;;) {
    if (evaluator_.options().cancelled && evaluator_.options().cancelled()) {
      evaluator_.stats_.cancelled = true;
      return false;
    }
    while (round_index_ < round_.size()) {
      const SkeletonRef& skeleton = round_[round_index_++];
      std::string signature = SchemaEvaluator::Signature(*skeleton);
      if (!executed_.insert(std::move(signature)).second) continue;
      index::Posting roots = evaluator_.ExecuteSecondary(skeleton);
      pending_.clear();
      for (doc::NodeId root : roots) {
        if (seen_roots_.insert(root).second) pending_.push_back(root);
      }
      if (!pending_.empty()) {
        pending_index_ = 0;
        pending_cost_ = skeleton->cost;
        return true;
      }
    }
    if (round_.size() < k_) return false;  // closure exhausted
    if (k_ >= evaluator_.options().max_k) {
      evaluator_.stats_.k_capped = true;
      return false;
    }
    size_t grown = static_cast<size_t>(
        static_cast<double>(k_) * std::max(evaluator_.options().growth, 1.0));
    k_ = std::min(std::max(k_ + evaluator_.options().delta_k, grown),
                  evaluator_.options().max_k);
    round_ = evaluator_.TopKQueries(*query_, k_);
    round_index_ = 0;
  }
}

std::optional<RootCost> ResultStream::Next() {
  if (exhausted_) return std::nullopt;
  if (pending_index_ >= pending_.size()) {
    if (!Advance()) {
      exhausted_ = true;
      return std::nullopt;
    }
  }
  return RootCost{pending_[pending_index_++], pending_cost_};
}

}  // namespace approxql::engine
