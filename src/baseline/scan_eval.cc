#include "baseline/scan_eval.h"

#include <algorithm>

namespace approxql::baseline {

using cost::Add;
using cost::Cost;
using cost::IsFinite;
using cost::kInfinite;
using engine::RootCost;
using query::ExpandedNode;
using query::ExpandedQuery;
using query::RepType;

ScanEvaluator::CostArray ScanEvaluator::BestDescendant(
    const CostArray& d) const {
  CostArray g(tree_.size);
  // Children carry larger preorder numbers, so one reverse pass folds
  // every node's best option into its parent:
  //   g[v] = min over children c of min(d[c], g[c] + inscost(c)).
  for (doc::NodeId v = static_cast<doc::NodeId>(tree_.size); v-- > 1;) {
    const doc::DataNode& node = tree_.node(v);
    if (node.parent == doc::kInvalidNode) continue;
    CostPair candidate;
    candidate.any = std::min(d[v].any, Add(g[v].any, node.inscost));
    candidate.leaf = std::min(d[v].leaf, Add(g[v].leaf, node.inscost));
    CostPair& parent = g[node.parent];
    parent.any = std::min(parent.any, candidate.any);
    parent.leaf = std::min(parent.leaf, candidate.leaf);
  }
  return g;
}

ScanEvaluator::CostArray ScanEvaluator::InnerArray(const ExpandedNode* node) {
  if (inner_cache_.size() <= static_cast<size_t>(node->id)) {
    inner_cache_.resize(static_cast<size_t>(node->id) + 1);
  }
  if (!inner_cache_[node->id].empty()) return inner_cache_[node->id];

  bool leaf_rep = node->rep == RepType::kLeaf;
  bool bare_root = node->rep == RepType::kNode && node->left == nullptr;
  CostArray result(tree_.size);

  // One pass per label variant: mark matching nodes, then (for kNode)
  // evaluate the child expression anchored at them.
  auto add_variant = [&](std::string_view label, Cost rename_cost) {
    doc::LabelId id = labels_.Find(label);
    if (id == doc::kInvalidLabel) return;
    std::vector<bool> anchors(tree_.size, false);
    bool any_anchor = false;
    for (doc::NodeId v = 1; v < tree_.size; ++v) {
      if (tree_.node(v).type == node->type && tree_.node(v).label == id) {
        anchors[v] = true;
        any_anchor = true;
      }
    }
    if (!any_anchor) return;
    CostArray variant;
    if (leaf_rep || bare_root) {
      variant.assign(tree_.size, CostPair{});
      for (doc::NodeId v = 1; v < tree_.size; ++v) {
        if (anchors[v]) variant[v] = {0, 0};
      }
    } else {
      variant = EvalVertex(node->left, 0, anchors);
    }
    for (doc::NodeId v = 1; v < tree_.size; ++v) {
      result[v].any = std::min(result[v].any,
                               Add(variant[v].any, rename_cost));
      result[v].leaf = std::min(result[v].leaf,
                                Add(variant[v].leaf, rename_cost));
    }
  };

  add_variant(node->label, 0);
  for (const auto& renaming : node->renamings) {
    add_variant(renaming.to, renaming.cost);
  }
  // A leaf's own match is a leaf match; inner nodes inherit their
  // children's leaf costs via EvalVertex.
  if (leaf_rep || bare_root) {
    // Nothing extra: the {0, 0} pairs above already mark leaf matches.
  }
  inner_cache_[node->id] = std::move(result);
  return inner_cache_[node->id];
}

ScanEvaluator::CostArray ScanEvaluator::EvalVertex(
    const ExpandedNode* node, Cost edge_cost,
    const std::vector<bool>& anchors) {
  switch (node->rep) {
    case RepType::kLeaf: {
      CostArray g = BestDescendant(InnerArray(node));
      CostArray out(tree_.size);
      for (doc::NodeId v = 1; v < tree_.size; ++v) {
        if (!anchors[v]) continue;
        Cost any = Add(std::min(node->delcost, g[v].any), edge_cost);
        if (!IsFinite(any)) continue;
        out[v].any = any;
        out[v].leaf = Add(g[v].leaf, edge_cost);
      }
      return out;
    }
    case RepType::kNode: {
      const CostArray& inner = InnerArray(node);
      if (node->is_root) return inner;
      CostArray g = BestDescendant(inner);
      CostArray out(tree_.size);
      for (doc::NodeId v = 1; v < tree_.size; ++v) {
        if (!anchors[v] || !IsFinite(g[v].any)) continue;
        out[v].any = Add(g[v].any, edge_cost);
        out[v].leaf = Add(g[v].leaf, edge_cost);
      }
      return out;
    }
    case RepType::kAnd: {
      CostArray left = EvalVertex(node->left, 0, anchors);
      CostArray right = EvalVertex(node->right, 0, anchors);
      CostArray out(tree_.size);
      for (doc::NodeId v = 1; v < tree_.size; ++v) {
        Cost any = Add(left[v].any, right[v].any);
        if (!IsFinite(any)) continue;
        out[v].any = Add(any, edge_cost);
        out[v].leaf = Add(std::min(Add(left[v].leaf, right[v].any),
                                   Add(left[v].any, right[v].leaf)),
                          edge_cost);
      }
      return out;
    }
    case RepType::kOr: {
      CostArray left = EvalVertex(node->left, 0, anchors);
      CostArray right = EvalVertex(node->right, node->edgecost, anchors);
      CostArray out(tree_.size);
      for (doc::NodeId v = 1; v < tree_.size; ++v) {
        Cost any = std::min(left[v].any, right[v].any);
        if (!IsFinite(any)) continue;
        out[v].any = Add(any, edge_cost);
        out[v].leaf =
            Add(std::min(left[v].leaf, right[v].leaf), edge_cost);
      }
      return out;
    }
  }
  APPROXQL_CHECK(false) << "unreachable representation type";
  return {};
}

std::vector<RootCost> ScanEvaluator::BestN(const ExpandedQuery& query,
                                           size_t n) {
  inner_cache_.clear();
  std::vector<bool> no_anchors(tree_.size, false);
  CostArray roots = EvalVertex(query.root(), 0, no_anchors);
  std::vector<RootCost> results;
  for (doc::NodeId v = 1; v < tree_.size; ++v) {
    if (IsFinite(roots[v].leaf)) {
      results.push_back({v, roots[v].leaf});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const RootCost& a, const RootCost& b) {
              return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
            });
  if (results.size() > n) results.resize(n);
  return results;
}

}  // namespace approxql::baseline
