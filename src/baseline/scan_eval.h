// Node-at-a-time evaluation baseline: computes, for EVERY data node, the
// cost of embedding each query subtree there, by dense bottom-up dynamic
// programming over the whole tree — the computation style of the
// tree-matching algorithms the paper's Section 2 dismisses as
// "touch[ing] every data node, which is inadequate for large databases"
// (Zhang's restricted edit distance [16] and relatives).
//
// Complexity: O(|query DAG| * |data tree|) regardless of selectivity —
// no indexes, no lists. Semantically identical to the engine (same
// expanded representation, same two-component costs), so it serves both
// as the performance baseline A4' and as a third, polynomial-time
// correctness witness next to the exponential closure oracle.
#ifndef APPROXQL_BASELINE_SCAN_EVAL_H_
#define APPROXQL_BASELINE_SCAN_EVAL_H_

#include <vector>

#include "engine/entry_list.h"
#include "query/expanded.h"

namespace approxql::baseline {

class ScanEvaluator {
 public:
  /// `tree` must outlive the evaluator.
  explicit ScanEvaluator(const engine::EncodedTree& tree,
                         const doc::LabelTable& labels)
      : tree_(tree), labels_(labels) {}

  /// Best-n root-cost pairs, identical contract to
  /// engine::DirectEvaluator::BestN.
  std::vector<engine::RootCost> BestN(const query::ExpandedQuery& query,
                                      size_t n);

 private:
  /// Per-data-node (cost_any, cost_leaf) pair; kInfinite = no embedding.
  struct CostPair {
    cost::Cost any = cost::kInfinite;
    cost::Cost leaf = cost::kInfinite;
  };
  using CostArray = std::vector<CostPair>;

  CostArray EvalVertex(const query::ExpandedNode* node, cost::Cost edge_cost,
                       const std::vector<bool>& anchors);
  CostArray InnerArray(const query::ExpandedNode* node);
  /// g[v] = min over proper descendants w of v of distance(v, w) + d[w],
  /// computed for every node in one reverse-preorder pass.
  CostArray BestDescendant(const CostArray& d) const;

  const engine::EncodedTree& tree_;
  const doc::LabelTable& labels_;
  std::vector<CostArray> inner_cache_;
};

}  // namespace approxql::baseline

#endif  // APPROXQL_BASELINE_SCAN_EVAL_H_
