// Brute-force reference implementation of the approximate query-matching
// semantics (Definitions 7-12): explicitly materializes the closure of
// transformed queries — every combination of deletions and renamings of
// every conjunctive query in the separated representation — and embeds
// each against the data tree with ancestor-descendant semantics (node
// insertions are priced implicitly through path distances, which is
// equivalent to enumerating insertion sequences).
//
// Exponential in query size; exists as the correctness oracle for the
// polynomial algorithms and as documentation of the model. Matches the
// engine's "full version" rule: a result must match at least one query
// leaf (leaves = text selectors and content-free name selectors).
#ifndef APPROXQL_BASELINE_CLOSURE_EVAL_H_
#define APPROXQL_BASELINE_CLOSURE_EVAL_H_

#include <vector>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "engine/entry_list.h"
#include "query/ast.h"
#include "query/separated.h"

namespace approxql::baseline {

struct ClosureOptions {
  /// Abort with OutOfRange when the closure of semi-transformed queries
  /// exceeds this many variants (guards tests against blow-ups).
  size_t max_variants = 200000;
  /// Limit for the separated representation.
  size_t max_conjunctive = 4096;
};

/// Solves the best-n-pairs problem by exhaustive enumeration. Results
/// are sorted by (cost, root) like the engine's output.
util::Result<std::vector<engine::RootCost>> ClosureBestN(
    const query::Query& query, const cost::CostModel& model,
    const doc::DataTree& tree, size_t n, const ClosureOptions& options = {});

/// Number of semi-transformed variants the oracle enumerated for the
/// last-level inspection in tests (returned via out-param variant).
util::Result<size_t> ClosureVariantCount(const query::Query& query,
                                         const cost::CostModel& model,
                                         const ClosureOptions& options = {});

}  // namespace approxql::baseline

#endif  // APPROXQL_BASELINE_CLOSURE_EVAL_H_
