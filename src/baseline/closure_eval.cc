#include "baseline/closure_eval.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

namespace approxql::baseline {

using cost::Add;
using cost::Cost;
using cost::CostModel;
using cost::IsFinite;
using cost::kInfinite;
using doc::DataTree;
using doc::NodeId;
using engine::RootCost;
using query::ConjunctiveNode;
using util::Result;
using util::Status;

namespace {

/// A semi-transformed query: a tree plus the accumulated transformation
/// cost and the number of surviving original leaves.
struct Variant {
  Cost cost = 0;
  size_t kept_leaves = 0;
  std::unique_ptr<ConjunctiveNode> root;
};

/// One alternative contribution of a query node to its parent: a forest
/// (deletion of an inner node promotes its children) plus cost/leaves.
struct Alternative {
  Cost cost = 0;
  size_t kept_leaves = 0;
  std::vector<std::unique_ptr<ConjunctiveNode>> forest;
};

std::vector<std::unique_ptr<ConjunctiveNode>> CloneForest(
    const std::vector<std::unique_ptr<ConjunctiveNode>>& forest) {
  std::vector<std::unique_ptr<ConjunctiveNode>> copy;
  copy.reserve(forest.size());
  for (const auto& node : forest) copy.push_back(node->Clone());
  return copy;
}

/// Enumerates all semi-transformed alternatives of a subtree.
Status Enumerate(const ConjunctiveNode& node, const CostModel& model,
                 bool is_root, size_t max_variants,
                 std::vector<Alternative>* out) {
  bool is_leaf = node.children.empty();
  // Combine children alternatives (cartesian product).
  std::vector<Alternative> combined;
  combined.emplace_back();
  for (const auto& child : node.children) {
    std::vector<Alternative> child_alts;
    RETURN_IF_ERROR(
        Enumerate(*child, model, /*is_root=*/false, max_variants, &child_alts));
    std::vector<Alternative> next;
    if (combined.size() * child_alts.size() > max_variants) {
      return Status::OutOfRange("closure exceeds variant limit");
    }
    for (const auto& left : combined) {
      for (const auto& right : child_alts) {
        Alternative merged;
        merged.cost = Add(left.cost, right.cost);
        merged.kept_leaves = left.kept_leaves + right.kept_leaves;
        merged.forest = CloneForest(left.forest);
        for (auto& tree : CloneForest(right.forest)) {
          merged.forest.push_back(std::move(tree));
        }
        next.push_back(std::move(merged));
      }
    }
    combined = std::move(next);
  }

  std::vector<Alternative> alternatives;
  // Keep the node under each label variant.
  std::vector<cost::Renaming> labels;
  labels.push_back({node.label, 0});
  for (const auto& renaming : model.RenamingsOf(node.type, node.label)) {
    labels.push_back(renaming);
  }
  for (const auto& label : labels) {
    for (const auto& alt : combined) {
      Alternative kept;
      kept.cost = Add(alt.cost, label.cost);
      kept.kept_leaves = alt.kept_leaves + (is_leaf ? 1 : 0);
      auto copy = std::make_unique<ConjunctiveNode>();
      copy->type = node.type;
      copy->label = label.to;
      copy->children = CloneForest(alt.forest);
      kept.forest.push_back(std::move(copy));
      alternatives.push_back(std::move(kept));
    }
  }
  // Deletion (never of the root). Leaf deletion removes the node;
  // inner-node deletion promotes the children.
  Cost delete_cost = model.DeleteCost(node.type, node.label);
  if (!is_root && IsFinite(delete_cost)) {
    for (const auto& alt : combined) {
      Alternative deleted;
      deleted.cost = Add(alt.cost, delete_cost);
      deleted.kept_leaves = alt.kept_leaves;
      deleted.forest = CloneForest(alt.forest);
      alternatives.push_back(std::move(deleted));
    }
  }
  if (alternatives.size() > max_variants) {
    return Status::OutOfRange("closure exceeds variant limit");
  }
  *out = std::move(alternatives);
  return Status::OK();
}

Result<std::vector<Variant>> EnumerateVariants(const query::Query& query,
                                               const CostModel& model,
                                               const ClosureOptions& options) {
  ASSIGN_OR_RETURN(
      std::vector<query::ConjunctiveQuery> separated,
      query::SeparatedRepresentation(query, options.max_conjunctive));
  std::vector<Variant> variants;
  for (const auto& conjunctive : separated) {
    std::vector<Alternative> alternatives;
    RETURN_IF_ERROR(Enumerate(*conjunctive.root, model, /*is_root=*/true,
                              options.max_variants, &alternatives));
    for (auto& alt : alternatives) {
      APPROXQL_CHECK(alt.forest.size() == 1);
      Variant variant;
      variant.cost = alt.cost;
      variant.kept_leaves = alt.kept_leaves;
      variant.root = std::move(alt.forest.front());
      variants.push_back(std::move(variant));
      if (variants.size() > options.max_variants) {
        return Status::OutOfRange("closure exceeds variant limit");
      }
    }
  }
  return variants;
}

/// Minimal cost of embedding query subtree `q` with its root mapped to
/// data node `v` (labels/types must already match). Children embed at
/// proper descendants, priced by path distance (= implicit insertions).
Cost EmbedCost(const ConjunctiveNode& q, NodeId v, const DataTree& tree) {
  Cost total = 0;
  for (const auto& child : q.children) {
    Cost best = kInfinite;
    for (NodeId w = v + 1; w <= tree.node(v).bound; ++w) {
      const doc::DataNode& n = tree.node(w);
      if (n.type != child->type || tree.label(w) != child->label) continue;
      Cost sub = EmbedCost(*child, w, tree);
      if (IsFinite(sub)) {
        best = std::min(best, Add(tree.Distance(v, w), sub));
      }
    }
    if (!IsFinite(best)) return kInfinite;
    total = Add(total, best);
  }
  return total;
}

}  // namespace

Result<std::vector<RootCost>> ClosureBestN(const query::Query& query,
                                           const CostModel& model,
                                           const DataTree& tree, size_t n,
                                           const ClosureOptions& options) {
  ASSIGN_OR_RETURN(std::vector<Variant> variants,
                   EnumerateVariants(query, model, options));
  bool query_has_leaves = false;
  {
    // The at-least-one-leaf rule is vacuous for a bare root query.
    const query::AstNode& root = *query.root;
    query_has_leaves = !root.children.empty();
  }
  std::map<NodeId, Cost> best_per_root;
  for (const Variant& variant : variants) {
    if (query_has_leaves && variant.kept_leaves == 0) continue;
    // Try every data node with a matching root label (skip super-root).
    for (NodeId v = 1; v < tree.size(); ++v) {
      const doc::DataNode& node = tree.node(v);
      if (node.type != variant.root->type ||
          tree.label(v) != variant.root->label) {
        continue;
      }
      Cost embed = EmbedCost(*variant.root, v, tree);
      if (!IsFinite(embed)) continue;
      Cost total = Add(variant.cost, embed);
      auto [it, created] = best_per_root.try_emplace(v, total);
      if (!created) it->second = std::min(it->second, total);
    }
  }
  std::vector<RootCost> results;
  results.reserve(best_per_root.size());
  for (const auto& [root, cost] : best_per_root) {
    results.push_back({root, cost});
  }
  std::sort(results.begin(), results.end(),
            [](const RootCost& a, const RootCost& b) {
              return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
            });
  if (results.size() > n) results.resize(n);
  return results;
}

Result<size_t> ClosureVariantCount(const query::Query& query,
                                   const CostModel& model,
                                   const ClosureOptions& options) {
  ASSIGN_OR_RETURN(std::vector<Variant> variants,
                   EnumerateVariants(query, model, options));
  return variants.size();
}

}  // namespace approxql::baseline
