#include "cluster/cluster_config.h"

#include <string>

#include "service/result_cache.h"
#include "util/crc32.h"

namespace approxql::cluster {

uint32_t ClusterFingerprint(const cost::CostModel& model, size_t num_shards) {
  std::string canonical = "cluster;model=";
  canonical += std::to_string(service::FingerprintCostModel(model));
  canonical += ";shards=";
  canonical += std::to_string(num_shards);
  canonical += ";";
  return util::Crc32c(canonical);
}

}  // namespace approxql::cluster
