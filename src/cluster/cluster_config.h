// Static identity of a live-mutating cluster.
//
// A mutable shard server's LayoutFingerprint is epoch-salted — it moves
// with every publish — so the per-answer stamp check that pins a static
// deployment (router manifest fingerprint == server fingerprint) would
// reject every reply from a live cluster. Live clusters therefore stamp
// a *configuration* fingerprint instead: a CRC over the shared cost
// model and the shard count, computed independently by the router and
// by every shard server from their own flags. It validates that the two
// sides agree on what the cluster *is* (same model tables, same width);
// the ingest epoch — carried per answer and validated against the
// manifest view — is what pins the moving document layout. See
// DESIGN.md §14.
#ifndef APPROXQL_CLUSTER_CLUSTER_CONFIG_H_
#define APPROXQL_CLUSTER_CLUSTER_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "cost/cost_model.h"

namespace approxql::cluster {

/// Wiring for a router serving a live cluster: the shared cost model
/// and how many shard servers the id space is scattered over.
struct ClusterConfig {
  cost::CostModel model;
  size_t num_shards = 0;
};

/// The static stamp both sides derive independently: CRC-32C over a
/// cluster tag, the canonical cost-model fingerprint, and the shard
/// count. Deliberately ignores document state.
uint32_t ClusterFingerprint(const cost::CostModel& model, size_t num_shards);

}  // namespace approxql::cluster

#endif  // APPROXQL_CLUSTER_CLUSTER_CONFIG_H_
