#include "cluster/manifest_view.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace approxql::cluster {

using util::Result;
using util::Status;

ManifestView::ManifestView(size_t num_shards, size_t history_depth)
    : num_shards_(num_shards), history_depth_(history_depth) {
  shards_.resize(num_shards);
}

void ManifestView::FileHistory(PerShard* shard, ShardSlice slice) {
  for (const ShardSlice& held : shard->history) {
    if (held.epoch == slice.epoch) return;
  }
  shard->history.push_front(std::move(slice));
  std::sort(shard->history.begin(), shard->history.end(),
            [](const ShardSlice& a, const ShardSlice& b) {
              return a.epoch > b.epoch;
            });
  while (shard->history.size() > history_depth_) {
    shard->history.pop_back();
  }
}

void ManifestView::InstallSlice(uint32_t shard, uint64_t epoch,
                                std::vector<shard::DocSpan> spans) {
  APPROXQL_CHECK(shard < num_shards_) << "slice for unknown shard " << shard;
  util::MutexLock lock(&mu_);
  PerShard& state = shards_[shard];
  if (!state.known) {
    state.known = true;
    state.current = {epoch, std::move(spans)};
    return;
  }
  if (epoch > state.current.epoch) {
    FileHistory(&state, std::move(state.current));
    state.current = {epoch, std::move(spans)};
    return;
  }
  if (epoch == state.current.epoch) return;
  // A fetch that raced a publish: still a valid description of that
  // (older) epoch, so keep it translatable — but never regress current.
  FileHistory(&state, {epoch, std::move(spans)});
}

bool ManifestView::ApplyDelta(const net::WireManifestDelta& delta) {
  if (delta.shard_index >= num_shards_) return false;
  util::MutexLock lock(&mu_);
  PerShard& state = shards_[delta.shard_index];
  if (!state.known) return false;  // no base to apply against
  if (delta.epoch <= state.current.epoch) return true;  // stale duplicate
  if (delta.prev_epoch != state.current.epoch) return false;  // gap

  ShardSlice next;
  next.epoch = delta.epoch;
  next.spans = state.current.spans;
  if (delta.op == net::WireManifestDelta::Op::kAdd) {
    // Spans stay sorted: a new document always appends past the end of
    // both id spaces on its shard.
    if (!next.spans.empty()) {
      const shard::DocSpan& last = next.spans.back();
      if (delta.span.local_start < last.local_start + last.length ||
          delta.span.global_start < last.global_start + last.length) {
        return false;  // inconsistent with the held slice; force a fetch
      }
    }
    next.spans.push_back(delta.span);
  } else {
    auto it = std::find_if(next.spans.begin(), next.spans.end(),
                           [&](const shard::DocSpan& span) {
                             return span.global_start ==
                                    delta.span.global_start;
                           });
    if (it == next.spans.end() || it->length != delta.span.length) {
      return false;  // the held slice never had this document
    }
    const uint32_t removed_length = it->length;
    it = next.spans.erase(it);
    // The shard rebuilds its tree compactly after a removal: every
    // later document's local ids shift down by the removed length.
    for (; it != next.spans.end(); ++it) {
      it->local_start -= removed_length;
    }
  }
  FileHistory(&state, std::move(state.current));
  state.current = std::move(next);
  return true;
}

uint64_t ManifestView::epoch(uint32_t shard) const {
  util::MutexLock lock(&mu_);
  return shard < num_shards_ ? shards_[shard].current.epoch : 0;
}

bool ManifestView::known(uint32_t shard) const {
  util::MutexLock lock(&mu_);
  return shard < num_shards_ && shards_[shard].known;
}

Result<doc::NodeId> ManifestView::ToGlobal(uint32_t shard, uint64_t epoch,
                                           doc::NodeId local) const {
  if (shard >= num_shards_) {
    return Status::InvalidArgument("unknown shard " + std::to_string(shard));
  }
  util::MutexLock lock(&mu_);
  const PerShard& state = shards_[shard];
  const ShardSlice* slice = nullptr;
  if (state.known && state.current.epoch == epoch) {
    slice = &state.current;
  } else {
    for (const ShardSlice& held : state.history) {
      if (held.epoch == epoch) {
        slice = &held;
        break;
      }
    }
  }
  if (slice == nullptr) {
    // Unavailable = retryable: the caller fetches the missing slice and
    // retranslates, unlike InvalidArgument below (a real inconsistency).
    return Status::Unavailable(
        "no manifest slice for shard " + std::to_string(shard) + " at epoch " +
        std::to_string(epoch) + " (view at " +
        std::to_string(state.current.epoch) + ")");
  }
  if (local == 0) return doc::NodeId{0};  // shard super-root -> global
  auto it = std::upper_bound(slice->spans.begin(), slice->spans.end(), local,
                             [](doc::NodeId value, const shard::DocSpan& span) {
                               return value < span.local_start;
                             });
  if (it == slice->spans.begin()) {
    return Status::InvalidArgument("local id " + std::to_string(local) +
                                   " precedes every span");
  }
  const shard::DocSpan& span = *(it - 1);
  if (local >= span.local_start + span.length) {
    return Status::InvalidArgument("local id " + std::to_string(local) +
                                   " outside every span at epoch " +
                                   std::to_string(epoch));
  }
  return span.global_start + (local - span.local_start);
}

bool ManifestView::FindDocument(doc::NodeId global_root, uint32_t* shard_out,
                                shard::DocSpan* span_out) const {
  util::MutexLock lock(&mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const PerShard& state = shards_[i];
    if (!state.known) continue;
    auto it = std::lower_bound(
        state.current.spans.begin(), state.current.spans.end(), global_root,
        [](const shard::DocSpan& span, doc::NodeId value) {
          return span.global_start < value;
        });
    if (it != state.current.spans.end() && it->global_start == global_root) {
      *shard_out = static_cast<uint32_t>(i);
      *span_out = *it;
      return true;
    }
  }
  return false;
}

doc::NodeId ManifestView::DocRootOf(doc::NodeId global) const {
  if (global == 0) return 0;
  util::MutexLock lock(&mu_);
  for (const PerShard& state : shards_) {
    if (!state.known) continue;
    auto it = std::upper_bound(
        state.current.spans.begin(), state.current.spans.end(), global,
        [](doc::NodeId value, const shard::DocSpan& span) {
          return value < span.global_start;
        });
    if (it == state.current.spans.begin()) continue;
    const shard::DocSpan& span = *(it - 1);
    if (global < span.global_start + span.length) return span.global_start;
  }
  return 0;
}

doc::NodeId ManifestView::NextGlobal() const {
  util::MutexLock lock(&mu_);
  doc::NodeId next = 1;  // 0 is the super-root
  for (const PerShard& state : shards_) {
    if (!state.known || state.current.spans.empty()) continue;
    const shard::DocSpan& last = state.current.spans.back();
    next = std::max(next, last.global_start + last.length);
  }
  return next;
}

size_t ManifestView::document_count() const {
  util::MutexLock lock(&mu_);
  size_t count = 0;
  for (const PerShard& state : shards_) {
    count += state.current.spans.size();
  }
  return count;
}

ShardSlice ManifestView::CurrentSlice(uint32_t shard) const {
  util::MutexLock lock(&mu_);
  APPROXQL_CHECK(shard < num_shards_);
  return shards_[shard].current;
}

}  // namespace approxql::cluster
