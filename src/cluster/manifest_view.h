// The router side of the cluster metadata subsystem: a composite,
// epoch-versioned view of every shard server's manifest slice.
//
// Each shard server answers queries from immutable snapshot generations
// and stamps every answer with the generation's ingest epoch (the
// shard's durable WAL sequence number — see DESIGN.md §14). An answer's
// shard-local preorder ids are only meaningful against the DocSpan
// table of *exactly* that epoch: a removal rebuilds the shard's tree
// and renumbers every document after the hole, so translating local ids
// through any other epoch's spans would silently map answers onto the
// wrong documents. The view therefore keys slices by (shard, epoch),
// keeps a bounded history of recent epochs per shard (so answers raced
// by a concurrent publish still translate without a refetch), and
// refuses — by returning a typed error, never a guess — to translate
// through a mismatched slice.
//
// Slices advance two ways: full kManifestSlice installs (bootstrap,
// gap recovery) and incremental kManifestDelta pushes. A delta applies
// only when the view sits exactly at its prev_epoch; anything else
// reports a gap and the caller falls back to a full fetch. Stale
// installs and duplicate/reordered deltas are ignored — the current
// slice never moves backward.
#ifndef APPROXQL_CLUSTER_MANIFEST_VIEW_H_
#define APPROXQL_CLUSTER_MANIFEST_VIEW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "doc/data_tree.h"
#include "net/wire.h"
#include "shard/sharded_database.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace approxql::cluster {

/// One shard server's manifest slice at one epoch.
struct ShardSlice {
  uint64_t epoch = 0;
  std::vector<shard::DocSpan> spans;
};

class ManifestView {
 public:
  /// `history_depth` bounds how many superseded epochs per shard stay
  /// translatable (answers computed just before a publish land with the
  /// previous epoch; under sustained ingest several publishes can race
  /// one scatter round-trip).
  explicit ManifestView(size_t num_shards, size_t history_depth = 32);

  ManifestView(const ManifestView&) = delete;
  ManifestView& operator=(const ManifestView&) = delete;

  size_t num_shards() const { return num_shards_; }

  /// Installs a full slice (a kManifestSlice reply). Never regresses:
  /// a slice older than the current one — a fetch that raced a publish
  /// — is filed into history only, so late replies cannot roll the
  /// view back.
  void InstallSlice(uint32_t shard, uint64_t epoch,
                    std::vector<shard::DocSpan> spans);

  /// Applies one push delta. Returns false on a gap (the view is not
  /// exactly at delta.prev_epoch and the delta is not a stale
  /// duplicate) — the caller must re-fetch the full slice. Stale
  /// duplicates (epoch <= current) return true and change nothing.
  bool ApplyDelta(const net::WireManifestDelta& delta);

  /// Current epoch of a shard's slice; 0 before the first install.
  uint64_t epoch(uint32_t shard) const;

  /// True once the shard has any installed slice (an empty corpus at
  /// epoch 0 counts — "fetched and empty" is not "unknown").
  bool known(uint32_t shard) const;

  /// Translates a shard-local id to the global id space through the
  /// slice of exactly `epoch`. Unavailable (retryable: fetch the slice
  /// and retranslate) when no slice of that epoch is held (current or
  /// history); InvalidArgument when the local id lies outside every
  /// span of that slice.
  util::Result<doc::NodeId> ToGlobal(uint32_t shard, uint64_t epoch,
                                     doc::NodeId local) const;

  /// Locates the document whose root is `global_root` in the current
  /// slices (remove routing). False if no shard holds it.
  bool FindDocument(doc::NodeId global_root, uint32_t* shard_out,
                    shard::DocSpan* span_out) const;

  /// Root of the document containing `global` in the current slices
  /// (the wire `doc` field); 0 for the super-root or an id no current
  /// span covers (a hole, or raced past a remove).
  doc::NodeId DocRootOf(doc::NodeId global) const;

  /// First global id past every document in the current slices (>= 1;
  /// id 0 is the super-root). The router's id-assignment bootstrap.
  doc::NodeId NextGlobal() const;

  /// Documents across all current slices.
  size_t document_count() const;

  /// Snapshot of one shard's current slice.
  ShardSlice CurrentSlice(uint32_t shard) const;

 private:
  struct PerShard {
    bool known = false;
    ShardSlice current;
    /// Superseded epochs, newest first; bounded by history_depth_.
    std::deque<ShardSlice> history;
  };

  /// Pushes `slice` into `shard`'s history (dropping the oldest past
  /// the depth bound) unless that epoch is already held.
  void FileHistory(PerShard* shard, ShardSlice slice) REQUIRES(mu_);

  const size_t num_shards_;
  const size_t history_depth_;
  mutable util::Mutex mu_;
  std::vector<PerShard> shards_ GUARDED_BY(mu_);
};

}  // namespace approxql::cluster

#endif  // APPROXQL_CLUSTER_MANIFEST_VIEW_H_
