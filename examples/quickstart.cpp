// Quickstart: build a database from XML strings, run an approximate
// query with both evaluation strategies, and materialize the results.
//
//   $ ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"

using approxql::NodeType;
using approxql::cost::CostModel;
using approxql::engine::Database;
using approxql::engine::ExecOptions;
using approxql::engine::Strategy;

int main() {
  // 1. Some XML documents (a tiny CD catalog).
  std::vector<std::string> documents = {
      "<catalog><cd><title>Piano Concerto No. 2</title>"
      "<composer>Rachmaninov</composer></cd></catalog>",
      "<catalog><cd><title>Cello Sonata</title>"
      "<composer>Chopin</composer></cd></catalog>",
      "<catalog><mc><title>Piano Sonata</title>"
      "<performer>Ashkenazy</performer></mc></catalog>",
  };

  // 2. A cost model: which query transformations are allowed, and what
  //    they cost. Lower total cost = better result.
  CostModel model;
  model.SetRenameCost(NodeType::kStruct, "cd", "mc", 4);
  model.SetRenameCost(NodeType::kText, "concerto", "sonata", 3);
  model.SetDeleteCost(NodeType::kText, "piano", 8);

  auto db = Database::BuildFromXml(documents, std::move(model));
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 3. Ask for CDs with a piano concerto. Only the first document
  //    matches exactly; the others are approximate results, ranked by
  //    transformation cost.
  const char* query = R"(cd[title["piano" and "concerto"]])";
  for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
    ExecOptions options;
    options.strategy = strategy;
    options.n = 10;
    auto answers = db->Execute(query, options);
    if (!answers.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answers.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s evaluation of %s ---\n",
                strategy == Strategy::kDirect ? "direct" : "schema-driven",
                query);
    for (const auto& answer : *answers) {
      std::printf("cost %2lld  %s\n", static_cast<long long>(answer.cost),
                  db->MaterializeXml(answer.root).c_str());
    }
  }
  return 0;
}
