// The paper's running example (Sections 1 and 6): a catalog of sound
// storage media, the cost table of Section 6, and the query
//
//   cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]
//
// The output shows how the engine ranks exact matches, track-level
// matches (insertions), renamed media (cd -> mc/dvd), renamed or deleted
// selectors — the behaviours the introduction motivates.
//
//   $ ./music_catalog
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"

using approxql::cost::CostModel;
using approxql::engine::Database;
using approxql::engine::ExecOptions;
using approxql::engine::Strategy;

namespace {

// A catalog exercising every transformation the Section 6 table prices.
const std::vector<std::string> kCatalog = {
    // Exact match for the query.
    "<catalog><cd>"
    "<track><title>Piano Concerto No. 2</title></track>"
    "<composer>Rachmaninov</composer>"
    "</cd></catalog>",
    // Title at cd level (track deleted), composer present.
    "<catalog><cd>"
    "<title>Piano Concerto No. 3</title>"
    "<composer>Rachmaninov</composer>"
    "</cd></catalog>",
    // Rachmaninov as performer, not composer.
    "<catalog><cd>"
    "<track><title>Piano Concerto in A</title></track>"
    "<performer>Rachmaninov</performer>"
    "</cd></catalog>",
    // Piano sonata instead of concerto.
    "<catalog><cd>"
    "<track><title>Piano Sonata</title></track>"
    "<composer>Rachmaninov</composer>"
    "</cd></catalog>",
    // An MC instead of a CD.
    "<catalog><mc>"
    "<track><title>Piano Concerto No. 1</title></track>"
    "<composer>Rachmaninov</composer>"
    "</mc></catalog>",
    // Category instead of title.
    "<catalog><cd>"
    "<track><category>Piano Concerto</category></track>"
    "<composer>Rachmaninov</composer>"
    "</cd></catalog>",
    // Something else entirely.
    "<catalog><cd>"
    "<track><title>Goldberg Variations</title></track>"
    "<composer>Bach</composer>"
    "</cd></catalog>",
};

// The cost table of Section 6, verbatim.
constexpr const char* kCostConfig = R"(
# insertion costs
insert struct category 4
insert struct cd 2
insert struct composer 5
insert struct performer 5
insert struct title 3
# deletion costs
delete struct composer 7
delete text concerto 6
delete text piano 8
delete struct title 5
delete struct track 3
# renaming costs
rename struct cd dvd 6
rename struct cd mc 4
rename struct composer performer 4
rename text concerto sonata 3
rename struct title category 4
)";

}  // namespace

int main() {
  auto model = CostModel::ParseConfig(kCostConfig);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto db = Database::BuildFromXml(kCatalog, std::move(model).value());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  auto stats = db->GetStats();
  std::printf("catalog: %zu nodes (%zu elements, %zu words), schema %zu\n\n",
              stats.nodes, stats.struct_nodes, stats.text_nodes,
              stats.schema_nodes);

  const char* query =
      R"(cd[track[title["piano" and "concerto"]] and )"
      R"(composer["rachmaninov"]])";
  std::printf("query: %s\n\n", query);

  ExecOptions options;
  options.strategy = Strategy::kSchema;
  options.n = SIZE_MAX;
  auto answers = db->Execute(query, options);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu results, best first:\n", answers->size());
  for (const auto& answer : *answers) {
    std::printf("\ncost %lld:\n%s\n", static_cast<long long>(answer.cost),
                db->MaterializeXml(answer.root, /*pretty=*/true).c_str());
  }
  return 0;
}
