// Closed-loop load driver for the concurrent query service: loads a
// database, replays a workload file (one approXQL query per line)
// across N client threads, and prints per-pass throughput, latency
// percentiles and the service's metrics snapshot.
//
//   approxql_serve --xml catalog.xml --workload queries.txt
//                  [--clients 8] [--threads 8] [--queue 128]
//                  [--cache 256] [--passes 2] [--repeat 1]
//                  [--n 10] [--strategy schema|direct|scan]
//                  [--deadline-ms 0]
//   approxql_serve --load db.apx --workload queries.txt
//   approxql_serve --gen-data 20000 --gen 250 --repeat 4   # self-contained:
//     synthetic collection + workload drawn from the paper's query patterns
//
// Each client thread is a synchronous caller: it submits one request,
// waits for the answer, then takes the next query (so concurrency ==
// --clients). With the default --passes 2 the second pass replays the
// identical workload against a warm result cache — the per-pass report
// makes the cold/warm speedup visible directly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/histogram.h"
#include "util/timer.h"

using approxql::engine::Database;
using approxql::engine::Strategy;
using approxql::service::QueryRequest;
using approxql::service::QueryResponse;
using approxql::service::QueryService;
using approxql::service::ServiceOptions;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: approxql_serve (--xml FILE)... --workload FILE [options]\n"
      "       approxql_serve --load DB --workload FILE [options]\n"
      "       approxql_serve --gen-data ELEMS --gen QUERIES [options]\n"
      "  --clients N      concurrent client threads (default 8)\n"
      "  --threads N      service worker threads (default 8)\n"
      "  --queue N        admission queue capacity (default 128)\n"
      "  --parallelism N  intra-query fan-out per request, 1 = serial "
      "(default 1)\n"
      "  --cache N        result-cache entries, 0 = off (default 256)\n"
      "  --passes N       workload replays; pass 2+ hits a warm cache "
      "(default 2)\n"
      "  --repeat N       repetitions of the workload per pass (default 1)\n"
      "  --n N            best-n bound per query (default 10)\n"
      "  --strategy S     schema|direct|scan (default schema)\n"
      "  --deadline-ms N  per-request deadline, 0 = none (default 0)\n"
      "  --gen-data N     build a synthetic collection of ~N elements\n"
      "  --gen N          generate an N-query workload from the paper's\n"
      "                   patterns instead of --workload\n"
      "  --seed N         generator seed (default 42)\n");
  return 2;
}

struct PassResult {
  size_t requests = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t truncated = 0;
  size_t failed = 0;
  size_t cache_hits = 0;
  double wall_seconds = 0;
  approxql::util::Histogram latency_us;
};

PassResult RunPass(QueryService& service,
                   const std::vector<std::string>& workload, size_t clients,
                   size_t repeat, const approxql::engine::ExecOptions& exec,
                   int deadline_ms) {
  const size_t total = workload.size() * repeat;
  std::atomic<size_t> next{0};
  std::vector<approxql::util::Histogram> latencies(clients);
  std::vector<PassResult> partials(clients);
  approxql::util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PassResult& mine = partials[c];
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        QueryRequest request;
        request.query_text = workload[i % workload.size()];
        request.exec = exec;
        request.deadline = std::chrono::milliseconds(deadline_ms);
        QueryResponse response = service.Submit(std::move(request)).get();
        ++mine.requests;
        latencies[c].Record(
            static_cast<uint64_t>(response.total_micros));
        if (response.status.ok()) {
          ++mine.completed;
          if (response.truncated) ++mine.truncated;
          if (response.cache_hit) ++mine.cache_hits;
        } else if (response.status.IsResourceExhausted()) {
          ++mine.rejected;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PassResult result;
  result.wall_seconds = timer.ElapsedSeconds();
  for (size_t c = 0; c < clients; ++c) {
    result.requests += partials[c].requests;
    result.completed += partials[c].completed;
    result.rejected += partials[c].rejected;
    result.truncated += partials[c].truncated;
    result.failed += partials[c].failed;
    result.cache_hits += partials[c].cache_hits;
    result.latency_us.Merge(latencies[c]);
  }
  return result;
}

void PrintPass(size_t pass, const PassResult& r) {
  std::printf(
      "pass %zu: %zu requests in %.3f s  (%.0f q/s)\n"
      "  completed %zu  cache-hit %zu  truncated %zu  rejected %zu  "
      "failed %zu\n"
      "  latency %s\n",
      pass, r.requests, r.wall_seconds,
      r.wall_seconds > 0 ? static_cast<double>(r.requests) / r.wall_seconds
                         : 0.0,
      r.completed, r.cache_hits, r.truncated, r.rejected, r.failed,
      r.latency_us.Summary("us").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> xml_paths;
  std::string load_path, workload_path;
  size_t clients = 8, passes = 2, repeat = 1;
  size_t gen_data = 0, gen_queries = 0, seed = 42;
  int deadline_ms = 0;
  ServiceOptions service_options;
  service_options.num_threads = 8;
  approxql::engine::ExecOptions exec;
  exec.strategy = Strategy::kSchema;
  exec.n = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_num = [&](size_t* out) {
      const char* v = next();
      if (v == nullptr) return false;
      *out = std::strtoull(v, nullptr, 10);
      return true;
    };
    if (arg == "--xml") {
      const char* v = next();
      if (v == nullptr) return Usage();
      xml_paths.push_back(v);
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage();
      load_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return Usage();
      workload_path = v;
    } else if (arg == "--clients") {
      if (!next_num(&clients) || clients == 0) return Usage();
    } else if (arg == "--threads") {
      if (!next_num(&service_options.num_threads)) return Usage();
    } else if (arg == "--queue") {
      if (!next_num(&service_options.queue_capacity)) return Usage();
    } else if (arg == "--parallelism") {
      if (!next_num(&service_options.parallelism) ||
          service_options.parallelism == 0) {
        return Usage();
      }
    } else if (arg == "--cache") {
      if (!next_num(&service_options.cache_capacity)) return Usage();
    } else if (arg == "--passes") {
      if (!next_num(&passes) || passes == 0) return Usage();
    } else if (arg == "--repeat") {
      if (!next_num(&repeat) || repeat == 0) return Usage();
    } else if (arg == "--n") {
      if (!next_num(&exec.n)) return Usage();
    } else if (arg == "--deadline-ms") {
      size_t ms;
      if (!next_num(&ms)) return Usage();
      deadline_ms = static_cast<int>(ms);
    } else if (arg == "--gen-data") {
      if (!next_num(&gen_data) || gen_data == 0) return Usage();
    } else if (arg == "--gen") {
      if (!next_num(&gen_queries) || gen_queries == 0) return Usage();
    } else if (arg == "--seed") {
      if (!next_num(&seed)) return Usage();
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "schema") == 0) {
        exec.strategy = Strategy::kSchema;
      } else if (std::strcmp(v, "direct") == 0) {
        exec.strategy = Strategy::kDirect;
      } else if (std::strcmp(v, "scan") == 0) {
        exec.strategy = Strategy::kFullScan;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (workload_path.empty() && gen_queries == 0) return Usage();

  std::unique_ptr<Database> db;
  if (!load_path.empty()) {
    auto loaded = Database::Load(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<Database>(std::move(loaded).value());
  } else if (!xml_paths.empty()) {
    auto built = Database::BuildFromFiles(xml_paths, approxql::cost::CostModel());
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<Database>(std::move(built).value());
  } else if (gen_data > 0) {
    approxql::gen::XmlGenOptions gen_options;
    gen_options.seed = seed;
    gen_options.total_elements = gen_data;
    gen_options.vocabulary = std::max<size_t>(1000, gen_data / 10);
    approxql::gen::XmlGenerator generator(gen_options);
    approxql::cost::CostModel model;
    auto tree = generator.GenerateTree(model);
    if (!tree.ok()) {
      std::fprintf(stderr, "gen: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    auto built = Database::FromDataTree(std::move(tree).value(), model);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<Database>(std::move(built).value());
  } else {
    return Usage();
  }

  std::vector<std::string> workload_queries;
  if (!workload_path.empty()) {
    auto workload = approxql::service::LoadWorkloadFile(workload_path);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    workload_queries = std::move(workload).value();
  } else {
    // Instantiate the paper's three benchmark patterns round-robin.
    approxql::gen::QueryGenOptions gen_options;
    gen_options.seed = seed;
    approxql::gen::QueryGenerator generator(*db, gen_options);
    constexpr std::string_view kPatterns[] = {
        approxql::gen::kPattern1, approxql::gen::kPattern2,
        approxql::gen::kPattern3};
    for (size_t i = 0; i < gen_queries; ++i) {
      auto generated = generator.Generate(kPatterns[i % 3]);
      if (!generated.ok()) {
        std::fprintf(stderr, "gen: %s\n",
                     generated.status().ToString().c_str());
        return 1;
      }
      workload_queries.push_back(std::move(generated->text));
    }
  }

  auto stats = db->GetStats();
  std::fprintf(stderr,
               "database: %zu nodes, %zu labels, schema %zu\n"
               "workload: %zu queries x %zu repeat x %zu passes, "
               "%zu clients, %zu workers\n",
               stats.nodes, stats.distinct_labels, stats.schema_nodes,
               workload_queries.size(), repeat, passes, clients,
               service_options.num_threads);

  QueryService service(*db, service_options);
  for (size_t pass = 1; pass <= passes; ++pass) {
    PassResult result = RunPass(service, workload_queries, clients, repeat,
                                exec, deadline_ms);
    PrintPass(pass, result);
  }

  std::printf("--- service metrics ---\n%s", service.DumpMetrics().c_str());
  return 0;
}
