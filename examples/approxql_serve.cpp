// Serving front end and load driver for the query service — three
// modes sharing one database/workload setup:
//
//   in-process replay (default): loads a database, replays a workload
//   file across N synchronous client threads against the in-process
//   QueryService, prints per-pass throughput/latency and metrics.
//
//   --listen PORT: serves the loaded database over TCP (net::Server,
//   binary wire protocol). SIGTERM/SIGINT trigger a graceful drain:
//   stop accepting, finish in-flight requests, flush, exit with the
//   metrics dump.
//
//   --connect HOST:PORT: the same closed-loop replay, but each client
//   thread drives its own net::Client connection — a wire-level load
//   generator. With --verify (and a locally built copy of the same
//   database) every wire answer list is compared against the in-process
//   path; --bench-json FILE records the per-pass report as JSON.
//
//   approxql_serve --xml catalog.xml --workload queries.txt
//                  [--clients 8] [--threads 8] [--queue 128]
//                  [--cache 256] [--passes 2] [--repeat 1]
//                  [--n 10] [--strategy schema|direct|scan]
//                  [--deadline-ms 0]
//   approxql_serve --load db.apx --workload queries.txt
//   approxql_serve --gen-data 20000 --gen 250 --repeat 4   # self-contained:
//     synthetic collection + workload drawn from the paper's query patterns
//   approxql_serve --gen-data 20000 --gen 250 --dump-workload q.txt
//                  --listen 7007                           # terminal 1
//   approxql_serve --connect 127.0.0.1:7007 --workload q.txt
//                  --clients 8                             # terminal 2
//
// Each client thread is a synchronous caller: it submits one request,
// waits for the answer, then takes the next query (so concurrency ==
// --clients). With the default --passes 2 the second pass replays the
// identical workload against a warm result cache — the per-pass report
// makes the cold/warm speedup visible directly.
#include <csignal>
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/cluster_config.h"
#include "dist/shard_router.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "ingest/mutable_corpus.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "shard/layout_manifest.h"
#include "shard/sharded_database.h"
#include "storage/kv_factory.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/timer.h"

#include "bench/bench_env.h"

using approxql::dist::RouterOptions;
using approxql::dist::ShardRouter;
using approxql::engine::Database;
using approxql::shard::ShardedDatabase;
using approxql::engine::Strategy;
using approxql::net::Client;
using approxql::net::ClientOptions;
using approxql::net::Server;
using approxql::net::ServerOptions;
using approxql::net::WireRequest;
using approxql::net::WireResponse;
using approxql::service::QueryRequest;
using approxql::service::QueryResponse;
using approxql::service::QueryService;
using approxql::service::ServiceOptions;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: approxql_serve (--xml FILE)... --workload FILE [options]\n"
      "       approxql_serve --load DB --workload FILE [options]\n"
      "       approxql_serve --gen-data ELEMS --gen QUERIES [options]\n"
      "       approxql_serve ... --listen PORT        serve over TCP\n"
      "       approxql_serve --connect HOST:PORT --workload FILE [options]\n"
      "  --clients N      concurrent client threads (default 8)\n"
      "  --threads N      service worker threads (default 8)\n"
      "  --queue N        admission queue capacity (default 128)\n"
      "  --parallelism N  intra-query fan-out per request, 1 = serial "
      "(default 1)\n"
      "  --cache N        result-cache entries, 0 = off (default 256)\n"
      "  --passes N       workload replays; pass 2+ hits a warm cache "
      "(default 2)\n"
      "  --repeat N       repetitions of the workload per pass (default 1)\n"
      "  --n N            best-n bound per query (default 10)\n"
      "  --strategy S     schema|direct|scan (default schema)\n"
      "  --deadline-ms N  per-request deadline, 0 = none (default 0)\n"
      "  --shards N       partition the corpus into N shards and serve\n"
      "                   with scatter-gather, 1 = single database "
      "(default 1)\n"
      "  --shard-server I serve only shard I of the --shards N partition\n"
      "                   over --listen PORT (answers kShardQuery/kPing)\n"
      "  --router H:P,... scatter-gather across remote shard servers, one\n"
      "                   endpoint per shard in index order; combine with\n"
      "                   --listen to front the cluster, or replay the\n"
      "                   workload through the router in process\n"
      "  --strict         (--router) any unreachable shard fails the query\n"
      "                   instead of degrading the answer\n"
      "  --save-manifest F  write the partition's layout manifest (spans,\n"
      "                   fingerprint, cost model — no trees or postings)\n"
      "                   to F after building the sharded corpus\n"
      "  --manifest F     (--router) load the layout from a manifest file\n"
      "                   instead of building the corpus; the router host\n"
      "                   then needs no --xml/--load/--gen-data at all\n"
      "  --expect-degraded  (--connect) exit 1 unless at least one response\n"
      "                   came back degraded (cluster smoke tests)\n"
      "  --bypass-cache   (--connect) ask the server to skip its result\n"
      "                   cache, forcing every request to the backend\n"
      "  --gen-data N     build a synthetic collection of ~N elements\n"
      "  --gen N          generate an N-query workload from the paper's\n"
      "                   patterns instead of --workload\n"
      "  --seed N         generator seed (default 42)\n"
      "  --listen PORT    serve the database on PORT until SIGTERM "
      "(graceful drain)\n"
      "  --connect H:P    replay over the wire against a running server\n"
      "  --dump-workload F  write the generated workload to F (one query "
      "per line)\n"
      "  --verify         (--connect) check wire answers against the\n"
      "                   in-process path; needs the same db flags as the "
      "server\n"
      "  --bench-json F   (--connect) append the per-pass wire report to F\n"
      "  --store S        mem|disk posting stores (default mem); disk needs\n"
      "                   --data-dir for the backing files\n"
      "  --data-dir D     directory for disk stores / the mutable corpus\n"
      "  --mutable        (--listen) serve a live-ingest corpus from\n"
      "                   --data-dir (recovering it if it exists): answers\n"
      "                   kIngest, acks only after WAL fsync + visibility;\n"
      "                   with --shard-server I --shards N the corpus is one\n"
      "                   cluster shard (single internal shard, cluster\n"
      "                   fingerprint from --seed/--shards, serves manifest\n"
      "                   slices + delta subscriptions)\n"
      "  --live           (--router) the endpoints are mutable cluster shard\n"
      "                   servers: the router syncs epoch-tagged manifest\n"
      "                   slices instead of loading a static layout, and\n"
      "                   Ingest assigns cluster-global document ids\n"
      "  --ingest-while-querying N  (--router --live, in process) driver:\n"
      "                   ingest N docs through the router while querying it\n"
      "                   concurrently; --verify checks quiesced rounds\n"
      "                   bit-for-bit against a BuildFromXml(acked) oracle\n"
      "                   (the driver must be the only writer, starting\n"
      "                   from an empty cluster)\n"
      "  --ingest N       (--connect) ingest driver: add N generated docs\n"
      "                   over the wire, interleaving workload queries if\n"
      "                   one was given; tolerates the server dying mid-\n"
      "                   stream (crash harness)\n"
      "  --acked-file F   (--ingest) write every acked document's XML to F\n"
      "                   (one per line) and any in-doubt document to\n"
      "                   F.indoubt — the durably-acked oracle inputs\n"
      "  --oracle-docs F  build the database from the XML lines of F (an\n"
      "                   --acked-file) instead of --xml/--load/--gen-data;\n"
      "                   with --verify this is the crash-recovery oracle\n");
  return 2;
}

struct PassResult {
  size_t requests = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t truncated = 0;
  size_t failed = 0;
  size_t cache_hits = 0;
  size_t degraded = 0;
  size_t transport_errors = 0;
  size_t mismatches = 0;
  double wall_seconds = 0;
  approxql::util::Histogram latency_us;
};

PassResult RunPass(QueryService& service,
                   const std::vector<std::string>& workload, size_t clients,
                   size_t repeat, const approxql::engine::ExecOptions& exec,
                   int deadline_ms) {
  const size_t total = workload.size() * repeat;
  std::atomic<size_t> next{0};
  std::vector<approxql::util::Histogram> latencies(clients);
  std::vector<PassResult> partials(clients);
  approxql::util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PassResult& mine = partials[c];
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        QueryRequest request;
        request.query_text = workload[i % workload.size()];
        request.exec = exec;
        request.deadline = std::chrono::milliseconds(deadline_ms);
        QueryResponse response = service.Submit(std::move(request)).get();
        ++mine.requests;
        latencies[c].Record(
            static_cast<uint64_t>(response.total_micros));
        if (response.status.ok()) {
          ++mine.completed;
          if (response.truncated) ++mine.truncated;
          if (response.cache_hit) ++mine.cache_hits;
          if (response.degraded) ++mine.degraded;
        } else if (response.status.IsResourceExhausted()) {
          ++mine.rejected;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PassResult result;
  result.wall_seconds = timer.ElapsedSeconds();
  for (size_t c = 0; c < clients; ++c) {
    result.requests += partials[c].requests;
    result.completed += partials[c].completed;
    result.rejected += partials[c].rejected;
    result.truncated += partials[c].truncated;
    result.failed += partials[c].failed;
    result.cache_hits += partials[c].cache_hits;
    result.degraded += partials[c].degraded;
    result.latency_us.Merge(latencies[c]);
  }
  return result;
}

/// The wire flavor of RunPass: same closed loop, but each client thread
/// owns one TCP connection. `oracle` (optional) re-executes every query
/// in process and counts answer-list mismatches.
PassResult RunWirePass(const std::string& host, uint16_t port,
                       const std::vector<std::string>& workload,
                       size_t clients, size_t repeat,
                       const approxql::engine::ExecOptions& exec,
                       int deadline_ms, bool bypass_cache,
                       QueryService* oracle) {
  const size_t total = workload.size() * repeat;
  std::atomic<size_t> next{0};
  std::vector<approxql::util::Histogram> latencies(clients);
  std::vector<PassResult> partials(clients);
  approxql::util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PassResult& mine = partials[c];
      ClientOptions client_options;
      client_options.host = host;
      client_options.port = port;
      Client client(client_options);
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        WireRequest request;
        request.query = workload[i % workload.size()];
        request.strategy = exec.strategy;
        request.n = exec.n;
        request.deadline_ms = deadline_ms;
        request.bypass_cache = bypass_cache;
        approxql::util::WallTimer call_timer;
        auto response = client.Call(request);
        latencies[c].Record(
            static_cast<uint64_t>(call_timer.ElapsedSeconds() * 1e6));
        ++mine.requests;
        if (response.ok()) {
          ++mine.completed;
          if (response->truncated) ++mine.truncated;
          if (response->cache_hit) ++mine.cache_hits;
          if (response->degraded) ++mine.degraded;
          // A degraded answer deliberately covers only the shards that
          // responded; comparing it against the full in-process result
          // would count the cluster's honesty as a mismatch.
          if (oracle != nullptr && !response->degraded) {
            QueryRequest check;
            check.query_text = request.query;
            check.exec = exec;
            QueryResponse expected = oracle->ExecuteNow(std::move(check));
            bool match = expected.status.ok() &&
                         expected.answers.size() == response->answers.size();
            if (match) {
              for (size_t k = 0; k < expected.answers.size(); ++k) {
                if (expected.answers[k].root != response->answers[k].root ||
                    expected.answers[k].cost != response->answers[k].cost) {
                  match = false;
                  break;
                }
              }
            }
            if (!match) ++mine.mismatches;
          }
        } else if (response.status().IsResourceExhausted()) {
          ++mine.rejected;
        } else if (response.status().IsDeadlineExceeded()) {
          ++mine.failed;
        } else if (response.status().code() ==
                       approxql::util::StatusCode::kIoError ||
                   response.status().IsUnavailable() ||
                   response.status().IsCorruption()) {
          ++mine.transport_errors;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PassResult result;
  result.wall_seconds = timer.ElapsedSeconds();
  for (size_t c = 0; c < clients; ++c) {
    result.requests += partials[c].requests;
    result.completed += partials[c].completed;
    result.rejected += partials[c].rejected;
    result.truncated += partials[c].truncated;
    result.failed += partials[c].failed;
    result.cache_hits += partials[c].cache_hits;
    result.degraded += partials[c].degraded;
    result.transport_errors += partials[c].transport_errors;
    result.mismatches += partials[c].mismatches;
    result.latency_us.Merge(latencies[c]);
  }
  return result;
}

void PrintPass(size_t pass, const PassResult& r, bool wire) {
  std::printf(
      "pass %zu: %zu requests in %.3f s  (%.0f q/s)\n"
      "  completed %zu  cache-hit %zu  truncated %zu  rejected %zu  "
      "failed %zu\n",
      pass, r.requests, r.wall_seconds,
      r.wall_seconds > 0 ? static_cast<double>(r.requests) / r.wall_seconds
                         : 0.0,
      r.completed, r.cache_hits, r.truncated, r.rejected, r.failed);
  if (wire) {
    std::printf("  degraded %zu  transport-errors %zu  verify-mismatches %zu\n",
                r.degraded, r.transport_errors, r.mismatches);
  } else if (r.degraded > 0) {
    std::printf("  degraded %zu\n", r.degraded);
  }
  std::printf("  latency %s\n", r.latency_us.Summary("us").c_str());
}

// The label space shared by the ingest driver's generated documents,
// the mutable server's cost model, and the crash-recovery oracle. All
// three derive the same model from --seed alone, so a verify client
// needs nothing from the server but the acked documents.
constexpr size_t kIngestElementNames = 50;
constexpr size_t kIngestVocabulary = 1000;

approxql::cost::CostModel IngestCostModel(size_t seed) {
  approxql::cost::CostModel model;
  approxql::util::Rng cost_rng(seed ^ 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < kIngestElementNames; ++i) {
    model.SetDeleteCost(
        approxql::NodeType::kStruct, "elem" + std::to_string(i),
        static_cast<approxql::cost::Cost>(cost_rng.UniformInt(2, 10)));
  }
  for (size_t i = 0; i < kIngestVocabulary; ++i) {
    model.SetDeleteCost(
        approxql::NodeType::kText, "term" + std::to_string(i),
        static_cast<approxql::cost::Cost>(cost_rng.UniformInt(2, 10)));
  }
  return model;
}

/// One small nested document over the elem*/term* label space,
/// deterministic given the rng state. Single line (no newlines), so an
/// acked file can hold one document per line.
std::string MakeIngestDoc(approxql::util::Rng& rng) {
  std::string xml;
  size_t budget = static_cast<size_t>(rng.UniformInt(3, 24));
  std::function<void(size_t)> emit = [&](size_t depth) {
    const std::string label =
        "elem" + std::to_string(rng.UniformInt(
                     0, static_cast<int64_t>(kIngestElementNames) - 1));
    xml += "<" + label + ">";
    while (budget > 0 && rng.UniformInt(0, 2) != 0) {
      --budget;
      if (depth >= 4 || rng.UniformInt(0, 1) == 0) {
        xml += "term" + std::to_string(rng.UniformInt(
                            0, static_cast<int64_t>(kIngestVocabulary) - 1));
        xml += " ";
      } else {
        emit(depth + 1);
      }
    }
    xml += "</" + label + ">";
  };
  emit(0);
  return xml;
}

Server* g_server = nullptr;

void HandleDrainSignal(int) {
  // Async-signal-safe: RequestDrain is an atomic store + eventfd write.
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> xml_paths;
  std::string load_path, workload_path, dump_workload_path, bench_json_path;
  std::string connect_spec, router_spec;
  std::string manifest_path, save_manifest_path;
  std::string data_dir, acked_file, oracle_docs_path;
  size_t ingest_count = 0, ingest_while_querying = 0;
  bool mutable_mode = false, live = false;
  approxql::storage::StoreKind store_kind = approxql::storage::StoreKind::kMem;
  size_t clients = 8, passes = 2, repeat = 1;
  size_t gen_data = 0, gen_queries = 0, seed = 42;
  size_t shards = 1;
  size_t shard_server = SIZE_MAX;  // SIZE_MAX = not a shard server
  size_t listen_port = 0;
  bool listen_mode = false, verify = false;
  bool strict = false, expect_degraded = false, bypass_cache = false;
  int deadline_ms = 0;
  ServiceOptions service_options;
  service_options.num_threads = 8;
  approxql::engine::ExecOptions exec;
  exec.strategy = Strategy::kSchema;
  exec.n = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_num = [&](size_t* out) {
      const char* v = next();
      if (v == nullptr) return false;
      *out = std::strtoull(v, nullptr, 10);
      return true;
    };
    if (arg == "--xml") {
      const char* v = next();
      if (v == nullptr) return Usage();
      xml_paths.push_back(v);
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage();
      load_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return Usage();
      workload_path = v;
    } else if (arg == "--clients") {
      if (!next_num(&clients) || clients == 0) return Usage();
    } else if (arg == "--threads") {
      if (!next_num(&service_options.num_threads)) return Usage();
    } else if (arg == "--queue") {
      if (!next_num(&service_options.queue_capacity)) return Usage();
    } else if (arg == "--parallelism") {
      if (!next_num(&service_options.parallelism) ||
          service_options.parallelism == 0) {
        return Usage();
      }
    } else if (arg == "--cache") {
      if (!next_num(&service_options.cache_capacity)) return Usage();
    } else if (arg == "--passes") {
      if (!next_num(&passes) || passes == 0) return Usage();
    } else if (arg == "--repeat") {
      if (!next_num(&repeat) || repeat == 0) return Usage();
    } else if (arg == "--n") {
      if (!next_num(&exec.n)) return Usage();
    } else if (arg == "--deadline-ms") {
      size_t ms;
      if (!next_num(&ms)) return Usage();
      deadline_ms = static_cast<int>(ms);
    } else if (arg == "--gen-data") {
      if (!next_num(&gen_data) || gen_data == 0) return Usage();
    } else if (arg == "--gen") {
      if (!next_num(&gen_queries) || gen_queries == 0) return Usage();
    } else if (arg == "--seed") {
      if (!next_num(&seed)) return Usage();
    } else if (arg == "--shards") {
      if (!next_num(&shards) || shards == 0) return Usage();
    } else if (arg == "--shard-server") {
      if (!next_num(&shard_server)) return Usage();
    } else if (arg == "--router") {
      const char* v = next();
      if (v == nullptr) return Usage();
      router_spec = v;
    } else if (arg == "--manifest") {
      const char* v = next();
      if (v == nullptr) return Usage();
      manifest_path = v;
    } else if (arg == "--save-manifest") {
      const char* v = next();
      if (v == nullptr) return Usage();
      save_manifest_path = v;
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return Usage();
      auto kind = approxql::storage::ParseStoreKind(v);
      if (!kind.ok()) return Usage();
      store_kind = *kind;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      data_dir = v;
    } else if (arg == "--mutable") {
      mutable_mode = true;
    } else if (arg == "--live") {
      live = true;
    } else if (arg == "--ingest-while-querying") {
      if (!next_num(&ingest_while_querying) || ingest_while_querying == 0) {
        return Usage();
      }
    } else if (arg == "--ingest") {
      if (!next_num(&ingest_count) || ingest_count == 0) return Usage();
    } else if (arg == "--acked-file") {
      const char* v = next();
      if (v == nullptr) return Usage();
      acked_file = v;
    } else if (arg == "--oracle-docs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      oracle_docs_path = v;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--bypass-cache") {
      bypass_cache = true;
    } else if (arg == "--expect-degraded") {
      expect_degraded = true;
    } else if (arg == "--listen") {
      if (!next_num(&listen_port) || listen_port > 65535) return Usage();
      listen_mode = true;
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage();
      connect_spec = v;
    } else if (arg == "--dump-workload") {
      const char* v = next();
      if (v == nullptr) return Usage();
      dump_workload_path = v;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--bench-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      bench_json_path = v;
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "schema") == 0) {
        exec.strategy = Strategy::kSchema;
      } else if (std::strcmp(v, "direct") == 0) {
        exec.strategy = Strategy::kDirect;
      } else if (std::strcmp(v, "scan") == 0) {
        exec.strategy = Strategy::kFullScan;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (listen_mode && !connect_spec.empty()) return Usage();
  const bool connect_mode = !connect_spec.empty();
  const bool router_mode = !router_spec.empty();
  const bool shard_server_mode = shard_server != SIZE_MAX;
  // A shard server fronts exactly one shard of the partition over TCP.
  if (shard_server_mode &&
      (!listen_mode || router_mode || connect_mode || shard_server >= shards)) {
    std::fprintf(stderr,
                 "--shard-server needs --listen, --shards N with "
                 "index < N, and no --router/--connect\n");
    return Usage();
  }
  if (router_mode && connect_mode) return Usage();
  // A manifest replaces the corpus for a router host, nothing else.
  const bool manifest_mode = !manifest_path.empty();
  if (manifest_mode &&
      (!router_mode || shard_server_mode || !save_manifest_path.empty())) {
    std::fprintf(stderr, "--manifest needs --router (and no corpus role)\n");
    return Usage();
  }
  // A mutable server owns its corpus directory; it is not a router or a
  // static-corpus role. Combined with --shard-server it becomes one
  // live-ingesting cluster shard.
  if (mutable_mode && (!listen_mode || router_mode || data_dir.empty())) {
    std::fprintf(stderr,
                 "--mutable needs --listen and --data-dir (and no "
                 "--router)\n");
    return Usage();
  }
  if (shard_server_mode && !mutable_mode && live) {
    std::fprintf(stderr, "--live describes a router, not a shard server\n");
    return Usage();
  }
  if (live && !router_mode) {
    std::fprintf(stderr, "--live needs --router\n");
    return Usage();
  }
  if (live && manifest_mode) {
    std::fprintf(stderr,
                 "--live syncs manifest slices from the shard servers; "
                 "--manifest would pin a static layout\n");
    return Usage();
  }
  if (ingest_while_querying > 0 &&
      (!live || listen_mode || connect_mode || ingest_count > 0)) {
    std::fprintf(stderr,
                 "--ingest-while-querying needs --router --live and runs in "
                 "process (no --listen/--connect/--ingest)\n");
    return Usage();
  }
  if (ingest_count > 0 && !connect_mode) {
    std::fprintf(stderr, "--ingest needs --connect\n");
    return Usage();
  }
  if (store_kind == approxql::storage::StoreKind::kDisk && data_dir.empty()) {
    std::fprintf(stderr, "--store disk needs --data-dir\n");
    return Usage();
  }
  // Serving needs no workload; replay modes need one (from a file or
  // the generator). A pure --save-manifest run, and the ingest driver,
  // need neither.
  if (!listen_mode && workload_path.empty() && gen_queries == 0 &&
      save_manifest_path.empty() && ingest_count == 0 &&
      ingest_while_querying == 0) {
    return Usage();
  }

  // Parse --router's comma-separated host:port endpoints, one per shard
  // in shard-index order.
  std::vector<RouterOptions::Endpoint> router_endpoints;
  if (router_mode) {
    std::string_view rest = router_spec;
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view item =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      size_t colon = item.rfind(':');
      if (colon == std::string_view::npos) return Usage();
      RouterOptions::Endpoint endpoint;
      endpoint.host = std::string(item.substr(0, colon));
      size_t port = std::strtoull(std::string(item.substr(colon + 1)).c_str(),
                                  nullptr, 10);
      if (endpoint.host.empty() || port == 0 || port > 65535) return Usage();
      endpoint.port = static_cast<uint16_t>(port);
      router_endpoints.push_back(std::move(endpoint));
    }
    if (router_endpoints.empty()) return Usage();
    if (shards == 1) shards = router_endpoints.size();
    if (shards != router_endpoints.size()) {
      std::fprintf(stderr,
                   "--router lists %zu endpoints but --shards is %zu\n",
                   router_endpoints.size(), shards);
      return 1;
    }
  }

  // A database is needed to serve, to replay in process, to generate a
  // workload, and to verify wire answers — a pure wire replay from a
  // workload file, and a router host fed by --manifest, are the modes
  // without.
  // The --live driver is fully self-contained: its oracle database is
  // built from the documents it ingests, and its workload is generated
  // from that oracle — no corpus flags at all.
  const bool driver_mode = ingest_while_querying > 0;
  const bool needs_db =
      (gen_queries > 0 && !driver_mode) || (verify && !driver_mode) ||
      !oracle_docs_path.empty() ||
      (!manifest_mode && !mutable_mode && !live &&
       (listen_mode || (!connect_mode && ingest_count == 0 && !driver_mode)));
  std::unique_ptr<Database> db;
  if (needs_db) {
    if (!oracle_docs_path.empty()) {
      // The crash-recovery oracle: exactly the documents the ingest
      // driver got acks for, in ack order. Concatenating them under one
      // super-root reproduces the server's global preorder ids (the
      // mutable corpus assigns global_start sequentially in ack order,
      // independent of shard placement), so roots and costs compare
      // bit-for-bit.
      std::ifstream in(oracle_docs_path);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", oracle_docs_path.c_str());
        return 1;
      }
      approxql::doc::DataTreeBuilder builder;
      std::string line;
      size_t docs = 0;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        auto added = builder.AddDocumentXml(line);
        if (!added.ok()) {
          std::fprintf(stderr, "oracle-docs line %zu: %s\n", docs + 1,
                       added.ToString().c_str());
          return 1;
        }
        ++docs;
      }
      const approxql::cost::CostModel model = IngestCostModel(seed);
      auto tree = std::move(builder).Build(model);
      if (!tree.ok()) {
        std::fprintf(stderr, "oracle-docs: %s\n",
                     tree.status().ToString().c_str());
        return 1;
      }
      auto built = Database::FromDataTree(std::move(tree).value(), model);
      if (!built.ok()) {
        std::fprintf(stderr, "oracle-docs: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      db = std::make_unique<Database>(std::move(built).value());
      std::fprintf(stderr, "oracle: %zu documents from %s\n", docs,
                   oracle_docs_path.c_str());
    } else if (!load_path.empty()) {
      auto loaded = Database::Load(load_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      db = std::make_unique<Database>(std::move(loaded).value());
    } else if (!xml_paths.empty()) {
      auto built =
          Database::BuildFromFiles(xml_paths, approxql::cost::CostModel());
      if (!built.ok()) {
        std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
        return 1;
      }
      db = std::make_unique<Database>(std::move(built).value());
    } else if (gen_data > 0) {
      approxql::gen::XmlGenOptions gen_options;
      gen_options.seed = seed;
      gen_options.total_elements = gen_data;
      gen_options.vocabulary = std::max<size_t>(1000, gen_data / 10);
      approxql::gen::XmlGenerator generator(gen_options);
      // Seeded approximate-match costs: generated workload queries
      // sample labels independently of structure, so exact embeddings
      // are rare — without delete costs in the *database's* model a
      // wire replay would verify mostly-empty answer lists (per-query
      // cost models cannot ride the wire). Baking a deterministic
      // delete-cost table derived from --seed into the build-time
      // model makes the workload return real ranked answers, and lets
      // a --verify client reconstruct the identical model.
      approxql::cost::CostModel model;
      approxql::util::Rng cost_rng(seed ^ 0x9E3779B97F4A7C15ULL);
      for (size_t i = 0; i < gen_options.element_names; ++i) {
        model.SetDeleteCost(
            approxql::NodeType::kStruct, "elem" + std::to_string(i),
            static_cast<approxql::cost::Cost>(cost_rng.UniformInt(2, 10)));
      }
      for (size_t i = 0; i < gen_options.vocabulary; ++i) {
        model.SetDeleteCost(
            approxql::NodeType::kText, "term" + std::to_string(i),
            static_cast<approxql::cost::Cost>(cost_rng.UniformInt(2, 10)));
      }
      auto tree = generator.GenerateTree(model);
      if (!tree.ok()) {
        std::fprintf(stderr, "gen: %s\n", tree.status().ToString().c_str());
        return 1;
      }
      auto built = Database::FromDataTree(std::move(tree).value(), model);
      if (!built.ok()) {
        std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
        return 1;
      }
      db = std::make_unique<Database>(std::move(built).value());
    } else {
      return Usage();
    }
  }

  std::vector<std::string> workload_queries;
  if (!workload_path.empty()) {
    auto workload = approxql::service::LoadWorkloadFile(workload_path);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    workload_queries = std::move(workload).value();
  } else if (gen_queries > 0) {
    // Instantiate the paper's three benchmark patterns round-robin.
    approxql::gen::QueryGenOptions gen_options;
    gen_options.seed = seed;
    approxql::gen::QueryGenerator generator(*db, gen_options);
    constexpr std::string_view kPatterns[] = {
        approxql::gen::kPattern1, approxql::gen::kPattern2,
        approxql::gen::kPattern3};
    for (size_t i = 0; i < gen_queries; ++i) {
      auto generated = generator.Generate(kPatterns[i % 3]);
      if (!generated.ok()) {
        std::fprintf(stderr, "gen: %s\n",
                     generated.status().ToString().c_str());
        return 1;
      }
      workload_queries.push_back(std::move(generated->text));
    }
  }
  if (!dump_workload_path.empty()) {
    std::ofstream out(dump_workload_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dump_workload_path.c_str());
      return 1;
    }
    out << "# generated by approxql_serve --gen " << workload_queries.size()
        << " --seed " << seed << "\n";
    for (const std::string& query : workload_queries) out << query << "\n";
    std::fprintf(stderr, "wrote %zu queries to %s\n", workload_queries.size(),
                 dump_workload_path.c_str());
  }

  if (db != nullptr) {
    auto stats = db->GetStats();
    std::fprintf(stderr, "database: %zu nodes, %zu labels, schema %zu\n",
                 stats.nodes, stats.distinct_labels, stats.schema_nodes);
  }

  // Sharded backend: partition the corpus the single database holds.
  // The single db stays alive — the query generator samples from it, and
  // --verify's oracle deliberately runs unsharded so a wire replay
  // cross-checks scatter-gather answers against the single-database path.
  std::unique_ptr<ShardedDatabase> sharded;
  if (db != nullptr && (shards > 1 || shard_server_mode || router_mode ||
                        !save_manifest_path.empty())) {
    // --store disk backs each shard's postings with a B+tree file under
    // --data-dir; the default keeps them in memory.
    approxql::storage::StoreFactory store_factory = nullptr;
    if (store_kind == approxql::storage::StoreKind::kDisk && !mutable_mode) {
      std::error_code ec;
      std::filesystem::create_directories(data_dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", data_dir.c_str(),
                     ec.message().c_str());
        return 1;
      }
      store_factory = [kind = store_kind, dir = data_dir](
                          const std::string& stem) {
        return approxql::storage::CreateKvStore(kind, dir + "/" + stem + ".kv",
                                                /*create_if_missing=*/true);
      };
    }
    auto partitioned = ShardedDatabase::Partition(
        db->tree(), db->cost_model(), shards, std::move(store_factory));
    if (!partitioned.ok()) {
      std::fprintf(stderr, "shard: %s\n",
                   partitioned.status().ToString().c_str());
      return 1;
    }
    sharded = std::make_unique<ShardedDatabase>(std::move(partitioned).value());
    auto sstats = sharded->GetStats();
    std::fprintf(stderr,
                 "sharded: %zu shards, %zu documents, %zu global classes "
                 "(layout fingerprint %08x)\n",
                 sstats.num_shards, sstats.documents, sstats.global_classes,
                 sharded->LayoutFingerprint());
  }
  if (!save_manifest_path.empty()) {
    if (sharded == nullptr) {
      std::fprintf(stderr, "--save-manifest needs a corpus to partition\n");
      return 1;
    }
    auto saved = approxql::shard::LayoutManifest::Of(*sharded).SaveTo(
        save_manifest_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save-manifest: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote layout manifest (%zu shards) to %s\n",
                 sharded->num_shards(), save_manifest_path.c_str());
    // Saving can be the run's only job.
    if (!listen_mode && workload_path.empty() && gen_queries == 0) return 0;
  }

  // A router host's layout can come from a manifest file instead of a
  // materialized corpus.
  std::unique_ptr<approxql::shard::LayoutManifest> manifest;
  if (manifest_mode) {
    auto loaded = approxql::shard::LayoutManifest::LoadFrom(manifest_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "manifest: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    manifest = std::make_unique<approxql::shard::LayoutManifest>(
        std::move(loaded).value());
    if (manifest->num_shards() != router_endpoints.size()) {
      std::fprintf(stderr,
                   "manifest describes %zu shards but --router lists %zu "
                   "endpoints\n",
                   manifest->num_shards(), router_endpoints.size());
      return 1;
    }
    std::fprintf(stderr,
                 "manifest: %zu shards (layout fingerprint %08x) from %s\n",
                 manifest->num_shards(), manifest->fingerprint(),
                 manifest_path.c_str());
  }

  // Remote scatter-gather: the router's transports start before any
  // query runs. Built outside the listen branch so the in-process
  // replay path can also drive it; destroyed after anything that
  // queries it (declaration order).
  std::unique_ptr<ShardRouter> router;
  if (router_mode) {
    RouterOptions router_options;
    router_options.shards = std::move(router_endpoints);
    router_options.strict = strict;
    if (live) {
      // Live cluster: no static layout exists — the router bootstraps
      // epoch-tagged manifest slices from the shard servers themselves.
      // Model and shard count derive from --seed/--shards exactly as on
      // each mutable shard server, so the cluster fingerprint matches.
      approxql::cluster::ClusterConfig config;
      config.model = IngestCostModel(seed);
      config.num_shards = shards;
      router = std::make_unique<ShardRouter>(config, router_options);
    } else if (manifest != nullptr) {
      router = std::make_unique<ShardRouter>(*manifest, router_options);
    } else {
      router = std::make_unique<ShardRouter>(*sharded, router_options);
    }
    auto started = router->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "router: %s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "router: %zu remote shard endpoint%s%s%s\n",
                 router->num_shards(), router->num_shards() == 1 ? "" : "s",
                 live ? " (live cluster)" : "", strict ? " (strict)" : "");
  }

  if (listen_mode) {
    // Declared before service/server so it outlives them (destruction
    // runs a final checkpoint).
    std::unique_ptr<approxql::ingest::MutableCorpus> corpus;
    std::unique_ptr<QueryService> service;
    ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(listen_port);
    std::unique_ptr<Server> server;
    if (mutable_mode) {
      approxql::ingest::MutableCorpus::Options corpus_options;
      corpus_options.data_dir = data_dir;
      // A cluster shard server IS one shard: its corpus has exactly one
      // internal shard and --shards describes the cluster, not the
      // corpus (the router owns placement across servers).
      corpus_options.num_shards = shard_server_mode ? 1 : shards;
      corpus_options.store_kind = store_kind;
      corpus_options.model = IngestCostModel(seed);
      const size_t corpus_shards = corpus_options.num_shards;
      approxql::ingest::MutableCorpus::OpenStats open_stats;
      auto opened = approxql::ingest::MutableCorpus::Open(
          std::move(corpus_options), nullptr, &open_stats);
      if (!opened.ok()) {
        std::fprintf(stderr, "mutable corpus: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      corpus = std::move(opened).value();
      std::fprintf(stderr,
                   "mutable corpus: recovered %zu documents "
                   "(%zu wal records replayed%s%s), epoch %llu, "
                   "%zu shard%s, store %s, dir %s\n",
                   open_stats.recovered_documents, open_stats.replayed_records,
                   open_stats.any_tail_truncated ? ", torn tail dropped" : "",
                   open_stats.any_store_rebuilt ? ", store rebuilt" : "",
                   static_cast<unsigned long long>(corpus->epoch()),
                   corpus_shards, corpus_shards == 1 ? "" : "s",
                   approxql::storage::StoreKindName(store_kind),
                   data_dir.c_str());
      service = std::make_unique<QueryService>(*corpus, service_options);
      if (shard_server_mode) {
        // One live-mutating cluster shard: kShardQuery answers carry
        // local preorders + snapshot epoch, kManifestFetch serves the
        // slice, and the stamp is the static cluster fingerprint (the
        // corpus's own fingerprint moves with every mutation — the
        // epoch, not the stamp, pins the layout; DESIGN.md §14).
        server_options.shard.enabled = true;
        server_options.shard.fingerprint = approxql::cluster::ClusterFingerprint(
            IngestCostModel(seed), shards);
        server_options.shard.shard_index = static_cast<uint32_t>(shard_server);
      }
      server = std::make_unique<Server>(*service, *corpus, server_options);
    } else if (shard_server_mode) {
      // This process fronts exactly one shard of the partition: plain
      // kQueryRequest traffic runs against the shard's own database,
      // while kShardQuery/kPing answers carry the layout fingerprint
      // and shard index stamped here.
      const Database& shard_db = sharded->shard(shard_server);
      service = std::make_unique<QueryService>(shard_db, service_options);
      server_options.shard.enabled = true;
      server_options.shard.fingerprint = sharded->LayoutFingerprint();
      server_options.shard.shard_index = static_cast<uint32_t>(shard_server);
      server = std::make_unique<Server>(*service, shard_db, server_options);
    } else if (router != nullptr) {
      service = std::make_unique<QueryService>(*router, service_options);
      if (live) {
        // A live router's layout is its manifest view, not a static
        // manifest: resolve answer roots through the current slices.
        server = std::make_unique<Server>(
            *service,
            std::function<approxql::doc::NodeId(approxql::doc::NodeId)>(
                [r = router.get()](approxql::doc::NodeId node) {
                  return r->DocRootOfGlobal(node);
                }),
            server_options);
      } else {
        // The router's own manifest copy resolves answer roots, so this
        // works identically with and without a local corpus
        // (--manifest).
        server = std::make_unique<Server>(*service, router->manifest(),
                                          server_options);
      }
    } else if (sharded != nullptr) {
      service = std::make_unique<QueryService>(*sharded, service_options);
      server = std::make_unique<Server>(*service, *sharded, server_options);
    } else {
      service = std::make_unique<QueryService>(*db, service_options);
      server = std::make_unique<Server>(*service, *db, server_options);
    }
    auto started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    g_server = server.get();
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    if (shard_server_mode) {
      std::fprintf(stderr,
                   "shard server %zu/%zu listening on %s:%u (%s "
                   "fingerprint %08x) — SIGTERM drains\n",
                   shard_server, shards, server_options.bind_address.c_str(),
                   server->port(), mutable_mode ? "cluster" : "layout",
                   server_options.shard.fingerprint);
    } else {
      std::fprintf(stderr,
                   "listening on %s:%u (%zu workers, queue %zu, %zu shard%s"
                   "%s) — SIGTERM drains\n",
                   server_options.bind_address.c_str(), server->port(),
                   service_options.num_threads, service_options.queue_capacity,
                   shards, shards == 1 ? "" : "s",
                   router != nullptr      ? ", remote"
                   : corpus != nullptr    ? ", mutable"
                                          : "");
    }
    server->Wait();  // returns when a drain signal quiesces the loop
    g_server = nullptr;
    std::printf("--- server metrics ---\n%s", server->DumpMetrics().c_str());
    server->Shutdown(/*drain=*/true);
    return 0;
  }

  if (driver_mode) {
    // Live-cluster driver: ingest through the router while querying it.
    // Each round ingests a burst with query threads running concurrently
    // (exercising the epoch-reconciliation path), then quiesces and —
    // with --verify — replays the round's workload with read-your-writes
    // epoch floors, comparing bit-for-bit against a database built from
    // exactly the acked documents. A document whose ingest failed in
    // transport is IN DOUBT (it may have landed without the ack); the
    // verifier resolves each candidate by testing which landed-subset
    // oracle matches the cluster.
    QueryService service(*router, service_options);
    approxql::util::Rng doc_rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    struct DocEntry {
      std::string xml;
      bool acked;
    };
    std::vector<DocEntry> docs;
    std::vector<uint64_t> floors(shards, 0);
    size_t acked_total = 0, candidates = 0, failed_rounds = 0, rounds = 0;
    std::atomic<size_t> bg_queries{0}, bg_hard_failures{0};
    std::string first_bg_failure;
    approxql::util::Mutex bg_failure_mu;
    const size_t query_count = gen_queries > 0 ? gen_queries : 24;
    constexpr size_t kBurst = 32;
    constexpr size_t kMaxCandidates = 6;
    const Strategy kStrategies[] = {Strategy::kSchema, Strategy::kDirect};

    while (acked_total < ingest_while_querying) {
      ++rounds;
      // Concurrent query load during the burst (answers not compared —
      // the corpus is moving — but hard failures are: a fingerprint or
      // translation error here means the epoch machinery mistranslated).
      std::atomic<bool> bg_stop{false};
      std::thread bg([&] {
        size_t k = 0;
        while (!bg_stop.load(std::memory_order_acquire)) {
          if (workload_queries.empty()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            continue;
          }
          QueryRequest request;
          request.query_text = workload_queries[k % workload_queries.size()];
          request.exec = exec;
          request.exec.strategy = kStrategies[k % 2];
          ++k;
          QueryResponse response = service.ExecuteNow(std::move(request));
          bg_queries.fetch_add(1, std::memory_order_relaxed);
          const auto& st = response.status;
          if (!st.ok() && !st.IsUnavailable() && !st.IsDeadlineExceeded() &&
              !st.IsResourceExhausted()) {
            if (bg_hard_failures.fetch_add(1, std::memory_order_relaxed) ==
                0) {
              approxql::util::MutexLock lock(&bg_failure_mu);
              first_bg_failure = st.ToString();
            }
          }
        }
      });
      const size_t burst =
          std::min(kBurst, ingest_while_querying - acked_total);
      bool gave_up = false;
      for (size_t b = 0; b < burst && !gave_up; ++b) {
        std::string xml = MakeIngestDoc(doc_rng);
        approxql::util::WallTimer doc_timer;
        int backoff_ms = 100;
        for (;;) {
          approxql::net::WireIngest op;
          op.op = approxql::net::WireIngest::Op::kAdd;
          op.xml = xml;
          auto ack = router->Ingest(op, /*deadline_ms=*/2000);
          if (ack.ok()) {
            docs.push_back({std::move(xml), /*acked=*/true});
            if (ack->shard_index < floors.size()) {
              floors[ack->shard_index] =
                  std::max(floors[ack->shard_index], ack->epoch);
            }
            ++acked_total;
            break;
          }
          // In doubt: never resend (a duplicate would corrupt the
          // oracle either way); record the candidate, take a fresh doc.
          docs.push_back({std::move(xml), /*acked=*/false});
          if (++candidates > kMaxCandidates) {
            std::fprintf(stderr,
                         "driver: more than %zu in-doubt documents — "
                         "cluster unrecoverable: %s\n",
                         kMaxCandidates, ack.status().ToString().c_str());
            gave_up = true;
            break;
          }
          if (doc_timer.ElapsedSeconds() > 120.0) {
            std::fprintf(stderr, "driver: ingest stalled >120 s: %s\n",
                         ack.status().ToString().c_str());
            gave_up = true;
            break;
          }
          std::fprintf(stderr, "driver: ingest in doubt (%s), retrying\n",
                       ack.status().ToString().c_str());
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2, 2000);
          xml = MakeIngestDoc(doc_rng);
        }
      }
      bg_stop.store(true, std::memory_order_release);
      bg.join();
      if (gave_up) {
        ++failed_rounds;
        break;
      }
      if (!verify) {
        std::fprintf(stderr, "driver: round %zu: %zu/%zu docs acked\n",
                     rounds, acked_total, ingest_while_querying);
        continue;
      }

      // Quiesced verification: the cluster now holds exactly the acked
      // documents plus some subset of the in-doubt candidates. Routed
      // answers (with epoch floors enforcing read-your-writes) must be
      // bit-identical to the oracle of whichever subset actually landed.
      std::vector<size_t> candidate_index;
      for (size_t d = 0; d < docs.size(); ++d) {
        if (!docs[d].acked) candidate_index.push_back(d);
      }
      std::vector<QueryResponse> routed;
      bool routed_ok = true;
      // Collected once; compared against each candidate-subset oracle.
      auto run_routed = [&] {
        routed.clear();
        for (const std::string& query : workload_queries) {
          for (Strategy strategy : kStrategies) {
            QueryRequest request;
            request.query_text = query;
            request.exec = exec;
            request.exec.strategy = strategy;
            request.min_epochs = floors;
            routed.push_back(service.ExecuteNow(std::move(request)));
            const QueryResponse& r = routed.back();
            if (!r.status.ok() || r.degraded) routed_ok = false;
          }
        }
      };
      size_t adopted = SIZE_MAX;
      size_t base_mismatches = 0;
      for (size_t mask = 0; mask < (size_t{1} << candidate_index.size());
           ++mask) {
        approxql::doc::DataTreeBuilder builder;
        bool build_ok = true;
        for (size_t d = 0, c = 0; d < docs.size(); ++d) {
          if (!docs[d].acked &&
              (mask & (size_t{1} << c++)) == 0) {
            continue;
          }
          if (!builder.AddDocumentXml(docs[d].xml).ok()) build_ok = false;
        }
        if (!build_ok) continue;
        const approxql::cost::CostModel model = IngestCostModel(seed);
        auto tree = std::move(builder).Build(model);
        if (!tree.ok()) continue;
        auto built = Database::FromDataTree(std::move(tree).value(), model);
        if (!built.ok()) continue;
        Database oracle_db = std::move(built).value();
        if (workload_queries.empty()) {
          // First verified round: draw the workload from the oracle —
          // the driver needs no corpus flags at all.
          approxql::gen::QueryGenOptions gen_options;
          gen_options.seed = seed;
          approxql::gen::QueryGenerator generator(oracle_db, gen_options);
          constexpr std::string_view kPatterns[] = {
              approxql::gen::kPattern1, approxql::gen::kPattern2,
              approxql::gen::kPattern3};
          for (size_t q = 0; q < query_count; ++q) {
            auto generated = generator.Generate(kPatterns[q % 3]);
            if (generated.ok()) {
              workload_queries.push_back(std::move(generated->text));
            }
          }
        }
        if (routed.empty()) run_routed();
        ServiceOptions oracle_options = service_options;
        oracle_options.cache_capacity = 0;
        QueryService oracle(oracle_db, oracle_options);
        size_t mismatches = 0, slot = 0;
        for (const std::string& query : workload_queries) {
          for (Strategy strategy : kStrategies) {
            QueryRequest request;
            request.query_text = query;
            request.exec = exec;
            request.exec.strategy = strategy;
            QueryResponse expected = oracle.ExecuteNow(std::move(request));
            const QueryResponse& got = routed[slot++];
            bool match = expected.status.ok() && got.status.ok() &&
                         expected.answers.size() == got.answers.size();
            if (match) {
              for (size_t k = 0; k < expected.answers.size(); ++k) {
                if (expected.answers[k].root != got.answers[k].root ||
                    expected.answers[k].cost != got.answers[k].cost) {
                  match = false;
                  break;
                }
              }
            }
            if (!match) ++mismatches;
          }
        }
        if (mask == 0) base_mismatches = mismatches;
        if (mismatches == 0) {
          adopted = mask;
          break;
        }
      }
      if (adopted == SIZE_MAX || !routed_ok) {
        ++failed_rounds;
        std::fprintf(stderr,
                     "driver: round %zu FAILED verification (%zu/%zu "
                     "query-strategy pairs mismatched against the acked "
                     "oracle%s)\n",
                     rounds, base_mismatches, routed.size(),
                     routed_ok ? "" : "; routed errors/degraded");
      } else {
        // Promote the adopted subset: landed candidates become acked
        // documents, the rest never existed.
        std::vector<DocEntry> resolved;
        resolved.reserve(docs.size());
        for (size_t d = 0, c = 0; d < docs.size(); ++d) {
          if (docs[d].acked) {
            resolved.push_back(std::move(docs[d]));
          } else if (adopted & (size_t{1} << c++)) {
            docs[d].acked = true;
            resolved.push_back(std::move(docs[d]));
          }
        }
        docs = std::move(resolved);
        candidates = 0;
        std::fprintf(stderr,
                     "driver: round %zu verified: %zu docs, %zu routed "
                     "query-strategy pairs bit-identical\n",
                     rounds, docs.size(), routed.size());
      }
    }

    if (!acked_file.empty()) {
      std::ofstream out(acked_file);
      if (out) {
        for (const DocEntry& entry : docs) {
          if (entry.acked) out << entry.xml << "\n";
        }
      }
    }
    std::printf(
        "driver: %zu docs acked over %zu rounds, %zu concurrent queries "
        "(%zu hard failures), %zu failed verification rounds\n",
        acked_total, rounds, bg_queries.load(), bg_hard_failures.load(),
        failed_rounds);
    std::printf("--- router metrics ---\n%s", router->DumpMetrics().c_str());
    if (bg_hard_failures.load() > 0) {
      std::fprintf(stderr, "FAILED: concurrent query hard failure: %s\n",
                   first_bg_failure.c_str());
      return 1;
    }
    if (failed_rounds > 0 || acked_total < ingest_while_querying) return 1;
    return 0;
  }

  std::fprintf(stderr,
               "workload: %zu queries x %zu repeat x %zu passes, "
               "%zu clients%s\n",
               workload_queries.size(), repeat, passes, clients,
               connect_mode ? " (wire)" : "");

  if (connect_mode) {
    size_t colon = connect_spec.rfind(':');
    if (colon == std::string::npos) return Usage();
    const std::string host = connect_spec.substr(0, colon);
    const size_t port = std::strtoull(connect_spec.c_str() + colon + 1,
                                      nullptr, 10);
    if (port == 0 || port > 65535) return Usage();

    if (ingest_count > 0) {
      // Live-ingest driver: one synchronous connection adding generated
      // documents, optionally interleaving workload queries so serving-
      // while-ingesting is exercised on the same socket. The server
      // dying mid-stream (the crash harness's kill -9) is an expected
      // outcome: whatever was acked before the failure is the durable
      // set, recorded to --acked-file; the document in flight at the
      // failure is IN DOUBT (its WAL sync may have happened without the
      // ack reaching us) and goes to --acked-file.indoubt.
      ClientOptions client_options;
      client_options.host = host;
      client_options.port = static_cast<uint16_t>(port);
      Client client(client_options);
      approxql::util::Rng doc_rng(seed * 0x9E3779B97F4A7C15ULL + 1);
      std::vector<std::string> acked;
      std::string indoubt;
      size_t rejected = 0, queries_sent = 0;
      uint64_t last_epoch = 0;
      bool transport_error = false;
      approxql::util::WallTimer timer;
      for (size_t i = 0; i < ingest_count; ++i) {
        approxql::net::WireIngest op;
        op.op = approxql::net::WireIngest::Op::kAdd;
        op.xml = MakeIngestDoc(doc_rng);
        auto ack = client.Ingest(op, deadline_ms);
        if (!ack.ok()) {
          const auto& status = ack.status();
          if (status.code() == approxql::util::StatusCode::kIoError ||
              status.IsUnavailable() || status.IsCorruption() ||
              status.IsDeadlineExceeded()) {
            indoubt = op.xml;
            transport_error = true;
            std::fprintf(stderr,
                         "ingest: transport error after %zu acks: %s\n",
                         acked.size(), status.ToString().c_str());
            break;
          }
          ++rejected;
          std::fprintf(stderr, "ingest: rejected: %s\n",
                       status.ToString().c_str());
          continue;
        }
        acked.push_back(std::move(op.xml));
        last_epoch = ack->epoch;
        if (!workload_queries.empty() && (i + 1) % 8 == 0) {
          WireRequest request;
          request.query =
              workload_queries[queries_sent++ % workload_queries.size()];
          request.strategy = exec.strategy;
          request.n = exec.n;
          auto response = client.Call(request, deadline_ms);
          // The ack promised visibility: a response evaluated against
          // an older epoch on the same connection breaks it.
          if (response.ok() && response->backend_epoch < last_epoch) {
            std::fprintf(stderr,
                         "FAILED: query after ack saw epoch %llu < %llu\n",
                         static_cast<unsigned long long>(
                             response->backend_epoch),
                         static_cast<unsigned long long>(last_epoch));
            return 1;
          }
        }
        if ((i + 1) % 100 == 0) {
          std::fprintf(stderr, "ingest: %zu acked, epoch %llu\n",
                       acked.size(),
                       static_cast<unsigned long long>(last_epoch));
        }
      }
      const double wall = timer.ElapsedSeconds();
      std::printf(
          "ingest: %zu/%zu acked in %.3f s (%.0f docs/s), %zu rejected, "
          "%zu interleaved queries, final epoch %llu%s\n",
          acked.size(), ingest_count, wall,
          wall > 0 ? static_cast<double>(acked.size()) / wall : 0.0, rejected,
          queries_sent, static_cast<unsigned long long>(last_epoch),
          transport_error ? " (server lost mid-stream)" : "");
      if (!acked_file.empty()) {
        std::ofstream out(acked_file);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", acked_file.c_str());
          return 1;
        }
        for (const std::string& xml : acked) out << xml << "\n";
        out.close();
        std::ofstream doubt(acked_file + ".indoubt");
        if (!indoubt.empty()) doubt << indoubt << "\n";
        std::fprintf(stderr, "wrote %zu acked docs to %s (%zu in doubt)\n",
                     acked.size(), acked_file.c_str(),
                     indoubt.empty() ? size_t{0} : size_t{1});
      }
      if (acked.empty() || rejected > 0) return 1;
      return 0;
    }

    std::unique_ptr<QueryService> oracle;
    if (verify) {
      ServiceOptions oracle_options = service_options;
      oracle_options.cache_capacity = 0;  // always re-execute
      oracle = std::make_unique<QueryService>(*db, oracle_options);
    }
    size_t transport_errors = 0, mismatches = 0, degraded = 0;
    std::vector<PassResult> results;
    for (size_t pass = 1; pass <= passes; ++pass) {
      PassResult result =
          RunWirePass(host, static_cast<uint16_t>(port), workload_queries,
                      clients, repeat, exec, deadline_ms, bypass_cache,
                      oracle.get());
      PrintPass(pass, result, /*wire=*/true);
      transport_errors += result.transport_errors;
      mismatches += result.mismatches;
      degraded += result.degraded;
      results.push_back(std::move(result));
    }
    if (!bench_json_path.empty()) {
      std::FILE* out = std::fopen(bench_json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", bench_json_path.c_str());
        return 1;
      }
      std::fprintf(out,
                   "{\n  \"benchmark\": \"wire_replay\",\n"
                   "  \"config\": {\"shards\": %zu, \"clients\": %zu, "
                   "\"threads\": %zu, \"parallelism\": %zu, %s},\n"
                   "  \"clients\": %zu,\n  \"passes\": [\n",
                   shards, clients, service_options.num_threads,
                   service_options.parallelism,
                   approxql::bench::BenchEnvJson().c_str(), clients);
      for (size_t p = 0; p < results.size(); ++p) {
        const PassResult& r = results[p];
        std::fprintf(
            out,
            "    {\"pass\": %zu, \"requests\": %zu, \"qps\": %.2f, "
            "\"p50_us\": %.0f, \"p90_us\": %.0f, \"p99_us\": %.0f, "
            "\"max_us\": %llu, \"transport_errors\": %zu}%s\n",
            p + 1, r.requests,
            r.wall_seconds > 0
                ? static_cast<double>(r.requests) / r.wall_seconds
                : 0.0,
            r.latency_us.Quantile(0.50), r.latency_us.Quantile(0.90),
            r.latency_us.Quantile(0.99),
            static_cast<unsigned long long>(r.latency_us.max()),
            r.transport_errors, p + 1 == results.size() ? "" : ",");
      }
      std::fprintf(out, "  ]\n}\n");
      std::fclose(out);
      std::printf("wrote %s\n", bench_json_path.c_str());
    }
    if (transport_errors > 0) {
      std::fprintf(stderr, "FAILED: %zu transport errors\n", transport_errors);
      return 1;
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "FAILED: %zu wire answers differ from in-process\n",
                   mismatches);
      return 1;
    }
    if (expect_degraded && degraded == 0) {
      std::fprintf(stderr,
                   "FAILED: --expect-degraded but no degraded responses "
                   "were observed\n");
      return 1;
    }
    return 0;
  }

  auto service =
      router != nullptr
          ? std::make_unique<QueryService>(*router, service_options)
      : sharded != nullptr
          ? std::make_unique<QueryService>(*sharded, service_options)
          : std::make_unique<QueryService>(*db, service_options);
  for (size_t pass = 1; pass <= passes; ++pass) {
    PassResult result = RunPass(*service, workload_queries, clients, repeat,
                                exec, deadline_ms);
    PrintPass(pass, result, /*wire=*/false);
  }

  std::printf("--- service metrics ---\n%s", service->DumpMetrics().c_str());
  return 0;
}
