// End-to-end walk through the paper's experimental pipeline at toy
// scale: generate a synthetic collection (Section 8.1), generate queries
// for the three patterns, and compare the direct and schema-driven
// strategies on wall-clock time for different n.
//
//   $ ./synthetic_benchmark [elements]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "util/timer.h"

using approxql::cost::CostModel;
using approxql::engine::Database;
using approxql::engine::ExecOptions;
using approxql::engine::Strategy;
using approxql::gen::QueryGenerator;
using approxql::gen::XmlGenerator;

int main(int argc, char** argv) {
  size_t elements = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  approxql::gen::XmlGenOptions gen_options;
  gen_options.seed = 7;
  gen_options.total_elements = elements;
  gen_options.element_names = 50;
  gen_options.vocabulary = 2000;
  gen_options.words_per_element = 6.0;
  XmlGenerator generator(gen_options);

  approxql::util::WallTimer build_timer;
  auto tree = generator.GenerateTree(CostModel());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  auto db = Database::FromDataTree(std::move(tree).value(), CostModel());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  auto stats = db->GetStats();
  std::printf(
      "built collection in %.2fs: %zu nodes, %zu labels, schema %zu\n\n",
      build_timer.ElapsedSeconds(), stats.nodes, stats.distinct_labels,
      stats.schema_nodes);

  approxql::gen::QueryGenOptions q_options;
  q_options.seed = 11;
  q_options.renamings_per_label = 5;
  QueryGenerator qgen(*db, q_options);

  const std::pair<const char*, std::string_view> patterns[] = {
      {"path query", approxql::gen::kPattern1},
      {"small Boolean query", approxql::gen::kPattern2},
      {"large Boolean query", approxql::gen::kPattern3},
  };
  for (const auto& [label, pattern] : patterns) {
    auto generated = qgen.Generate(pattern);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %s\n", label, generated->text.c_str());
    for (size_t n : {size_t{1}, size_t{10}, size_t{100}, SIZE_MAX}) {
      for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
        ExecOptions options;
        options.strategy = strategy;
        options.n = n;
        options.cost_model = &generated->cost_model;
        approxql::util::WallTimer timer;
        auto answers = db->Execute(generated->query, options);
        double ms = timer.ElapsedSeconds() * 1000.0;
        if (!answers.ok()) {
          std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
          return 1;
        }
        std::printf("  n=%-9s %-7s %8.2f ms  (%zu results)\n",
                    n == SIZE_MAX ? "all" : std::to_string(n).c_str(),
                    strategy == Strategy::kDirect ? "direct" : "schema", ms,
                    answers->size());
      }
    }
    std::printf("\n");
  }
  return 0;
}
