// A bibliography search scenario (DBLP-style records): heterogeneous
// entry kinds (article / inproceedings / book), venues nested
// differently per kind, and user queries that don't know the exact
// structure — the data-centric setting the paper targets.
//
// Shows: cost-model design for a real schema, the approximate ranking
// across record kinds, incremental streaming, and EXPLAIN.
//
//   $ ./library_search
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"

using approxql::NodeType;
using approxql::cost::CostModel;
using approxql::engine::Database;
using approxql::engine::ExecOptions;
using approxql::engine::Strategy;

namespace {

const std::vector<std::string> kLibrary = {
    // Journal article: venue under journal/name.
    "<bib><article key='a1'>"
    "<title>Approximate Tree Pattern Matching for XML Retrieval</title>"
    "<author>Schlieder</author>"
    "<journal><name>Information Systems</name><year>2002</year></journal>"
    "</article></bib>",
    // Conference paper: venue under booktitle.
    "<bib><inproceedings key='p1'>"
    "<title>Schema Driven Evaluation of Tree Queries</title>"
    "<author>Schlieder</author>"
    "<booktitle>EDBT</booktitle><year>2002</year>"
    "</inproceedings></bib>",
    // Another article, different author.
    "<bib><article key='a2'>"
    "<title>DataGuides for Semistructured Data</title>"
    "<author>Goldman</author><author>Widom</author>"
    "<journal><name>VLDB Journal</name><year>1997</year></journal>"
    "</article></bib>",
    // A book: title words match partially.
    "<bib><book key='b1'>"
    "<title>Pattern Matching Algorithms</title>"
    "<editor>Apostolico</editor><editor>Galil</editor>"
    "<publisher>Oxford University Press</publisher><year>1997</year>"
    "</book></bib>",
    // Paper with matching title but as a section heading, deeper.
    "<bib><inproceedings key='p2'>"
    "<title>Indexing XML</title>"
    "<author>Someone</author>"
    "<sections><section><heading>Tree pattern matching</heading>"
    "</section></sections>"
    "<booktitle>WebDB</booktitle><year>2000</year>"
    "</inproceedings></bib>",
};

CostModel LibraryCosts() {
  CostModel model;
  // Record-kind preferences: articles first, then conference papers,
  // then books.
  model.SetRenameCost(NodeType::kStruct, "article", "inproceedings", 2);
  model.SetRenameCost(NodeType::kStruct, "article", "book", 5);
  // An author may appear as editor (worse).
  model.SetRenameCost(NodeType::kStruct, "author", "editor", 3);
  // Title may be a deeper heading (worse than a real title).
  model.SetRenameCost(NodeType::kStruct, "title", "heading", 4);
  // Missing keywords are tolerable but penalized.
  model.SetDeleteCost(NodeType::kText, "pattern", 6);
  model.SetDeleteCost(NodeType::kText, "matching", 6);
  model.SetDeleteCost(NodeType::kText, "tree", 5);
  return model;
}

}  // namespace

int main() {
  auto db = Database::BuildFromXml(kLibrary, LibraryCosts());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  const char* query =
      R"(article[title["tree" and "pattern" and "matching"]])";
  std::printf("query: %s\n\n", query);

  // 1. Batch: the full ranking.
  ExecOptions options;
  options.strategy = Strategy::kSchema;
  options.n = SIZE_MAX;
  auto answers = db->Execute(query, options);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  std::printf("--- ranking (%zu results) ---\n", answers->size());
  for (const auto& answer : *answers) {
    std::printf("cost %2lld  %.100s...\n",
                static_cast<long long>(answer.cost),
                db->MaterializeXml(answer.root).c_str());
  }

  // 2. Streaming: first answer is available before the rest.
  auto stream = db->ExecuteStream(query, options);
  if (stream.ok()) {
    if (auto first = stream->Next()) {
      std::printf("\nfirst streamed answer (cost %lld) arrived early\n",
                  static_cast<long long>(first->cost));
    }
  }

  // 3. EXPLAIN: which transformed queries produced the ranking.
  options.n = 8;
  auto explanations = db->Explain(query, options);
  if (explanations.ok()) {
    std::printf("\n--- second-level queries ---\n");
    for (const auto& explanation : *explanations) {
      std::printf("cost %2lld (%zu results): %s\n",
                  static_cast<long long>(explanation.cost),
                  explanation.result_count, explanation.skeleton.c_str());
    }
  }
  return 0;
}
