// Generates a synthetic XML collection (paper Section 8.1 parameters)
// plus a matching random cost table on disk, ready for approxql_cli:
//
//   $ ./make_collection out_dir [elements] [names] [vocabulary]
//   $ ./approxql_cli --xml out_dir/doc0.xml ... --costs out_dir/costs.txt
//
// Also prints a few example queries whose labels exist in the data.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "engine/database.h"
#include "gen/query_file.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"

using approxql::cost::CostModel;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: make_collection OUT_DIR [elements] [names] [vocab]\n");
    return 2;
  }
  std::filesystem::path out_dir = argv[1];
  approxql::gen::XmlGenOptions options;
  options.seed = 4711;
  options.total_elements =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;
  options.element_names = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50;
  options.vocabulary = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1000;
  options.words_per_element = 8.0;

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  approxql::gen::XmlGenerator generator(options);
  size_t written_elements = 0;
  int doc_index = 0;
  std::vector<std::string> paths;
  while (written_elements < options.total_elements) {
    std::string xml = generator.GenerateDocumentXml();
    // Rough element count: one '<' per start tag, half of all tags.
    size_t tags = 0;
    for (char c : xml) tags += c == '<' ? 1 : 0;
    written_elements += tags / 2;
    std::filesystem::path path =
        out_dir / ("doc" + std::to_string(doc_index++) + ".xml");
    std::ofstream out(path, std::ios::binary);
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" << xml << "\n";
    paths.push_back(path.string());
    if (doc_index > 10000) break;  // safety
  }

  // Build an in-memory database once so the query generator can sample
  // real labels, then emit a cost table and example queries.
  std::vector<std::string> docs;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    docs.push_back(std::move(content));
  }
  auto db = approxql::engine::Database::BuildFromXml(docs, CostModel());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  approxql::gen::QueryGenOptions q_options;
  q_options.seed = 99;
  q_options.renamings_per_label = 5;
  approxql::gen::QueryGenerator qgen(*db, q_options);
  auto generated = qgen.Generate(approxql::gen::kPattern2);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  {
    std::ofstream costs(out_dir / "costs.txt");
    costs << generated->cost_model.ToConfigString();
  }
  {
    std::ofstream query_file(out_dir / "query.aql");
    query_file << approxql::gen::WriteQueryFile(*generated);
  }

  auto stats = db->GetStats();
  std::printf("wrote %d documents (%zu nodes, schema %zu) to %s\n", doc_index,
              stats.nodes, stats.schema_nodes, out_dir.c_str());
  std::printf("cost table: %s\n", (out_dir / "costs.txt").c_str());
  std::printf("example query:\n  %s\n", generated->text.c_str());
  std::printf("try:\n  approxql_cli");
  for (int i = 0; i < std::min(doc_index, 3); ++i) {
    std::printf(" --xml %s/doc%d.xml", out_dir.c_str(), i);
  }
  std::printf(" --costs %s/costs.txt --query '%s'\n", out_dir.c_str(),
              generated->text.c_str());
  return 0;
}
