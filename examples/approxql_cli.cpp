// Command-line shell around the library: load XML files (or a saved
// database), then run approXQL queries interactively or one-shot.
//
//   approxql_cli --xml catalog.xml [--xml more.xml] [--costs costs.txt]
//                [--save db.apx] [--strategy schema|direct|scan]
//                [--n 10] [--explain] [--query '<approxql>']
//   approxql_cli --load db.apx --query 'cd[title["piano"]]'
//
// Without --query, reads queries from stdin (one per line). With
// --explain, prints the ranked second-level queries (schema paths and
// how many results each retrieves) instead of the results.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "gen/query_file.h"
#include "util/timer.h"

using approxql::cost::CostModel;
using approxql::engine::Database;
using approxql::engine::ExecOptions;
using approxql::engine::Strategy;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: approxql_cli (--xml FILE)... [--costs FILE] [--save DB]\n"
      "       approxql_cli --load DB\n"
      "       options: --strategy schema|direct|scan  --n N  --query Q\n"
      "                --queryfile FILE (query + cost table in one file)\n"
      "                --explain (show ranked second-level queries)\n");
  return 2;
}

void RunQuery(const Database& db, const std::string& text,
              const ExecOptions& options, bool explain) {
  approxql::util::WallTimer timer;
  if (explain) {
    auto explanations = db.Explain(text, options);
    if (!explanations.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   explanations.status().ToString().c_str());
      return;
    }
    std::printf("%zu second-level quer%s in %.2f ms\n", explanations->size(),
                explanations->size() == 1 ? "y" : "ies",
                timer.ElapsedSeconds() * 1000.0);
    for (const auto& explanation : *explanations) {
      std::printf("cost %lld (%zu results): %s\n",
                  static_cast<long long>(explanation.cost),
                  explanation.result_count, explanation.skeleton.c_str());
    }
    return;
  }
  auto answers = db.Execute(text, options);
  double ms = timer.ElapsedSeconds() * 1000.0;
  if (!answers.ok()) {
    std::fprintf(stderr, "error: %s\n", answers.status().ToString().c_str());
    return;
  }
  std::printf("%zu result(s) in %.2f ms\n", answers->size(), ms);
  for (const auto& answer : *answers) {
    std::printf("cost %lld: %s\n", static_cast<long long>(answer.cost),
                db.MaterializeXml(answer.root).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> xml_paths;
  std::string costs_path, save_path, load_path, query, query_file_path;
  bool explain = false;
  ExecOptions options;
  options.strategy = Strategy::kSchema;
  options.n = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--xml") {
      const char* v = next();
      if (v == nullptr) return Usage();
      xml_paths.push_back(v);
    } else if (arg == "--costs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      costs_path = v;
    } else if (arg == "--save") {
      const char* v = next();
      if (v == nullptr) return Usage();
      save_path = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage();
      load_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage();
      query = v;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--queryfile") {
      const char* v = next();
      if (v == nullptr) return Usage();
      query_file_path = v;
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.n = std::strcmp(v, "all") == 0 ? SIZE_MAX : std::strtoull(v, nullptr, 10);
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "schema") == 0) {
        options.strategy = Strategy::kSchema;
      } else if (std::strcmp(v, "direct") == 0) {
        options.strategy = Strategy::kDirect;
      } else if (std::strcmp(v, "scan") == 0) {
        options.strategy = Strategy::kFullScan;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }

  std::unique_ptr<Database> db;
  if (!load_path.empty()) {
    auto loaded = Database::Load(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<Database>(std::move(loaded).value());
  } else if (!xml_paths.empty()) {
    CostModel model;
    if (!costs_path.empty()) {
      std::string config;
      if (!ReadFile(costs_path, &config)) {
        std::fprintf(stderr, "cannot read %s\n", costs_path.c_str());
        return 1;
      }
      auto parsed = CostModel::ParseConfig(config);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      model = std::move(parsed).value();
    }
    auto built = Database::BuildFromFiles(xml_paths, std::move(model));
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<Database>(std::move(built).value());
  } else {
    return Usage();
  }

  auto stats = db->GetStats();
  std::fprintf(stderr, "database: %zu nodes, %zu labels, schema %zu\n",
               stats.nodes, stats.distinct_labels, stats.schema_nodes);

  if (!save_path.empty()) {
    auto s = db->Save(save_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved to %s\n", save_path.c_str());
  }

  // A query file carries both the query and its transformation costs.
  approxql::gen::GeneratedQuery from_file;
  if (!query_file_path.empty()) {
    std::string content;
    if (!ReadFile(query_file_path, &content)) {
      std::fprintf(stderr, "cannot read %s\n", query_file_path.c_str());
      return 1;
    }
    auto parsed = approxql::gen::ParseQueryFile(content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    from_file = std::move(parsed).value();
    options.cost_model = &from_file.cost_model;
    query = from_file.text;
  }

  if (!query.empty()) {
    RunQuery(*db, query, options, explain);
    return 0;
  }
  std::string line;
  std::fprintf(stderr, "enter approXQL queries, one per line (^D ends):\n");
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    RunQuery(*db, line, options, explain);
  }
  return 0;
}
