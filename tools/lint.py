#!/usr/bin/env python3
"""Repo invariant linter (fast, dependency-free; runs in CI before the
compilers do). Three checks, each guarding a discipline the toolchain
alone cannot enforce everywhere:

1. no-raw-mutex: raw std::mutex / std::lock_guard / std::unique_lock /
   std::scoped_lock / std::condition_variable (and their headers) are
   forbidden outside src/util/. std types cannot carry Clang capability
   attributes, so locked state declared with them is invisible to the
   thread-safety analysis; everything must go through util::Mutex /
   util::MutexLock / util::CondVar (src/util/mutex.h).

2. guarded-by: every util::Mutex declared in src/ must protect
   something — at least one GUARDED_BY/PT_GUARDED_BY/REQUIRES/ACQUIRE/
   EXCLUDES reference to it in the same file. A mutex that exists
   purely as a condition-variable handshake (no guarded data) must say
   so with a `lint:allow-unguarded-mutex` comment carrying a reason.
   Scoped to src/: test-local scratch mutexes are not module state.

3. test-includes: tests/ must include code under test through the
   public module headers ("module/header.h" relative to src/), never
   with path-relative escapes ("../", "src/...") that bypass the
   include layout the library exports.

Exit status 0 = clean, 1 = violations (one line each on stdout).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "examples", "bench")
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
RAW_MUTEX_INCLUDE_RE = re.compile(
    r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>'
)
# `std::adopt_lock` / `std::defer_lock` tags are fine: they configure
# util::MutexLock, not a raw lock.
RAW_MUTEX_ALLOWED_RE = re.compile(r"std::(adopt|defer|try_to)_lock\b")

MUTEX_MEMBER_RE = re.compile(
    r"(?:mutable\s+)?(?:util::|approxql::util::)?Mutex\s+(\w+)\s*;"
)
ALLOW_UNGUARDED_RE = re.compile(r"lint:allow-unguarded-mutex\s*\S")

TEST_INCLUDE_RE = re.compile(r'#\s*include\s*"((?:\.\./|src/)[^"]*)"')

COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line numbers."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return COMMENT_RE.sub(blank, text)


def check_no_raw_mutex(rel: str, text: str, errors: list[str]) -> None:
    if rel.startswith("src/util/"):
        return
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = RAW_MUTEX_RE.search(line)
        if match and not RAW_MUTEX_ALLOWED_RE.search(match.group(0)):
            errors.append(
                f"{rel}:{lineno}: raw {match.group(0)} outside src/util/ "
                f"(use util::Mutex / util::MutexLock / util::CondVar from "
                f"util/mutex.h so the thread-safety analysis sees it)")
        if RAW_MUTEX_INCLUDE_RE.search(line):
            errors.append(
                f"{rel}:{lineno}: direct include of a std locking header "
                f"outside src/util/ (include \"util/mutex.h\" instead)")


def check_guarded_by(rel: str, text: str, errors: list[str]) -> None:
    if not rel.startswith("src/") or rel.startswith("src/util/"):
        return
    lines = text.splitlines()
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = MUTEX_MEMBER_RE.search(line)
        if not match:
            continue
        name = match.group(1)
        uses = re.compile(
            r"(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES|"
            r"RETURN_CAPABILITY|ASSERT_CAPABILITY)\s*\(\s*[\w>.\-]*" +
            re.escape(name) + r"\s*\)")
        if uses.search(code):
            continue
        # The waiver lives in a comment, so search the *unstripped*
        # source: the declaration line plus the contiguous //-comment
        # block immediately above it.
        first = lineno - 1
        while first > 0 and lines[first - 1].lstrip().startswith("//"):
            first -= 1
        context = "\n".join(lines[first:lineno])
        if ALLOW_UNGUARDED_RE.search(context):
            continue
        errors.append(
            f"{rel}:{lineno}: util::Mutex member '{name}' has no "
            f"GUARDED_BY/REQUIRES user in this file; annotate the state it "
            f"protects, or mark the declaration with "
            f"'// lint:allow-unguarded-mutex <reason>'")


def check_test_includes(rel: str, text: str, errors: list[str]) -> None:
    if not rel.startswith("tests/"):
        return
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = TEST_INCLUDE_RE.search(line)
        if match:
            errors.append(
                f"{rel}:{lineno}: test includes \"{match.group(1)}\" — "
                f"include the public module header relative to src/ "
                f"(e.g. \"service/thread_pool.h\") instead of bypassing "
                f"the exported include layout")


def main() -> int:
    errors: list[str] = []
    for top in SCAN_DIRS:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(REPO_ROOT).as_posix()
            text = path.read_text(encoding="utf-8", errors="replace")
            check_no_raw_mutex(rel, text, errors)
            check_guarded_by(rel, text, errors)
            check_test_includes(rel, text, errors)
    if errors:
        print(f"lint.py: {len(errors)} violation(s)")
        for error in errors:
            print(error)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
