#!/usr/bin/env python3
"""Repo invariant linter (fast, dependency-free; runs in CI before the
compilers do). Four checks, each guarding a discipline the toolchain
alone cannot enforce everywhere:

1. no-raw-mutex: raw std::mutex / std::lock_guard / std::unique_lock /
   std::scoped_lock / std::condition_variable (and their headers) are
   forbidden outside src/util/. std types cannot carry Clang capability
   attributes, so locked state declared with them is invisible to the
   thread-safety analysis; everything must go through util::Mutex /
   util::MutexLock / util::CondVar (src/util/mutex.h).

2. guarded-by: every util::Mutex declared in src/ must protect
   something — at least one GUARDED_BY/PT_GUARDED_BY/REQUIRES/ACQUIRE/
   EXCLUDES reference to it in the same file. A mutex that exists
   purely as a condition-variable handshake (no guarded data) must say
   so with a `lint:allow-unguarded-mutex` comment carrying a reason.
   Scoped to src/: test-local scratch mutexes are not module state.

3. test-includes: tests/ must include code under test through the
   public module headers ("module/header.h" relative to src/), never
   with path-relative escapes ("../", "src/...") that bypass the
   include layout the library exports.

4. decoder-coverage: every untrusted-input entry point declared in a
   src/ header — any function named Decode<X>/Deserialize*/Replay* —
   must be mapped to a registered fuzz target in fuzz/targets.manifest,
   and every manifest line must name a target whose
   fuzz/targets/<target>_fuzz.cc exists. A decoder that genuinely
   cannot see attacker bytes (e.g. input already integrity-checked
   upstream) must say why with a `lint:allow-unfuzzed <reason>` comment
   on or immediately above its declaration. This is what keeps the
   fuzz/ subsystem complete as new wire messages and on-disk formats
   are added (DESIGN.md §15).

Exit status 0 = clean, 1 = violations (one line each on stdout).
--self-test seeds synthetic violations of every check against an
in-memory file set and verifies each one is caught (CI runs it so a
regex regression cannot silently disable a check).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "examples", "bench")
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
RAW_MUTEX_INCLUDE_RE = re.compile(
    r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>'
)
# `std::adopt_lock` / `std::defer_lock` tags are fine: they configure
# util::MutexLock, not a raw lock.
RAW_MUTEX_ALLOWED_RE = re.compile(r"std::(adopt|defer|try_to)_lock\b")

MUTEX_MEMBER_RE = re.compile(
    r"(?:mutable\s+)?(?:util::|approxql::util::)?Mutex\s+(\w+)\s*;"
)
ALLOW_UNGUARDED_RE = re.compile(r"lint:allow-unguarded-mutex\s*\S")

TEST_INCLUDE_RE = re.compile(r'#\s*include\s*"((?:\.\./|src/)[^"]*)"')

# Untrusted-byte entry points: free functions or methods whose name
# marks them as parsing serialized input. Requires a following '(' so
# mentions in prose or string literals do not count.
DECODER_DECL_RE = re.compile(
    r"\b(Decode[A-Z]\w*|Deserialize\w*|Replay\w*)\s*\(")
ALLOW_UNFUZZED_RE = re.compile(r"lint:allow-unfuzzed\s*\S")
MANIFEST_PATH = "fuzz/targets.manifest"
FUZZ_TARGET_DIR = "fuzz/targets"

COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line numbers."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return COMMENT_RE.sub(blank, text)


def check_no_raw_mutex(rel: str, text: str, errors: list[str]) -> None:
    if rel.startswith("src/util/"):
        return
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = RAW_MUTEX_RE.search(line)
        if match and not RAW_MUTEX_ALLOWED_RE.search(match.group(0)):
            errors.append(
                f"{rel}:{lineno}: raw {match.group(0)} outside src/util/ "
                f"(use util::Mutex / util::MutexLock / util::CondVar from "
                f"util/mutex.h so the thread-safety analysis sees it)")
        if RAW_MUTEX_INCLUDE_RE.search(line):
            errors.append(
                f"{rel}:{lineno}: direct include of a std locking header "
                f"outside src/util/ (include \"util/mutex.h\" instead)")


def check_guarded_by(rel: str, text: str, errors: list[str]) -> None:
    if not rel.startswith("src/") or rel.startswith("src/util/"):
        return
    lines = text.splitlines()
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = MUTEX_MEMBER_RE.search(line)
        if not match:
            continue
        name = match.group(1)
        uses = re.compile(
            r"(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES|"
            r"RETURN_CAPABILITY|ASSERT_CAPABILITY)\s*\(\s*[\w>.\-]*" +
            re.escape(name) + r"\s*\)")
        if uses.search(code):
            continue
        # The waiver lives in a comment, so search the *unstripped*
        # source: the declaration line plus the contiguous //-comment
        # block immediately above it.
        first = lineno - 1
        while first > 0 and lines[first - 1].lstrip().startswith("//"):
            first -= 1
        context = "\n".join(lines[first:lineno])
        if ALLOW_UNGUARDED_RE.search(context):
            continue
        errors.append(
            f"{rel}:{lineno}: util::Mutex member '{name}' has no "
            f"GUARDED_BY/REQUIRES user in this file; annotate the state it "
            f"protects, or mark the declaration with "
            f"'// lint:allow-unguarded-mutex <reason>'")


def check_test_includes(rel: str, text: str, errors: list[str]) -> None:
    if not rel.startswith("tests/"):
        return
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = TEST_INCLUDE_RE.search(line)
        if match:
            errors.append(
                f"{rel}:{lineno}: test includes \"{match.group(1)}\" — "
                f"include the public module header relative to src/ "
                f"(e.g. \"service/thread_pool.h\") instead of bypassing "
                f"the exported include layout")


def parse_manifest(manifest_text: str, target_files: set[str],
                   errors: list[str]) -> set[tuple[str, str]]:
    """Returns the set of (header, function) pairs the manifest covers,
    reporting malformed lines and targets without a _fuzz.cc source."""
    covered: set[tuple[str, str]] = set()
    for lineno, raw in enumerate(manifest_text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or ":" not in parts[0]:
            errors.append(
                f"{MANIFEST_PATH}:{lineno}: malformed line "
                f"(want '<header>:<Function> <target>'): {raw.strip()}")
            continue
        header, function = parts[0].rsplit(":", 1)
        target = parts[1]
        source = f"{FUZZ_TARGET_DIR}/{target}_fuzz.cc"
        if source not in target_files:
            errors.append(
                f"{MANIFEST_PATH}:{lineno}: target '{target}' has no "
                f"{source} (renamed target without updating the manifest?)")
        covered.add((header, function))
    return covered


def check_decoder_coverage(rel: str, text: str,
                           covered: set[tuple[str, str]],
                           errors: list[str]) -> None:
    """Every Decode*/Deserialize*/Replay* declared in a src/ header must
    be fuzzed (manifest entry) or carry a lint:allow-unfuzzed waiver."""
    if not rel.startswith("src/") or not rel.endswith(".h"):
        return
    lines = text.splitlines()
    code = strip_comments(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        for match in DECODER_DECL_RE.finditer(line):
            name = match.group(1)
            if (rel, name) in covered:
                continue
            # Waiver comments live on the declaration line or in the
            # contiguous //-block above it; search unstripped source.
            first = lineno - 1
            while first > 0 and lines[first - 1].lstrip().startswith("//"):
                first -= 1
            context = "\n".join(lines[first:lineno])
            if ALLOW_UNFUZZED_RE.search(context):
                continue
            errors.append(
                f"{rel}:{lineno}: untrusted-input entry point '{name}' has "
                f"no fuzz target in {MANIFEST_PATH}; add a fuzz/targets/ "
                f"target and a manifest line '{rel}:{name} <target>', or — "
                f"only if attacker bytes provably cannot reach it — mark "
                f"the declaration '// lint:allow-unfuzzed <reason>'")


def run_checks(files: dict[str, str], manifest_text: str | None,
               target_files: set[str]) -> list[str]:
    """Runs every check over an in-memory file set (rel path -> text)."""
    errors: list[str] = []
    if manifest_text is None:
        errors.append(f"{MANIFEST_PATH}: missing (decoder-coverage check "
                      f"has nothing to verify against)")
        covered: set[tuple[str, str]] = set()
    else:
        covered = parse_manifest(manifest_text, target_files, errors)
    for rel in sorted(files):
        text = files[rel]
        check_no_raw_mutex(rel, text, errors)
        check_guarded_by(rel, text, errors)
        check_test_includes(rel, text, errors)
        check_decoder_coverage(rel, text, covered, errors)
    return errors


def self_test() -> int:
    """Seeds one synthetic violation per check and verifies each is
    caught, plus a waiver/clean case per check that must NOT fire."""
    target_files = {"fuzz/targets/wire_thing_fuzz.cc"}
    manifest = (
        "# comment\n"
        "src/net/thing.h:DecodeThing wire_thing\n"
        "src/net/thing.h:DecodeGone wire_gone\n"  # missing _fuzz.cc
        "malformed-no-colon\n")
    files = {
        # Violations: raw mutex, raw include, unguarded mutex, escape
        # include, unfuzzed decoder.
        "src/bad/raw_mutex.cc": "std::mutex m;\n#include <mutex>\n",
        "src/bad/unguarded.h": "class A { util::Mutex mu_; };\n",
        "tests/bad/escape_test.cc": '#include "../src/net/thing.h"\n',
        "src/net/thing.h": (
            "util::Status DecodeThing(std::string_view p);\n"
            "util::Status DecodeNaked(std::string_view p);\n"
            "// lint:allow-unfuzzed input is CRC-checked upstream\n"
            "util::Status DecodeWaived(std::string_view p);\n"
            "// in a comment: DecodeCommented( does not count\n"),
        # Clean: guarded mutex and manifest-covered decoder.
        "src/good/guarded.h": (
            "class B { util::Mutex mu_; int x GUARDED_BY(mu_); };\n"),
    }
    errors = run_checks(files, manifest, target_files)
    expected = [
        ("raw std::mutex", "src/bad/raw_mutex.cc:1"),
        ("std locking header", "src/bad/raw_mutex.cc:2"),
        ("no GUARDED_BY", "src/bad/unguarded.h:1"),
        ("bypassing", "tests/bad/escape_test.cc:1"),
        ("'DecodeNaked' has no fuzz target", "src/net/thing.h:2"),
        ("no fuzz/targets/wire_gone_fuzz.cc", "fuzz/targets.manifest:3"),
        ("malformed line", "fuzz/targets.manifest:4"),
    ]
    failures = 0
    for needle, location in expected:
        if not any(needle in e and location in e for e in errors):
            print(f"self-test: MISSED expected violation {location} "
                  f"({needle!r})")
            failures += 1
    unexpected = [e for e in errors
                  if "DecodeWaived" in e or "DecodeThing'" in e
                  or "DecodeCommented" in e or "src/good/" in e]
    for e in unexpected:
        print(f"self-test: FALSE POSITIVE: {e}")
        failures += 1
    # A missing manifest must itself be a violation.
    if not any("missing" in e for e in run_checks({}, None, set())):
        print("self-test: MISSED missing-manifest violation")
        failures += 1
    if failures:
        print(f"lint.py --self-test: {failures} failure(s)")
        return 1
    print(f"lint.py --self-test: all checks fire "
          f"({len(expected)} seeded violations caught, waivers honored)")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    files: dict[str, str] = {}
    for top in SCAN_DIRS:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(REPO_ROOT).as_posix()
            files[rel] = path.read_text(encoding="utf-8", errors="replace")
    manifest_path = REPO_ROOT / MANIFEST_PATH
    manifest_text = (manifest_path.read_text(encoding="utf-8")
                     if manifest_path.is_file() else None)
    target_files = {
        p.relative_to(REPO_ROOT).as_posix()
        for p in (REPO_ROOT / FUZZ_TARGET_DIR).glob("*_fuzz.cc")
    } if (REPO_ROOT / FUZZ_TARGET_DIR).is_dir() else set()
    errors = run_checks(files, manifest_text, target_files)
    if errors:
        print(f"lint.py: {len(errors)} violation(s)")
        for error in errors:
            print(error)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
