// Serving-layer benchmarks: query throughput through the QueryService
// (thread pool + admission + cache) against calling Database::Execute
// directly, the cache hit path, and the raw thread-pool dispatch
// overhead. Run with --benchmark_filter=BM_Service.
#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"
#include "service/thread_pool.h"

namespace approxql {
namespace {

using engine::Database;
using engine::ExecOptions;
using service::QueryRequest;
using service::QueryService;
using service::ServiceOptions;

/// One synthetic database plus a generated workload, shared by all
/// benchmark repetitions (construction dominates otherwise).
struct Fixture {
  Database db;
  std::vector<std::string> queries;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      gen::XmlGenOptions options;
      options.seed = 7;
      options.total_elements = 20000;
      options.vocabulary = 2000;
      gen::XmlGenerator generator(options);
      cost::CostModel model;
      auto tree = generator.GenerateTree(model);
      APPROXQL_CHECK(tree.ok()) << tree.status();
      auto built = Database::FromDataTree(std::move(tree).value(), model);
      APPROXQL_CHECK(built.ok()) << built.status();
      auto* f = new Fixture{std::move(built).value(), {}};
      gen::QueryGenerator qgen(f->db, gen::QueryGenOptions{});
      for (size_t i = 0; i < 64; ++i) {
        auto q = qgen.Generate(i % 2 == 0 ? gen::kPattern1 : gen::kPattern2);
        APPROXQL_CHECK(q.ok()) << q.status();
        f->queries.push_back(std::move(q->text));
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_ServiceThroughput(benchmark::State& state) {
  Fixture& fixture = Fixture::Get();
  ServiceOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.queue_capacity = 1024;
  options.cache_capacity = 0;  // measure evaluation, not caching
  QueryService service(fixture.db, options);
  size_t i = 0;
  for (auto _ : state) {
    // Keep one batch in flight per iteration: submit a window, then
    // drain it — models a closed loop of `num_threads` clients.
    std::vector<std::future<service::QueryResponse>> batch;
    for (size_t j = 0; j < options.num_threads; ++j) {
      QueryRequest request;
      request.query_text = fixture.queries[i++ % fixture.queries.size()];
      request.exec.n = 10;
      batch.push_back(service.Submit(std::move(request)));
    }
    for (auto& future : batch) {
      benchmark::DoNotOptimize(future.get());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DirectExecuteBaseline(benchmark::State& state) {
  Fixture& fixture = Fixture::Get();
  ExecOptions options;
  options.n = 10;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.db.Execute(
        fixture.queries[i++ % fixture.queries.size()], options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectExecuteBaseline);

void BM_ServiceCacheHit(benchmark::State& state) {
  Fixture& fixture = Fixture::Get();
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 256;
  QueryService service(fixture.db, options);
  QueryRequest warm;
  warm.query_text = fixture.queries[0];
  warm.exec.n = 10;
  service.ExecuteNow(warm);  // populate
  for (auto _ : state) {
    QueryRequest request;
    request.query_text = fixture.queries[0];
    request.exec.n = 10;
    benchmark::DoNotOptimize(service.ExecuteNow(std::move(request)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheHit);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  service::ThreadPool pool({.num_threads = 4, .queue_capacity = 4096});
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
      while (!pool.TrySubmit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); })) {
      }
    }
    while (done.load(std::memory_order_relaxed) != 64) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolDispatch);

}  // namespace
}  // namespace approxql

BENCHMARK_MAIN();
