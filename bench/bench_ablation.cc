// Ablations of the design choices DESIGN.md calls out:
//   A1 — the dynamic-programming cache of algorithm `primary`
//        (Section 6.5 "full version") on/off;
//   A2 — the incremental algorithm's k schedule (initial k, additive
//        delta vs geometric growth), Section 7.4.
// Prints one table per ablation; rows are means over a fixed query set.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig7_common.h"
#include "gen/query_generator.h"

namespace approxql::bench {
namespace {

struct QuerySet {
  std::vector<gen::GeneratedQuery> queries;
};

QuerySet MakeQueries(const engine::Database& db, std::string_view pattern,
                     size_t renamings, size_t count) {
  gen::QueryGenOptions options;
  options.seed = 4242;
  options.renamings_per_label = renamings;
  gen::QueryGenerator qgen(db, options);
  QuerySet set;
  for (size_t i = 0; i < count; ++i) {
    auto generated = qgen.Generate(pattern);
    APPROXQL_CHECK(generated.ok());
    set.queries.push_back(std::move(generated).value());
  }
  return set;
}

double MeanMs(const engine::Database& db, const QuerySet& set,
              const engine::ExecOptions& base_options) {
  double total = 0;
  for (const auto& generated : set.queries) {
    engine::ExecOptions options = base_options;
    options.cost_model = &generated.cost_model;
    util::WallTimer timer;
    auto answers = db.Execute(generated.query, options);
    total += timer.ElapsedSeconds() * 1000.0;
    APPROXQL_CHECK(answers.ok());
  }
  return total / static_cast<double>(set.queries.size());
}

void AblationA1DpCache(const engine::Database& db) {
  std::printf("=== A1: DP cache in algorithm primary (direct eval) ===\n");
  std::printf("%-10s %-12s %12s %12s\n", "renamings", "pattern", "cache-ms",
              "nocache-ms");
  const std::pair<const char*, std::string_view> patterns[] = {
      {"pattern2", gen::kPattern2},
      {"pattern3", gen::kPattern3},
  };
  for (size_t renamings : {size_t{0}, size_t{5}, size_t{10}}) {
    for (const auto& [name, pattern] : patterns) {
      QuerySet set = MakeQueries(db, pattern, renamings, 5);
      engine::ExecOptions with_cache;
      with_cache.strategy = engine::Strategy::kDirect;
      with_cache.n = SIZE_MAX;
      engine::ExecOptions no_cache = with_cache;
      no_cache.direct.use_cache = false;
      std::printf("%-10zu %-12s %12.3f %12.3f\n", renamings, name,
                  MeanMs(db, set, with_cache), MeanMs(db, set, no_cache));
    }
  }
  std::printf("\n");
}

void AblationA2KSchedule(const engine::Database& db) {
  std::printf("=== A2: incremental k schedule (schema eval, pattern 2) ===\n");
  std::printf("%-22s %-8s %12s %12s %10s\n", "schedule", "n", "mean-ms",
              "rounds", "final-k");
  struct Schedule {
    const char* name;
    size_t initial_k;
    size_t delta_k;
    double growth;
  };
  const Schedule schedules[] = {
      {"k0=4  +4 (paper)", 4, 4, 1.0},
      {"k0=16 +16 (paper)", 16, 16, 1.0},
      {"k0=64 +64 (paper)", 64, 64, 1.0},
      {"k0=16 x2", 16, 16, 2.0},
      {"k0=64 x2", 64, 64, 2.0},
  };
  QuerySet set = MakeQueries(db, gen::kPattern2, 5, 3);
  for (const auto& schedule : schedules) {
    for (size_t n : {size_t{10}, size_t{500}}) {
      engine::ExecOptions options;
      options.strategy = engine::Strategy::kSchema;
      options.n = n;
      options.schema.initial_k = schedule.initial_k;
      options.schema.delta_k = schedule.delta_k;
      options.schema.growth = schedule.growth;
      double total_rounds = 0;
      double total_k = 0;
      double total_ms = 0;
      for (const auto& generated : set.queries) {
        engine::ExecOptions per_query = options;
        per_query.cost_model = &generated.cost_model;
        engine::SchemaEvalStats stats;
        per_query.schema_stats_out = &stats;
        util::WallTimer timer;
        auto answers = db.Execute(generated.query, per_query);
        total_ms += timer.ElapsedSeconds() * 1000.0;
        APPROXQL_CHECK(answers.ok());
        total_rounds += static_cast<double>(stats.rounds);
        total_k += static_cast<double>(stats.final_k);
      }
      double queries = static_cast<double>(set.queries.size());
      std::printf("%-22s %-8zu %12.3f %12.1f %10.0f\n", schedule.name, n,
                  total_ms / queries, total_rounds / queries,
                  total_k / queries);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace approxql::bench

int main() {
  using namespace approxql::bench;
  approxql::util::SetLogLevel(approxql::util::LogLevel::kError);
  approxql::engine::Database db = BuildBenchCollection();
  auto stats = db.GetStats();
  std::printf("collection: %zu elements, schema %zu\n\n", stats.struct_nodes,
              stats.schema_nodes);
  AblationA1DpCache(db);
  AblationA2KSchedule(db);
  return 0;
}
