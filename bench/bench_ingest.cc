// Live-ingest throughput and its cost to readers: ingests synthetic
// documents into a MutableCorpus at 1 and 4 shards, measuring (a)
// sustained AddDocument docs/sec (each add is WAL-synced and published
// as a fresh generation before it acks — the honest durable rate), and
// (b) query p50/p99 against concurrently-ingesting vs frozen corpora
// (the copy-on-write generation scheme promises readers pay nothing
// beyond snapshot-pointer chasing while writes land). Results land on
// stdout and in BENCH_ingest.json for EXPERIMENTS.md.
//
// Scale with APPROXQL_BENCH_INGEST_DOCS (default 300),
// APPROXQL_BENCH_QUERIES (default 200 timed queries per mode) and
// APPROXQL_BENCH_STORE (mem | disk, default mem).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "bench/fig7_common.h"
#include "cost/cost_model.h"
#include "ingest/mutable_corpus.h"
#include "shard/sharded_database.h"
#include "storage/kv_factory.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace approxql::bench {
namespace {

constexpr size_t kElementNames = 50;
constexpr size_t kVocabulary = 1000;

cost::CostModel IngestModel() {
  cost::CostModel model;
  util::Rng rng(20020314);
  for (size_t i = 0; i < kElementNames; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(rng.UniformInt(2, 10)));
  }
  for (size_t i = 0; i < kVocabulary; ++i) {
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(rng.UniformInt(2, 10)));
  }
  return model;
}

std::string MakeDoc(util::Rng& rng) {
  std::string xml;
  size_t budget = static_cast<size_t>(rng.UniformInt(8, 40));
  std::function<void(size_t)> emit = [&](size_t depth) {
    const std::string label = "elem" + std::to_string(rng.UniformInt(
                                           0, kElementNames - 1));
    xml += "<" + label + ">";
    while (budget > 0 && depth < 4 && rng.UniformInt(0, 2) != 0) {
      --budget;
      if (rng.UniformInt(0, 1) == 0) {
        xml += "term" + std::to_string(rng.UniformInt(0, kVocabulary - 1)) +
               " ";
      } else {
        emit(depth + 1);
      }
    }
    xml += "</" + label + ">";
  };
  emit(0);
  return xml;
}

const char* const kQueries[] = {
    R"(elem1[elem3 and "term2"])",
    R"(elem7["term11" and "term42"])",
    R"(elem4[elem9["term5"]])",
    R"(elem2["term100"])",
};

struct LatencySample {
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  size_t queries = 0;
  /// Documents that landed while the timed queries ran (0 = frozen).
  size_t docs_during = 0;
};

LatencySample Summarize(std::vector<double> latencies_ms) {
  LatencySample sample;
  sample.queries = latencies_ms.size();
  if (latencies_ms.empty()) return sample;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double total = 0;
  for (double v : latencies_ms) total += v;
  sample.mean_ms = total / static_cast<double>(latencies_ms.size());
  sample.p50_ms = latencies_ms[latencies_ms.size() / 2];
  sample.p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
  return sample;
}

struct Level {
  size_t shards = 0;
  double ingest_docs_per_sec = 0;
  double ingest_mean_ms = 0;
  /// Same durable-add workload driven by kGroupWriters concurrent
  /// threads: group commit amortizes one WAL fsync over every add
  /// queued behind the leader, so this rate should beat writers x the
  /// single-writer rate divided by writers (i.e. scale superlinearly
  /// per fsync).
  double group_docs_per_sec = 0;
  double group_mean_batch = 0;
  size_t docs = 0;
  LatencySample frozen;
  LatencySample live;
};

constexpr size_t kGroupWriters = 4;

/// Mean of the ingest_group_commit_batch histogram, parsed from the
/// registry dump ("name count=N mean=M ...").
double ParseMeanBatch(const std::string& dump) {
  const auto pos = dump.find("ingest_group_commit_batch count=");
  if (pos == std::string::npos) return 0;
  const auto mean_pos = dump.find("mean=", pos);
  if (mean_pos == std::string::npos) return 0;
  return std::atof(dump.c_str() + mean_pos + 5);
}

/// Runs `count` timed queries round-robin over kQueries.
LatencySample TimedQueries(const ingest::MutableCorpus& corpus,
                           size_t count) {
  std::vector<double> latencies;
  latencies.reserve(count);
  engine::ExecOptions exec;
  exec.n = 10;
  for (size_t i = 0; i < count; ++i) {
    auto snap = corpus.snapshot();
    util::WallTimer timer;
    auto answers = snap->Execute(kQueries[i % std::size(kQueries)], exec,
                                 shard::ScatterOptions{});
    APPROXQL_CHECK(answers.ok()) << answers.status();
    latencies.push_back(timer.ElapsedSeconds() * 1000.0);
  }
  return Summarize(latencies);
}

Level RunLevel(const std::string& dir, size_t shards, size_t docs,
               size_t timed_queries, storage::StoreKind store_kind) {
  Level level;
  level.shards = shards;
  level.docs = docs;
  std::filesystem::remove_all(dir);

  ingest::MutableCorpus::Options options;
  options.data_dir = dir;
  options.num_shards = shards;
  options.store_kind = store_kind;
  options.model = IngestModel();
  auto corpus = ingest::MutableCorpus::Open(std::move(options));
  APPROXQL_CHECK(corpus.ok()) << corpus.status();

  // (a) Durable ingest rate, empty corpus upward.
  util::Rng rng(0xbe0c * (shards + 1));
  util::WallTimer ingest_timer;
  for (size_t i = 0; i < docs; ++i) {
    auto result = (*corpus)->AddDocument(MakeDoc(rng));
    APPROXQL_CHECK(result.ok()) << result.status();
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  level.ingest_docs_per_sec = static_cast<double>(docs) / ingest_seconds;
  level.ingest_mean_ms = ingest_seconds * 1000.0 / static_cast<double>(docs);

  // (a2) The same durable adds from kGroupWriters concurrent threads:
  // the WAL group-commit path batches every add queued behind the
  // leader under one fsync.
  {
    util::WallTimer group_timer;
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kGroupWriters; ++w) {
      writers.emplace_back([&, w] {
        util::Rng group_rng(0x60 + 0x9e37 * (shards * kGroupWriters + w));
        for (size_t i = 0; i < docs / kGroupWriters; ++i) {
          auto result = (*corpus)->AddDocument(MakeDoc(group_rng));
          APPROXQL_CHECK(result.ok()) << result.status();
        }
      });
    }
    for (auto& writer : writers) writer.join();
    const double group_seconds = group_timer.ElapsedSeconds();
    const size_t group_docs = (docs / kGroupWriters) * kGroupWriters;
    level.group_docs_per_sec =
        static_cast<double>(group_docs) / group_seconds;
    level.group_mean_batch = ParseMeanBatch((*corpus)->metrics()->DumpText());
  }

  // (b) Reader latency, frozen corpus.
  level.frozen = TimedQueries(**corpus, timed_queries);

  // (c) Reader latency with a writer continuously landing documents.
  std::atomic<bool> stop{false};
  std::atomic<size_t> landed{0};
  std::thread writer([&] {
    util::Rng writer_rng(0xf00d * (shards + 1));
    while (!stop.load(std::memory_order_relaxed)) {
      auto result = (*corpus)->AddDocument(MakeDoc(writer_rng));
      APPROXQL_CHECK(result.ok()) << result.status();
      landed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  level.live = TimedQueries(**corpus, timed_queries);
  stop.store(true);
  writer.join();
  level.live.docs_during = landed.load();

  (*corpus).reset();  // shutdown checkpoint needs the directory intact
  std::filesystem::remove_all(dir);
  return level;
}

int Run() {
  util::SetLogLevel(util::LogLevel::kError);
  const size_t kDocs = EnvSize("APPROXQL_BENCH_INGEST_DOCS", 300);
  const size_t kTimedQueries = EnvSize("APPROXQL_BENCH_QUERIES", 200);
  const char* store_env = std::getenv("APPROXQL_BENCH_STORE");
  const storage::StoreKind store_kind =
      (store_env != nullptr && std::string_view(store_env) == "disk")
          ? storage::StoreKind::kDisk
          : storage::StoreKind::kMem;
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("approxql_bench_ingest_" + std::to_string(::getpid())))
          .string();

  std::vector<Level> levels;
  for (size_t shards : {size_t{1}, size_t{4}}) {
    Level level = RunLevel(base + "_" + std::to_string(shards), shards,
                           kDocs, kTimedQueries, store_kind);
    std::printf(
        "shards=%zu: ingest %.1f docs/s (%.2f ms/doc durable), group "
        "commit x%zu writers %.1f docs/s (mean batch %.2f), query p50 "
        "%.3f ms p99 %.3f ms frozen | p50 %.3f ms p99 %.3f ms live (%zu "
        "docs landed during)\n",
        level.shards, level.ingest_docs_per_sec, level.ingest_mean_ms,
        kGroupWriters, level.group_docs_per_sec, level.group_mean_batch,
        level.frozen.p50_ms, level.frozen.p99_ms, level.live.p50_ms,
        level.live.p99_ms, level.live.docs_during);
    levels.push_back(level);
  }

  std::FILE* out = std::fopen("BENCH_ingest.json", "w");
  APPROXQL_CHECK(out != nullptr) << "cannot write BENCH_ingest.json";
  std::fprintf(out,
               "{\n  \"benchmark\": \"live_ingest\",\n"
               "  \"config\": {\"docs\": %zu, \"timed_queries\": %zu, "
               "\"store\": \"%s\", %s},\n  \"levels\": [\n",
               kDocs, kTimedQueries,
               store_kind == storage::StoreKind::kDisk ? "disk" : "mem",
               BenchEnvJson().c_str());
  for (size_t i = 0; i < levels.size(); ++i) {
    const Level& level = levels[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, "
        "\"ingest\": {\"docs_per_sec\": %.2f, \"mean_ms\": %.4f}, "
        "\"ingest_group_commit\": {\"writers\": %zu, "
        "\"docs_per_sec\": %.2f, \"mean_batch\": %.2f}, "
        "\"query_frozen\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"mean_ms\": %.4f}, "
        "\"query_live\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"mean_ms\": %.4f, \"docs_during\": %zu}}%s\n",
        level.shards, level.ingest_docs_per_sec, level.ingest_mean_ms,
        kGroupWriters, level.group_docs_per_sec, level.group_mean_batch,
        level.frozen.p50_ms, level.frozen.p99_ms, level.frozen.mean_ms,
        level.live.p50_ms, level.live.p99_ms, level.live.mean_ms,
        level.live.docs_during, i + 1 == levels.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_ingest.json\n");
  return 0;
}

}  // namespace
}  // namespace approxql::bench

int main() { return approxql::bench::Run(); }
