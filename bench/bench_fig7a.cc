// Reproduces Figure 7(a): evaluation times of query pattern 1, the
// "simple path query" name[name[name[term]]].
#include "bench/fig7_common.h"
#include "gen/query_generator.h"

int main() {
  return approxql::bench::RunFig7("a", "simple path query",
                                  approxql::gen::kPattern1);
}
