// Ablation A4: the indexed direct evaluation and the schema-driven
// evaluation against the no-index full-scan baseline (the "touches
// every data node" class of algorithms the paper's Section 2 argues is
// inadequate for large databases). Sweeps the collection size to show
// the scan baseline growing linearly while the indexed strategies track
// posting sizes.
#include <cstdio>

#include "baseline/scan_eval.h"
#include "bench/fig7_common.h"
#include "gen/query_generator.h"

int main() {
  using namespace approxql;
  std::printf("=== A4: indexed vs scan-style evaluation ===\n");
  std::printf("(node-dp = dense per-node dynamic programming [16]-style;\n"
              " scan-fetch = list algebra with index replaced by scans)\n");
  std::printf("%-10s %-12s %12s %12s %12s %12s\n", "elements", "pattern",
              "node-dp-ms", "scan-ms", "direct-ms", "schema-ms");
  for (size_t elements : {size_t{10000}, size_t{30000}, size_t{60000}}) {
    gen::XmlGenOptions gen_options;
    gen_options.seed = 31;
    gen_options.total_elements = elements;
    gen_options.element_names = 100;
    gen_options.vocabulary = elements / 10;
    gen_options.words_per_element = 10.0;
    gen::XmlGenerator generator(gen_options);
    auto tree = generator.GenerateTree(cost::CostModel());
    APPROXQL_CHECK(tree.ok());
    auto db = engine::Database::FromDataTree(std::move(tree).value(),
                                             cost::CostModel());
    APPROXQL_CHECK(db.ok());

    const std::pair<const char*, std::string_view> patterns[] = {
        {"pattern1", gen::kPattern1},
        {"pattern2", gen::kPattern2},
    };
    for (const auto& [name, pattern] : patterns) {
      gen::QueryGenOptions q_options;
      q_options.seed = 77;
      q_options.renamings_per_label = 5;
      gen::QueryGenerator qgen(*db, q_options);
      std::vector<gen::GeneratedQuery> queries;
      for (int i = 0; i < 5; ++i) {
        auto generated = qgen.Generate(pattern);
        APPROXQL_CHECK(generated.ok());
        queries.push_back(std::move(generated).value());
      }
      double means[3] = {0, 0, 0};
      const engine::Strategy strategies[] = {engine::Strategy::kFullScan,
                                             engine::Strategy::kDirect,
                                             engine::Strategy::kSchema};
      for (int s = 0; s < 3; ++s) {
        for (const auto& generated : queries) {
          engine::ExecOptions options;
          options.strategy = strategies[s];
          options.n = 10;
          options.cost_model = &generated.cost_model;
          util::WallTimer timer;
          auto answers = db->Execute(generated.query, options);
          means[s] += timer.ElapsedSeconds() * 1000.0;
          APPROXQL_CHECK(answers.ok());
        }
        means[s] /= static_cast<double>(queries.size());
      }
      // The node-at-a-time DP baseline runs outside Database (it is a
      // deliberately index-free implementation).
      double node_dp_ms = 0;
      engine::EncodedTree view = engine::EncodedTree::Of(db->tree());
      for (const auto& generated : queries) {
        auto expanded =
            query::ExpandedQuery::Build(generated.query, generated.cost_model);
        APPROXQL_CHECK(expanded.ok());
        baseline::ScanEvaluator node_dp(view, db->tree().labels());
        util::WallTimer timer;
        auto answers = node_dp.BestN(*expanded, 10);
        node_dp_ms += timer.ElapsedSeconds() * 1000.0;
        (void)answers;
      }
      node_dp_ms /= static_cast<double>(queries.size());
      std::printf("%-10zu %-12s %12.3f %12.3f %12.3f %12.3f\n", elements,
                  name, node_dp_ms, means[0], means[1], means[2]);
    }
  }
  return 0;
}
