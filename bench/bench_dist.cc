// Distributed serving sweep: one ShardRouter scatter-gathering over
// 1/2/4 shard servers — real net::Server processes-equivalent (each its
// own QueryService + event loop) on TCP loopback — driven by concurrent
// closed-loop clients. Each level runs twice:
//
//   healthy            every shard up for the whole run.
//   one_shard_killed   the last shard's server is shut down at the
//                      halfway mark; the router degrades (answers
//                      flagged, missing shard named) and its health
//                      machine walks the dead shard DOWN so later
//                      requests stop burning the attempt timeout.
//
// Reports throughput, latency percentiles, degraded/error counts and
// retry totals per (level, scenario) on stdout and in BENCH_dist.json
// for EXPERIMENTS.md. With one shard of one killed there is nothing to
// degrade to — those requests fail kUnavailable, and the numbers show
// what the cluster's floor looks like.
//
// Scale with APPROXQL_BENCH_ELEMENTS (default 30000),
// APPROXQL_BENCH_QUERIES (default 16), APPROXQL_BENCH_CLIENTS
// (default 8), APPROXQL_BENCH_ROUNDS (default 4).
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "bench/fig7_common.h"
#include "dist/shard_router.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/sharded_database.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace approxql::bench {
namespace {

using dist::RouterOptions;
using dist::ShardRouter;
using engine::Database;
using engine::Strategy;
using net::Server;
using net::ServerOptions;
using service::QueryService;
using service::ServiceOptions;
using shard::ShardedDatabase;

struct ShardServer {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;
};

struct Sample {
  size_t shards = 0;
  bool killed = false;
  size_t requests = 0;
  size_t degraded = 0;
  size_t errors = 0;
  uint64_t retries = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  uint64_t max_us = 0;
};

Sample RunScenario(const ShardedDatabase& sharded,
                   const std::vector<std::string>& queries, size_t clients,
                   size_t rounds, bool kill_one) {
  const size_t num_shards = sharded.num_shards();
  std::vector<ShardServer> servers(num_shards);
  RouterOptions router_options;
  for (size_t i = 0; i < num_shards; ++i) {
    ShardServer& s = servers[i];
    s.service = std::make_unique<QueryService>(
        sharded.shard(i), ServiceOptions{.num_threads = 2,
                                         .queue_capacity = 1024,
                                         .cache_capacity = 0});
    ServerOptions server_options;
    server_options.shard.enabled = true;
    server_options.shard.fingerprint = sharded.LayoutFingerprint();
    server_options.shard.shard_index = static_cast<uint32_t>(i);
    s.server = std::make_unique<Server>(*s.service, sharded.shard(i),
                                        server_options);
    auto started = s.server->Start();
    APPROXQL_CHECK(started.ok()) << started;
    router_options.shards.push_back({"127.0.0.1", s.server->port()});
  }
  // Fail fast enough that the killed-shard scenario measures the
  // degraded path, not the timeout; the health probe then takes the
  // dead shard out of the hot path entirely.
  router_options.attempt_deadline_ms = 500;
  router_options.max_retries = 1;
  router_options.retry_backoff_ms = 5;
  router_options.retry_backoff_cap_ms = 20;
  router_options.health_period_ms = 50;
  router_options.ping_deadline_ms = 100;
  ShardRouter router(sharded, router_options);
  auto started = router.Start();
  APPROXQL_CHECK(started.ok()) << started;

  const size_t total = queries.size() * rounds;
  std::atomic<size_t> next{0};
  std::atomic<bool> kill_fired{false};
  std::atomic<size_t> degraded{0}, errors{0};
  std::atomic<uint64_t> retries{0};
  std::vector<util::Histogram> latencies(clients);
  util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        if (kill_one && i >= total / 2 &&
            !kill_fired.exchange(true, std::memory_order_acq_rel)) {
          // SIGTERM-equivalent mid-run: the victim's event loop stops
          // and its connections drop. Evaluations already on its pool
          // finish and are discarded.
          servers.back().server->Shutdown(/*drain=*/false);
        }
        util::WallTimer call_timer;
        auto routed = router.Execute(queries[i % queries.size()],
                                     Strategy::kSchema, 10,
                                     /*deadline_ms=*/0);
        latencies[c].Record(
            static_cast<uint64_t>(call_timer.ElapsedSeconds() * 1e6));
        if (!routed.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (routed->degraded) degraded.fetch_add(1, std::memory_order_relaxed);
        retries.fetch_add(routed->retries, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  double seconds = timer.ElapsedSeconds();
  router.Shutdown();
  for (ShardServer& s : servers) {
    if (s.server) s.server->Shutdown(/*drain=*/false);
  }

  Sample sample;
  sample.shards = num_shards;
  sample.killed = kill_one;
  sample.requests = total;
  sample.degraded = degraded.load();
  sample.errors = errors.load();
  sample.retries = retries.load();
  sample.qps = seconds > 0 ? static_cast<double>(total) / seconds : 0;
  util::Histogram merged;
  for (const util::Histogram& h : latencies) merged.Merge(h);
  sample.p50_us = merged.Quantile(0.50);
  sample.p90_us = merged.Quantile(0.90);
  sample.p99_us = merged.Quantile(0.99);
  sample.max_us = merged.max();
  return sample;
}

int Run() {
  util::SetLogLevel(util::LogLevel::kError);
  gen::XmlGenOptions gen_options;
  gen_options.seed = 20020314;
  gen_options.total_elements = EnvSize("APPROXQL_BENCH_ELEMENTS", 30000);
  gen_options.vocabulary =
      std::max<size_t>(gen_options.total_elements / 10, 100);

  util::WallTimer build_timer;
  gen::XmlGenerator generator(gen_options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto built =
      Database::FromDataTree(std::move(tree).value(), cost::CostModel());
  APPROXQL_CHECK(built.ok()) << built.status();
  Database db = std::move(built).value();
  auto stats = db.GetStats();
  std::printf("collection: %zu elements, %zu labels (built in %.1fs)\n",
              stats.struct_nodes, stats.distinct_labels,
              build_timer.ElapsedSeconds());

  const size_t kQueries = EnvSize("APPROXQL_BENCH_QUERIES", 16);
  const size_t kClients = EnvSize("APPROXQL_BENCH_CLIENTS", 8);
  const size_t kRounds = EnvSize("APPROXQL_BENCH_ROUNDS", 4);
  gen::QueryGenOptions q_options;
  q_options.seed = 42;
  gen::QueryGenerator qgen(db, q_options);
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3};
  std::vector<std::string> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    auto generated = qgen.Generate(kPatterns[i % 3]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated->text));
  }

  const size_t kLevels[] = {1, 2, 4};
  std::vector<Sample> samples;
  std::printf("%-7s %-10s %8s %10s %10s %10s %10s %9s %7s %7s\n", "shards",
              "scenario", "qps", "p50-us", "p90-us", "p99-us", "max-us",
              "degraded", "errors", "retries");
  for (size_t level : kLevels) {
    auto partitioned =
        ShardedDatabase::Partition(db.tree(), db.cost_model(), level);
    APPROXQL_CHECK(partitioned.ok()) << partitioned.status();
    ShardedDatabase sharded = std::move(partitioned).value();
    for (bool kill_one : {false, true}) {
      Sample sample = RunScenario(sharded, queries, kClients, kRounds,
                                  kill_one);
      samples.push_back(sample);
      std::printf(
          "%-7zu %-10s %8.1f %10.0f %10.0f %10.0f %10llu %9zu %7zu %7llu\n",
          sample.shards, sample.killed ? "kill-one" : "healthy", sample.qps,
          sample.p50_us, sample.p90_us, sample.p99_us,
          static_cast<unsigned long long>(sample.max_us), sample.degraded,
          sample.errors, static_cast<unsigned long long>(sample.retries));
    }
  }

  std::FILE* out = std::fopen("BENCH_dist.json", "w");
  APPROXQL_CHECK(out != nullptr) << "cannot write BENCH_dist.json";
  std::fprintf(out,
               "{\n  \"benchmark\": \"dist_scatter_gather\",\n"
               "  \"config\": {\"elements\": %zu, \"queries\": %zu, "
               "\"clients\": %zu, \"rounds\": %zu, %s},\n  \"levels\": [\n",
               gen_options.total_elements, queries.size(), kClients, kRounds,
               bench::BenchEnvJson().c_str());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, \"scenario\": \"%s\", \"requests\": %zu, "
        "\"qps\": %.2f, \"p50_us\": %.0f, \"p90_us\": %.0f, "
        "\"p99_us\": %.0f, \"max_us\": %llu, \"degraded\": %zu, "
        "\"errors\": %zu, \"retries\": %llu}%s\n",
        s.shards, s.killed ? "one_shard_killed" : "healthy", s.requests,
        s.qps, s.p50_us, s.p90_us, s.p99_us,
        static_cast<unsigned long long>(s.max_us), s.degraded, s.errors,
        static_cast<unsigned long long>(s.retries),
        i + 1 == samples.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_dist.json\n");

  // Healthy runs must not degrade or error; killed runs may do both.
  size_t healthy_bad = 0;
  for (const Sample& s : samples) {
    if (!s.killed) healthy_bad += s.degraded + s.errors;
  }
  return healthy_bad == 0 ? 0 : 1;
}

}  // namespace
}  // namespace approxql::bench

int main() { return approxql::bench::Run(); }
