// Wire-level serving benchmark: an in-process net::Server over a
// synthetic collection, driven by 1/8/64 concurrent closed-loop client
// connections (one net::Client each). Reports throughput and wire
// latency percentiles per level — the delta against bench_parallel's
// in-process numbers is the cost of the network layer itself (framing,
// CRC, epoll, syscalls). Results land on stdout and in BENCH_net.json
// for EXPERIMENTS.md.
//
// Scale with APPROXQL_BENCH_ELEMENTS (default 60000) and
// APPROXQL_BENCH_QUERIES (default 24); APPROXQL_BENCH_ROUNDS (default
// 3) repeats of the workload per level.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/fig7_common.h"
#include "bench/bench_env.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace approxql::bench {
namespace {

using engine::Database;
using net::Client;
using net::ClientOptions;
using net::Server;
using net::ServerOptions;
using net::WireRequest;
using service::QueryService;
using service::ServiceOptions;

struct Sample {
  size_t connections = 0;
  size_t requests = 0;
  size_t errors = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  uint64_t max_us = 0;
};

int Run() {
  util::SetLogLevel(util::LogLevel::kError);
  gen::XmlGenOptions gen_options;
  gen_options.seed = 20020314;
  gen_options.total_elements = EnvSize("APPROXQL_BENCH_ELEMENTS", 60000);
  gen_options.vocabulary =
      std::max<size_t>(gen_options.total_elements / 10, 100);

  util::WallTimer build_timer;
  gen::XmlGenerator generator(gen_options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto built =
      Database::FromDataTree(std::move(tree).value(), cost::CostModel());
  APPROXQL_CHECK(built.ok()) << built.status();
  Database db = std::move(built).value();
  auto stats = db.GetStats();
  std::printf("collection: %zu elements, %zu labels (built in %.1fs)\n",
              stats.struct_nodes, stats.distinct_labels,
              build_timer.ElapsedSeconds());

  const size_t kQueries = EnvSize("APPROXQL_BENCH_QUERIES", 24);
  const size_t kRounds = EnvSize("APPROXQL_BENCH_ROUNDS", 3);
  gen::QueryGenOptions q_options;
  q_options.seed = 42;
  gen::QueryGenerator qgen(db, q_options);
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3};
  std::vector<std::string> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    auto generated = qgen.Generate(kPatterns[i % 3]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated->text));
  }

  ServiceOptions service_options;
  service_options.num_threads = 8;
  service_options.queue_capacity = 1024;
  service_options.cache_capacity = 0;  // measure evaluation + wire, not cache
  QueryService service(db, service_options);
  Server server(service, db, ServerOptions{});
  auto started = server.Start();
  APPROXQL_CHECK(started.ok()) << started;

  const size_t kLevels[] = {1, 8, 64};
  std::vector<Sample> samples;
  std::printf("%-12s %10s %10s %10s %10s %10s %7s\n", "connections", "qps",
              "p50-us", "p90-us", "p99-us", "max-us", "errors");
  for (size_t level : kLevels) {
    const size_t total = queries.size() * kRounds;
    std::atomic<size_t> next{0};
    std::atomic<size_t> errors{0};
    std::vector<util::Histogram> latencies(level);
    util::WallTimer sweep_timer;
    std::vector<std::thread> threads;
    threads.reserve(level);
    for (size_t c = 0; c < level; ++c) {
      threads.emplace_back([&, c] {
        ClientOptions client_options;
        client_options.port = server.port();
        Client client(client_options);
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) break;
          WireRequest request;
          request.query = queries[i % queries.size()];
          request.n = 10;
          util::WallTimer timer;
          auto response = client.Call(request);
          latencies[c].Record(
              static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
          if (!response.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    Sample sample;
    sample.connections = level;
    sample.requests = total;
    sample.errors = errors.load();
    double seconds = sweep_timer.ElapsedSeconds();
    sample.qps = seconds > 0 ? static_cast<double>(total) / seconds : 0;
    util::Histogram merged;
    for (const util::Histogram& h : latencies) merged.Merge(h);
    sample.p50_us = merged.Quantile(0.50);
    sample.p90_us = merged.Quantile(0.90);
    sample.p99_us = merged.Quantile(0.99);
    sample.max_us = merged.max();
    samples.push_back(sample);
    std::printf("%-12zu %10.1f %10.0f %10.0f %10.0f %10llu %7zu\n", level,
                sample.qps, sample.p50_us, sample.p90_us, sample.p99_us,
                static_cast<unsigned long long>(sample.max_us),
                sample.errors);
  }

  std::FILE* out = std::fopen("BENCH_net.json", "w");
  APPROXQL_CHECK(out != nullptr) << "cannot write BENCH_net.json";
  std::fprintf(out,
               "{\n  \"benchmark\": \"wire_serving\",\n"
               "  \"config\": {\"elements\": %zu, \"queries\": %zu, "
               "\"shards\": 1, %s},\n"
               "  \"elements\": %zu,\n  \"queries\": %zu,\n"
               "  \"rounds\": %zu,\n  \"levels\": [\n",
               gen_options.total_elements, queries.size(),
               bench::BenchEnvJson().c_str(),
               gen_options.total_elements, queries.size(), kRounds);
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"connections\": %zu, \"requests\": %zu, "
                 "\"qps\": %.2f, \"p50_us\": %.0f, \"p90_us\": %.0f, "
                 "\"p99_us\": %.0f, \"max_us\": %llu, \"errors\": %zu}%s\n",
                 s.connections, s.requests, s.qps, s.p50_us, s.p90_us,
                 s.p99_us, static_cast<unsigned long long>(s.max_us),
                 s.errors, i + 1 == samples.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_net.json\n");

  server.Shutdown(/*drain=*/true);
  size_t total_errors = 0;
  for (const Sample& s : samples) total_errors += s.errors;
  return total_errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace approxql::bench

int main() { return approxql::bench::Run(); }
