// Build/host provenance stamped into every BENCH_*.json, so the perf
// trajectory across PRs is attributable: a regression plot must be able
// to tell a sanitizer build on a loaded 2-core CI runner from a release
// build on a 32-core box, and name the exact commit either came from.
//
// Usage in a JSON writer (inside the "config" object):
//
//   std::fprintf(out, "  \"config\": {%s, ...},\n",
//                approxql::bench::BenchEnvJson().c_str());
#ifndef APPROXQL_BENCH_BENCH_ENV_H_
#define APPROXQL_BENCH_BENCH_ENV_H_

#include <cstdio>
#include <string>
#include <thread>

#ifndef APPROXQL_BUILD_TYPE
#define APPROXQL_BUILD_TYPE "unknown"
#endif
#ifndef APPROXQL_GIT_SHA
#define APPROXQL_GIT_SHA "unknown"
#endif

namespace approxql::bench {

/// The shared stamp as JSON object fields (no braces), for embedding in
/// a benchmark's "config" object:
///   "build_type": "Release", "git_sha": "1839fc8", "cpus": 16
inline std::string BenchEnvJson() {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "\"build_type\": \"%s\", \"git_sha\": \"%s\", \"cpus\": %u",
                APPROXQL_BUILD_TYPE, APPROXQL_GIT_SHA,
                std::thread::hardware_concurrency());
  return buffer;
}

}  // namespace approxql::bench

#endif  // APPROXQL_BENCH_BENCH_ENV_H_
