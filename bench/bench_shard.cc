// Sharding sweep: partitions the bench collection into 1/2/4/8 shards
// and measures (a) stored-postings lock contention under concurrent
// direct-strategy clients, against a single-shared-store baseline, and
// (b) scatter-gather schema top-k latency with and without the shared
// cost bound. Results land on stdout and in BENCH_shard.json for
// EXPERIMENTS.md.
//
// Contention is the headline: with one shared StoredLabelIndex every
// concurrent fetch serializes on one mutex; with per-shard stores the
// same workload spreads across N disjoint mutexes, so lock_waits (and
// the per-shard maximum in particular) should drop well below the
// baseline once shards >= clients. Full queries spend most of their
// time in the list algebra *outside* the store mutex, so phase (a)'s
// counters understate the effect (on a single-core container they sit
// near zero for both layouts); phase (c) therefore stresses the fetch
// path itself — every client fetches every posting through a cold
// StoredLabelIndex each round, so the decode work runs under the lock
// and the counters measure exactly the serialization the sharded
// layout removes.
//
// Scale with APPROXQL_BENCH_ELEMENTS (default 60000),
// APPROXQL_BENCH_QUERIES (default 16), APPROXQL_BENCH_CLIENTS
// (default 4).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/fig7_common.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "bench/bench_env.h"
#include "index/stored_label_index.h"
#include "service/thread_pool.h"
#include "shard/sharded_database.h"
#include "storage/mem_kv_store.h"
#include "util/timer.h"

namespace approxql::bench {
namespace {

using engine::Database;
using engine::ExecOptions;
using shard::ScatterOptions;
using shard::ScatterStats;
using shard::ShardedDatabase;

// Two renamable labels and a nested term: enough approximation to make
// the schema strategy iterate and the direct strategy fetch several
// postings per query.
constexpr std::string_view kPattern = "name[name[term] and term]";

struct LockStats {
  uint64_t waits_total = 0;
  uint64_t wait_us_total = 0;
  uint64_t waits_max_shard = 0;
};

struct DirectSample {
  double total_seconds = 0;
  double qps = 0;
  LockStats locks;
};

struct SchemaSample {
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms_no_bound = 0;
  size_t answers = 0;
};

struct StressSample {
  double total_seconds = 0;
  LockStats locks;
};

/// Every (type, label) pair an index holds — the full fetch surface.
std::vector<std::pair<NodeType, doc::LabelId>> AllLabels(
    const index::LabelIndex& ix) {
  std::vector<std::pair<NodeType, doc::LabelId>> labels;
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    labels.reserve(labels.size() + ix.postings(type).size());
    for (const auto& [label, posting] : ix.postings(type)) {
      labels.emplace_back(type, label);
    }
  }
  return labels;
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

/// `clients` threads each run every query `rounds` times through `run`.
template <typename Fn>
double RunClients(size_t clients, const Fn& run) {
  util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&run, c] { run(c); });
  }
  for (auto& t : threads) t.join();
  return timer.ElapsedSeconds();
}

int Run() {
  util::SetLogLevel(util::LogLevel::kError);
  const size_t kClients = EnvSize("APPROXQL_BENCH_CLIENTS", 4);
  const size_t kQueries = EnvSize("APPROXQL_BENCH_QUERIES", 16);
  const int kRounds = 3;

  util::WallTimer build_timer;
  Database db = BuildBenchCollection();
  auto stats = db.GetStats();
  std::printf(
      "collection: %zu elements, %zu words, %zu labels (built in %.1fs)\n",
      stats.struct_nodes, stats.text_nodes, stats.distinct_labels,
      build_timer.ElapsedSeconds());

  gen::QueryGenOptions q_options;
  q_options.seed = 271828;
  q_options.renamings_per_label = 3;
  gen::QueryGenerator qgen(db, q_options);
  std::vector<gen::GeneratedQuery> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    auto generated = qgen.Generate(kPattern);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated).value());
  }

  // --- Baseline: every client fetches through ONE shared stored index.
  DirectSample baseline;
  {
    storage::MemKvStore store;
    APPROXQL_CHECK(db.label_index().PersistTo(&store, "ix#").ok());
    index::StoredLabelIndex shared(&store, "ix#");
    baseline.total_seconds = RunClients(kClients, [&](size_t) {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& generated : queries) {
          ExecOptions exec;
          exec.strategy = engine::Strategy::kDirect;
          exec.n = 10;
          exec.cost_model = &generated.cost_model;
          exec.posting_source = &shared;
          APPROXQL_CHECK(db.Execute(generated.query, exec).ok());
        }
      }
    });
    baseline.qps =
        static_cast<double>(kClients * kRounds * queries.size()) /
        baseline.total_seconds;
    baseline.locks.waits_total = shared.lock_waits();
    baseline.locks.wait_us_total = shared.lock_wait_us();
    baseline.locks.waits_max_shard = shared.lock_waits();
  }
  std::printf(
      "baseline (single shared store, %zu clients): %.1f qps, "
      "%llu lock waits, %llu us waiting\n",
      kClients, baseline.qps,
      static_cast<unsigned long long>(baseline.locks.waits_total),
      static_cast<unsigned long long>(baseline.locks.wait_us_total));

  // --- (c) baseline for the cold fetch-path stress: per round a FRESH
  // shared StoredLabelIndex (empty cache), so every posting decode
  // happens under the store mutex while all clients hammer it.
  const int kStressRounds = 6;
  StressSample stress_baseline;
  {
    storage::MemKvStore store;
    APPROXQL_CHECK(db.label_index().PersistTo(&store, "ix#").ok());
    const auto labels = AllLabels(db.label_index());
    util::WallTimer timer;
    for (int round = 0; round < kStressRounds; ++round) {
      index::StoredLabelIndex cold(&store, "ix#");
      RunClients(kClients, [&](size_t) {
        for (const auto& [type, label] : labels) {
          (void)cold.Fetch(type, label);
        }
      });
      stress_baseline.locks.waits_total += cold.lock_waits();
      stress_baseline.locks.wait_us_total += cold.lock_wait_us();
    }
    // One store is one "shard": the per-shard maximum IS the total.
    stress_baseline.locks.waits_max_shard = stress_baseline.locks.waits_total;
    stress_baseline.total_seconds = timer.ElapsedSeconds();
  }
  std::printf(
      "stress baseline (cold shared store, %zu clients x %d rounds): "
      "%llu lock waits, %llu us waiting, %.2fs\n",
      kClients, kStressRounds,
      static_cast<unsigned long long>(stress_baseline.locks.waits_total),
      static_cast<unsigned long long>(stress_baseline.locks.wait_us_total),
      stress_baseline.total_seconds);

  const size_t kLevels[] = {1, 2, 4, 8};
  std::vector<DirectSample> direct_samples;
  std::vector<SchemaSample> schema_samples;
  std::vector<StressSample> stress_samples;
  std::printf("%-7s %10s %12s %12s %10s %10s %12s %14s %12s %14s\n",
              "shards", "dir-qps", "lock-waits", "wait-us", "topk-ms",
              "p99-ms", "nobound-ms", "stress-waits", "stress-max",
              "stress-us");
  for (size_t level : kLevels) {
    auto partitioned =
        ShardedDatabase::Partition(db.tree(), db.cost_model(), level);
    APPROXQL_CHECK(partitioned.ok()) << partitioned.status();
    ShardedDatabase sharded = std::move(partitioned).value();

    // (a) Concurrent direct-strategy clients; scatter runs inline per
    // client so every lock wait comes from cross-client contention.
    DirectSample ds;
    ds.total_seconds = RunClients(kClients, [&](size_t) {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& generated : queries) {
          ExecOptions exec;
          exec.strategy = engine::Strategy::kDirect;
          exec.n = 10;
          exec.cost_model = &generated.cost_model;
          ScatterOptions scatter;
          APPROXQL_CHECK(sharded.Execute(generated.query, exec, scatter).ok());
        }
      }
    });
    ds.qps = static_cast<double>(kClients * kRounds * queries.size()) /
             ds.total_seconds;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      uint64_t waits = sharded.shard_postings(s).lock_waits();
      ds.locks.waits_total += waits;
      ds.locks.wait_us_total += sharded.shard_postings(s).lock_wait_us();
      ds.locks.waits_max_shard = std::max(ds.locks.waits_max_shard, waits);
    }
    direct_samples.push_back(ds);

    // (b) Scatter-gather schema top-k on a pool, shared bound on/off.
    SchemaSample ss;
    {
      service::ThreadPool pool({/*num_threads=*/kClients,
                                /*queue_capacity=*/256});
      for (bool bound : {true, false}) {
        std::vector<double> latencies_ms;
        for (int round = 0; round < kRounds; ++round) {
          for (const auto& generated : queries) {
            ExecOptions exec;
            exec.strategy = engine::Strategy::kSchema;
            exec.n = 10;
            exec.cost_model = &generated.cost_model;
            ScatterOptions scatter;
            scatter.pool = &pool;
            scatter.parallelism = kClients;
            scatter.share_cost_bound = bound;
            ScatterStats sstats;
            util::WallTimer timer;
            auto answers = sharded.Execute(generated.query, exec, scatter,
                                           &sstats);
            latencies_ms.push_back(timer.ElapsedSeconds() * 1000.0);
            APPROXQL_CHECK(answers.ok()) << answers.status();
            if (bound && round == 0) ss.answers += answers->size();
          }
        }
        double total = 0;
        for (double ms : latencies_ms) total += ms;
        double mean = total / static_cast<double>(latencies_ms.size());
        if (bound) {
          ss.mean_ms = mean;
          std::sort(latencies_ms.begin(), latencies_ms.end());
          ss.p50_ms = Percentile(latencies_ms, 0.50);
          ss.p99_ms = Percentile(latencies_ms, 0.99);
        } else {
          ss.mean_ms_no_bound = mean;
        }
      }
    }
    schema_samples.push_back(ss);

    // (c) Cold fetch-path stress: fresh per-shard StoredLabelIndex
    // wrappers every round so all posting decodes run under the shard
    // mutexes; clients start on different shards (as the scatter's task
    // handout staggers them) and sweep the full fetch surface.
    StressSample stress;
    {
      std::vector<std::unique_ptr<storage::MemKvStore>> stores;
      std::vector<std::vector<std::pair<NodeType, doc::LabelId>>> labels;
      for (size_t s = 0; s < level; ++s) {
        stores.push_back(std::make_unique<storage::MemKvStore>());
        APPROXQL_CHECK(sharded.shard(s)
                           .label_index()
                           .PersistTo(stores.back().get(), "ix#")
                           .ok());
        labels.push_back(AllLabels(sharded.shard(s).label_index()));
      }
      std::vector<uint64_t> waits_per_shard(level, 0);
      util::WallTimer timer;
      for (int round = 0; round < kStressRounds; ++round) {
        std::vector<std::unique_ptr<index::StoredLabelIndex>> cold;
        for (size_t s = 0; s < level; ++s) {
          cold.push_back(std::make_unique<index::StoredLabelIndex>(
              stores[s].get(), "ix#"));
        }
        RunClients(kClients, [&](size_t c) {
          for (size_t off = 0; off < level; ++off) {
            size_t s = (c + off) % level;
            for (const auto& [type, label] : labels[s]) {
              (void)cold[s]->Fetch(type, label);
            }
          }
        });
        for (size_t s = 0; s < level; ++s) {
          waits_per_shard[s] += cold[s]->lock_waits();
          stress.locks.wait_us_total += cold[s]->lock_wait_us();
        }
      }
      stress.total_seconds = timer.ElapsedSeconds();
      for (uint64_t waits : waits_per_shard) {
        stress.locks.waits_total += waits;
        stress.locks.waits_max_shard =
            std::max(stress.locks.waits_max_shard, waits);
      }
    }
    stress_samples.push_back(stress);

    std::printf(
        "%-7zu %10.1f %12llu %12llu %10.3f %10.3f %12.3f %14llu %12llu "
        "%14llu\n",
        level, ds.qps,
        static_cast<unsigned long long>(ds.locks.waits_total),
        static_cast<unsigned long long>(ds.locks.wait_us_total), ss.mean_ms,
        ss.p99_ms, ss.mean_ms_no_bound,
        static_cast<unsigned long long>(stress.locks.waits_total),
        static_cast<unsigned long long>(stress.locks.waits_max_shard),
        static_cast<unsigned long long>(stress.locks.wait_us_total));
  }

  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  APPROXQL_CHECK(out != nullptr) << "cannot write BENCH_shard.json";
  std::fprintf(out,
               "{\n  \"benchmark\": \"shard_scatter_gather\",\n"
               "  \"config\": {\"clients\": %zu, \"parallelism\": %zu, "
               "\"elements\": %zu, \"queries\": %zu, \"rounds\": %d, "
               "\"stress_rounds\": %d, %s},\n",
               kClients, kClients, stats.struct_nodes, queries.size(),
               kRounds, kStressRounds, bench::BenchEnvJson().c_str());
  std::fprintf(
      out,
      "  \"single_store_baseline\": {\"qps\": %.2f, "
      "\"lock_waits\": %llu, \"lock_wait_us\": %llu, "
      "\"stress\": {\"lock_waits\": %llu, \"lock_waits_max_shard\": %llu, "
      "\"lock_wait_us\": %llu, \"seconds\": %.3f}},\n"
      "  \"levels\": [\n",
      baseline.qps,
      static_cast<unsigned long long>(baseline.locks.waits_total),
      static_cast<unsigned long long>(baseline.locks.wait_us_total),
      static_cast<unsigned long long>(stress_baseline.locks.waits_total),
      static_cast<unsigned long long>(stress_baseline.locks.waits_max_shard),
      static_cast<unsigned long long>(stress_baseline.locks.wait_us_total),
      stress_baseline.total_seconds);
  for (size_t i = 0; i < direct_samples.size(); ++i) {
    const DirectSample& ds = direct_samples[i];
    const SchemaSample& ss = schema_samples[i];
    const StressSample& st = stress_samples[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, \"direct\": {\"qps\": %.2f, "
        "\"lock_waits_total\": %llu, \"lock_waits_max_shard\": %llu, "
        "\"lock_wait_us_total\": %llu}, \"schema\": {\"mean_ms\": %.4f, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms_no_bound\": %.4f, "
        "\"answers_per_pass\": %zu}, \"stress\": {\"lock_waits\": %llu, "
        "\"lock_waits_max_shard\": %llu, \"lock_wait_us\": %llu, "
        "\"seconds\": %.3f}}%s\n",
        kLevels[i], ds.qps,
        static_cast<unsigned long long>(ds.locks.waits_total),
        static_cast<unsigned long long>(ds.locks.waits_max_shard),
        static_cast<unsigned long long>(ds.locks.wait_us_total), ss.mean_ms,
        ss.p50_ms, ss.p99_ms, ss.mean_ms_no_bound, ss.answers,
        static_cast<unsigned long long>(st.locks.waits_total),
        static_cast<unsigned long long>(st.locks.waits_max_shard),
        static_cast<unsigned long long>(st.locks.wait_us_total),
        st.total_seconds,
        i + 1 == direct_samples.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_shard.json\n");
  return 0;
}

}  // namespace
}  // namespace approxql::bench

int main() { return approxql::bench::Run(); }
