// Intra-query parallelism sweep: evaluates an or-heavy workload (eight
// disjuncts per query after separation) through the QueryService at
// parallelism 1/2/4/8 and reports throughput plus latency percentiles
// per level, with speedup relative to the serial run. Results land on
// stdout and in BENCH_parallel.json for EXPERIMENTS.md.
//
// Scale with APPROXQL_BENCH_ELEMENTS (default 100000) and
// APPROXQL_BENCH_QUERIES (default 24).
//
// Speedup is bounded by the machine's core count, so each level records
// its effective cores (min(cpus, parallelism)) and the speedup VERDICT
// — pass/fail on "parallelism 4 beats serial" — is only issued when the
// host actually has >= 4 cores; on smaller hosts it is SKIPPED, never
// conflating oversubscription with fan-out overhead. A FAIL verdict is
// the process exit code, so CI can run this binary directly as the
// multi-core speedup smoke.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "bench/fig7_common.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"
#include "util/timer.h"

namespace approxql::bench {
namespace {

using engine::Database;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryService;
using service::ServiceOptions;

// Three independent binary "or"s: 2^3 disjuncts in the separated
// representation, the fan-out the parallel path distributes.
constexpr std::string_view kOrHeavyPattern =
    "name[(name[term] or term) and (term or term) and (name[term] or term)]";

struct Sample {
  size_t parallelism = 0;
  /// Cores this level can actually use: min(host cpus, parallelism).
  size_t effective_cores = 0;
  double total_seconds = 0;
  double qps = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double speedup = 0;
  /// The measured speedup only indicts the scheduler when the host has
  /// as many cores as the level asks for.
  bool speedup_meaningful = false;
  uint64_t parallel_tasks = 0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

int Run() {
  util::SetLogLevel(util::LogLevel::kError);
  gen::XmlGenOptions gen_options;
  gen_options.seed = 20020314;
  gen_options.total_elements = EnvSize("APPROXQL_BENCH_ELEMENTS", 100000);
  gen_options.element_names = 100;
  gen_options.vocabulary =
      std::max<size_t>(gen_options.total_elements / 10, 100);
  gen_options.words_per_element = 10.0;
  gen_options.zipf_theta = 1.0;
  gen_options.template_nodes = 150;

  util::WallTimer build_timer;
  gen::XmlGenerator generator(gen_options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto built =
      Database::FromDataTree(std::move(tree).value(), cost::CostModel());
  APPROXQL_CHECK(built.ok()) << built.status();
  Database db = std::move(built).value();
  auto stats = db.GetStats();
  std::printf(
      "collection: %zu elements, %zu words, %zu labels (built in %.1fs)\n",
      stats.struct_nodes, stats.text_nodes, stats.distinct_labels,
      build_timer.ElapsedSeconds());

  const size_t kQueries = EnvSize("APPROXQL_BENCH_QUERIES", 24);
  gen::QueryGenOptions q_options;
  q_options.seed = 42;
  q_options.renamings_per_label = 3;
  gen::QueryGenerator qgen(db, q_options);
  std::vector<gen::GeneratedQuery> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    auto generated = qgen.Generate(kOrHeavyPattern);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated).value());
  }

  const size_t cpus = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t kLevels[] = {1, 2, 4, 8};
  std::vector<Sample> samples;
  std::printf("host: %zu cpu%s\n", cpus, cpus == 1 ? "" : "s");
  std::printf("%-12s %6s %10s %10s %10s %10s %9s %8s\n", "parallelism",
              "cores", "qps", "mean-ms", "p50-ms", "p99-ms", "speedup",
              "tasks");
  for (size_t level : kLevels) {
    ServiceOptions options;
    options.num_threads = level;
    options.queue_capacity = 256;
    options.cache_capacity = 0;  // measure evaluation, not caching
    options.parallelism = level;
    QueryService service(db, options);

    // One warm-up pass primes index pages outside the measurement.
    for (const auto& generated : queries) {
      QueryRequest request;
      request.query_text = generated.text;
      request.exec.n = 10;
      request.exec.cost_model = &generated.cost_model;
      request.bypass_cache = true;
      APPROXQL_CHECK(service.ExecuteNow(request).status.ok());
    }

    std::vector<double> latencies_ms;
    util::WallTimer sweep_timer;
    for (int round = 0; round < 3; ++round) {
      for (const auto& generated : queries) {
        QueryRequest request;
        request.query_text = generated.text;
        request.exec.n = 10;
        request.exec.cost_model = &generated.cost_model;
        request.bypass_cache = true;
        util::WallTimer timer;
        QueryResponse response = service.ExecuteNow(request);
        latencies_ms.push_back(timer.ElapsedSeconds() * 1000.0);
        APPROXQL_CHECK(response.status.ok()) << response.status;
      }
    }
    Sample sample;
    sample.parallelism = level;
    sample.effective_cores = std::min(cpus, level);
    sample.speedup_meaningful = cpus >= level;
    sample.total_seconds = sweep_timer.ElapsedSeconds();
    sample.qps =
        static_cast<double>(latencies_ms.size()) / sample.total_seconds;
    double total = 0;
    for (double ms : latencies_ms) total += ms;
    sample.mean_ms = total / static_cast<double>(latencies_ms.size());
    std::sort(latencies_ms.begin(), latencies_ms.end());
    sample.p50_ms = Percentile(latencies_ms, 0.50);
    sample.p99_ms = Percentile(latencies_ms, 0.99);
    sample.speedup =
        samples.empty() ? 1.0 : samples.front().mean_ms / sample.mean_ms;
    sample.parallel_tasks = service.GetSnapshot().parallel_tasks;
    samples.push_back(sample);
    std::printf("%-12zu %6zu %10.1f %10.3f %10.3f %10.3f %7.2fx%s %8llu\n",
                level, sample.effective_cores, sample.qps, sample.mean_ms,
                sample.p50_ms, sample.p99_ms, sample.speedup,
                sample.speedup_meaningful ? " " : "*",
                static_cast<unsigned long long>(sample.parallel_tasks));
  }
  if (cpus < 8) {
    std::printf("(* speedup not meaningful: the host has fewer cores than "
                "the level's parallelism)\n");
  }

  // The regression this benchmark guards: parallelism 4 must beat
  // serial — but only a host with >= 4 cores can testify.
  const Sample* level4 = nullptr;
  for (const Sample& s : samples) {
    if (s.parallelism == 4) level4 = &s;
  }
  const char* verdict = "skipped";
  if (level4 != nullptr && level4->speedup_meaningful) {
    verdict = level4->speedup > 1.0 ? "pass" : "fail";
    std::printf("speedup verdict: %s (%.2fx at parallelism 4 on %zu cores)\n",
                verdict, level4->speedup, cpus);
  } else {
    std::printf("speedup verdict: skipped (%zu core%s < parallelism 4 — "
                "fan-out cannot beat serial here)\n",
                cpus, cpus == 1 ? "" : "s");
  }

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  APPROXQL_CHECK(out != nullptr) << "cannot write BENCH_parallel.json";
  std::fprintf(out,
               "{\n  \"benchmark\": \"parallel_intra_query\",\n"
               "  \"config\": {\"elements\": %zu, \"queries\": %zu, "
               "\"shards\": 1, %s},\n"
               "  \"elements\": %zu,\n  \"queries\": %zu,\n  \"levels\": [\n",
               gen_options.total_elements, queries.size(),
               bench::BenchEnvJson().c_str(),
               gen_options.total_elements, queries.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"parallelism\": %zu, \"effective_cores\": %zu, "
                 "\"qps\": %.2f, "
                 "\"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"speedup\": %.3f, \"speedup_meaningful\": %s, "
                 "\"parallel_tasks\": %llu}%s\n",
                 s.parallelism, s.effective_cores, s.qps, s.mean_ms, s.p50_ms,
                 s.p99_ms, s.speedup,
                 s.speedup_meaningful ? "true" : "false",
                 static_cast<unsigned long long>(s.parallel_tasks),
                 i + 1 == samples.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n  \"speedup_verdict\": \"%s\"\n}\n", verdict);
  std::fclose(out);
  std::printf("wrote BENCH_parallel.json\n");
  return verdict == std::string("fail") ? 1 : 0;
}

}  // namespace
}  // namespace approxql::bench

int main() { return approxql::bench::Run(); }
