// Ablation A3: micro-benchmarks of the building blocks — list algebra
// throughput (join/intersect/union over synthetic postings), varint
// posting codec, B+tree point operations, XML parse throughput, Zipf
// sampling, index construction. These are the costs the paper's O(s*l)
// analysis is made of.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "engine/list_ops.h"
#include "gen/xml_generator.h"
#include "index/label_index.h"
#include "index/stored_label_index.h"
#include "schema/schema.h"
#include "storage/bptree.h"
#include "storage/mem_kv_store.h"
#include "util/random.h"
#include "util/varint.h"
#include "util/zipf.h"
#include "xml/xml_dom.h"

namespace approxql {
namespace {

// --- list algebra ----------------------------------------------------------

/// Builds a synthetic encoded "tree": a forest of chains so that
/// ancestor/descendant relations exist between the two lists.
struct SyntheticLists {
  std::vector<doc::DataNode> nodes;
  engine::EntryList ancestors;
  engine::EntryList descendants;
};

SyntheticLists MakeLists(size_t count) {
  SyntheticLists out;
  util::Rng rng(99);
  out.nodes.resize(count * 3);
  // Groups of three nodes: ancestor -> middle -> descendant.
  for (size_t g = 0; g < count; ++g) {
    doc::NodeId base = static_cast<doc::NodeId>(3 * g);
    for (int i = 0; i < 3; ++i) {
      auto& n = out.nodes[base + static_cast<doc::NodeId>(i)];
      n.parent = i == 0 ? doc::kInvalidNode : base + static_cast<doc::NodeId>(i) - 1;
      n.bound = base + 2;
      n.inscost = 1;
      n.pathcost = i;
    }
    engine::Entry ancestor;
    ancestor.pre = base;
    ancestor.bound = base + 2;
    ancestor.pathcost = 0;
    ancestor.inscost = 1;
    ancestor.cost_any = 0;
    out.ancestors.push_back(ancestor);
    engine::Entry descendant;
    descendant.pre = base + 2;
    descendant.bound = base + 2;
    descendant.pathcost = 2;
    descendant.inscost = 0;
    descendant.cost_any = static_cast<cost::Cost>(rng.Uniform(5));
    descendant.cost_leaf = descendant.cost_any;
    out.descendants.push_back(descendant);
  }
  return out;
}

void BM_Join(benchmark::State& state) {
  SyntheticLists lists = MakeLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::Join(lists.ancestors, lists.descendants, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Join)->Range(1 << 10, 1 << 18);

void BM_OuterJoin(benchmark::State& state) {
  SyntheticLists lists = MakeLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::OuterJoin(lists.ancestors, lists.descendants, 0, 5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OuterJoin)->Range(1 << 10, 1 << 18);

void BM_Intersect(benchmark::State& state) {
  SyntheticLists lists = MakeLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::Intersect(lists.ancestors, lists.ancestors, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Intersect)->Range(1 << 10, 1 << 18);

void BM_Union(benchmark::State& state) {
  SyntheticLists lists = MakeLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::Union(lists.ancestors, lists.descendants, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Union)->Range(1 << 10, 1 << 18);

// --- posting codec ---------------------------------------------------------

void BM_PostingSerialize(benchmark::State& state) {
  index::Posting posting;
  util::Rng rng(7);
  doc::NodeId id = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    id += 1 + static_cast<doc::NodeId>(rng.Uniform(100));
    posting.push_back(id);
  }
  for (auto _ : state) {
    std::string out;
    index::SerializePosting(posting, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PostingSerialize)->Range(1 << 10, 1 << 16);

void BM_PostingDeserialize(benchmark::State& state) {
  index::Posting posting;
  util::Rng rng(7);
  doc::NodeId id = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    id += 1 + static_cast<doc::NodeId>(rng.Uniform(100));
    posting.push_back(id);
  }
  std::string blob;
  index::SerializePosting(posting, &blob);
  for (auto _ : state) {
    auto decoded = index::DeserializePosting(blob);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PostingDeserialize)->Range(1 << 10, 1 << 16);

// --- storage ---------------------------------------------------------------

void BM_BPlusTreePut(benchmark::State& state) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "approxql_bench_bptree.db")
                         .string();
  std::filesystem::remove(path);
  auto store = storage::DiskKvStore::Open(path, true);
  APPROXQL_CHECK(store.ok());
  util::Rng rng(13);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Next() % 1000000);
    std::string value = "value" + std::to_string(i++);
    benchmark::DoNotOptimize((*store)->Put(key, value));
  }
  state.SetItemsProcessed(state.iterations());
  (*store).reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_BPlusTreePut);

void BM_BPlusTreeGet(benchmark::State& state) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "approxql_bench_bptree_get.db")
                         .string();
  std::filesystem::remove(path);
  auto store = storage::DiskKvStore::Open(path, true);
  APPROXQL_CHECK(store.ok());
  for (int i = 0; i < 100000; ++i) {
    APPROXQL_CHECK((*store)->Put("key" + std::to_string(i), "v").ok());
  }
  util::Rng rng(17);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(100000));
    benchmark::DoNotOptimize((*store)->Get(key));
  }
  state.SetItemsProcessed(state.iterations());
  (*store).reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_BPlusTreeGet);

void BM_StoredPostingFetch(benchmark::State& state) {
  // Cost of the paper-style deployment: postings decoded from the
  // B+tree store on first touch (cache cleared per iteration by
  // re-creating the source).
  gen::XmlGenOptions gen_options;
  gen_options.seed = 23;
  gen_options.total_elements = 20000;
  gen::XmlGenerator generator(gen_options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok());
  index::LabelIndex memory = index::LabelIndex::BuildFromTree(*tree);
  storage::MemKvStore store;
  APPROXQL_CHECK(memory.PersistTo(&store, "ix#").ok());
  std::vector<doc::LabelId> labels;
  for (const auto& [label, posting] : memory.postings(NodeType::kText)) {
    (void)posting;
    labels.push_back(label);
  }
  util::Rng rng(3);
  for (auto _ : state) {
    index::StoredLabelIndex stored(&store, "ix#");
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(
          stored.Fetch(NodeType::kText, labels[rng.Uniform(labels.size())]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_StoredPostingFetch);

void BM_MemKvGet(benchmark::State& state) {
  storage::MemKvStore store;
  for (int i = 0; i < 100000; ++i) {
    APPROXQL_CHECK(store.Put("key" + std::to_string(i), "v").ok());
  }
  util::Rng rng(17);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(100000));
    benchmark::DoNotOptimize(store.Get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemKvGet);

// --- XML & generators ------------------------------------------------------

void BM_XmlParse(benchmark::State& state) {
  gen::XmlGenOptions options;
  options.seed = 5;
  options.elements_per_document = 500;
  options.total_elements = 500;
  gen::XmlGenerator generator(options);
  std::string xml = generator.GenerateDocumentXml();
  for (auto _ : state) {
    auto doc = xml::ParseXmlDocument(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse);

void BM_ZipfSample(benchmark::State& state) {
  util::ZipfDistribution zipf(100000, 1.0);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_IndexBuild(benchmark::State& state) {
  gen::XmlGenOptions options;
  options.seed = 9;
  options.total_elements = static_cast<size_t>(state.range(0));
  gen::XmlGenerator generator(options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::LabelIndex::BuildFromTree(*tree));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tree->size()));
}
BENCHMARK(BM_IndexBuild)->Arg(10000)->Arg(50000);

void BM_SchemaBuild(benchmark::State& state) {
  gen::XmlGenOptions options;
  options.seed = 9;
  options.total_elements = static_cast<size_t>(state.range(0));
  gen::XmlGenerator generator(options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok());
  cost::CostModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema::Schema::Build(&*tree, model));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tree->size()));
}
BENCHMARK(BM_SchemaBuild)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace approxql

BENCHMARK_MAIN();
